// test helpers live in tests/ files
