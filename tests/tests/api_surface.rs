//! Edge-case coverage across the public API surface: empty ledgers,
//! boundary queries, iterator hints, engine behaviour on absent data.

use fabric_ledger::{Ledger, LedgerConfig, TxSimulator};
use fabric_workload::dataset::{generate_scaled, DatasetId};
use fabric_workload::ingest::{ingest, IdentityEncoder, IngestMode};
use fabric_workload::{EntityId, EntityKind, Event, EventKind};
use temporal_core::interval::Interval;
use temporal_core::join::ferry_query;
use temporal_core::m1::{M1Engine, M1Indexer};
use temporal_core::m2::{M2Encoder, M2Engine};
use temporal_core::partition::FixedLength;
use temporal_core::tqf::TqfEngine;
use temporal_core::TemporalEngine;

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "api-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn queries_on_empty_ledger() {
    let dir = TempDir::new("empty");
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    assert_eq!(ledger.height(), 0);
    assert_eq!(ledger.last_hash(), fabric_ledger::Digest::ZERO);
    ledger.verify_chain().unwrap();
    // TQF on nothing: zero keys, zero records, no error.
    let outcome = ferry_query(&TqfEngine, &ledger, Interval::new(0, 100)).unwrap();
    assert!(outcome.records.is_empty());
    assert_eq!(outcome.stats.ghfk_calls(), 0);
    // M2 likewise.
    let outcome = ferry_query(&M2Engine { u: 10 }, &ledger, Interval::new(0, 100)).unwrap();
    assert!(outcome.records.is_empty());
    // GHFK on a never-written key.
    let history = ledger
        .get_history_for_key(b"never")
        .unwrap()
        .collect_all()
        .unwrap();
    assert!(history.is_empty());
}

#[test]
fn history_iterator_remaining_hint_counts_down() {
    let dir = TempDir::new("hint");
    let ledger = Ledger::open(&dir.0, LedgerConfig::small_for_tests()).unwrap();
    for t in 1..=5u64 {
        let mut sim = TxSimulator::new(&ledger);
        let ev = Event {
            subject: EntityId::shipment(0),
            target: EntityId::container(0),
            time: t,
            kind: EventKind::Load,
        };
        sim.put_state(ev.key(), ev.encode_value());
        ledger.submit(sim.into_transaction(t).unwrap()).unwrap();
    }
    ledger.cut_block().unwrap();
    let mut iter = ledger
        .get_history_for_key(&EntityId::shipment(0).key())
        .unwrap();
    assert_eq!(iter.remaining_hint(), 5);
    iter.next().unwrap();
    iter.next().unwrap();
    assert_eq!(iter.remaining_hint(), 3);
}

#[test]
fn boundary_timestamps_are_half_open() {
    // An event exactly at tau.start is excluded; exactly at tau.end is
    // included — across all engines.
    let dir = TempDir::new("boundary");
    let events: Vec<Event> = [100u64, 200, 300]
        .iter()
        .map(|&t| Event {
            subject: EntityId::shipment(0),
            target: EntityId::container(0),
            time: t,
            kind: EventKind::Load,
        })
        .collect();
    let base = Ledger::open(dir.0.join("base"), LedgerConfig::default()).unwrap();
    ingest(&base, &events, IngestMode::SingleEvent, &IdentityEncoder).unwrap();
    let strategy = FixedLength { u: 100 };
    M1Indexer::fixed(&strategy)
        .run_epoch(&base, &[EntityId::shipment(0)], Interval::new(0, 300))
        .unwrap();
    let m2 = Ledger::open(dir.0.join("m2"), LedgerConfig::default()).unwrap();
    ingest(&m2, &events, IngestMode::SingleEvent, &M2Encoder { u: 100 }).unwrap();

    let tau = Interval::new(100, 200); // excludes 100, includes 200
    let tqf = TqfEngine
        .events_for_key(&base, EntityId::shipment(0), tau)
        .unwrap();
    let m1 = M1Engine::default()
        .events_for_key(&base, EntityId::shipment(0), tau)
        .unwrap();
    let m2e = M2Engine { u: 100 }
        .events_for_key(&m2, EntityId::shipment(0), tau)
        .unwrap();
    for (name, got) in [("tqf", &tqf), ("m1", &m1), ("m2", &m2e)] {
        let times: Vec<u64> = got.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![200], "{name} boundary semantics");
    }
}

#[test]
fn m1_list_keys_ignores_index_artifacts() {
    // After M1 indexing, the state-db holds the meta key; entity listing
    // must not see it (or any composite residue).
    let dir = TempDir::new("listkeys");
    let workload = generate_scaled(DatasetId::Ds3, 100);
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    ingest(
        &ledger,
        &workload.events,
        IngestMode::MultiEvent,
        &IdentityEncoder,
    )
    .unwrap();
    let before_ships = M1Engine::default()
        .list_keys(&ledger, EntityKind::Shipment)
        .unwrap();
    let strategy = FixedLength {
        u: workload.params.t_max / 10,
    };
    M1Indexer::fixed(&strategy)
        .run_epoch(
            &ledger,
            &workload.keys(),
            Interval::new(0, workload.params.t_max),
        )
        .unwrap();
    let after_ships = M1Engine::default()
        .list_keys(&ledger, EntityKind::Shipment)
        .unwrap();
    assert_eq!(before_ships, after_ships);
    let conts = M1Engine::default()
        .list_keys(&ledger, EntityKind::Container)
        .unwrap();
    assert_eq!(
        conts.len() as u32,
        workload.params.containers,
        "container listing intact"
    );
}

#[test]
fn engines_handle_key_with_no_events_in_window() {
    let dir = TempDir::new("no-events");
    let events = vec![Event {
        subject: EntityId::shipment(0),
        target: EntityId::container(0),
        time: 5000,
        kind: EventKind::Load,
    }];
    let base = Ledger::open(dir.0.join("base"), LedgerConfig::default()).unwrap();
    ingest(&base, &events, IngestMode::SingleEvent, &IdentityEncoder).unwrap();
    let strategy = FixedLength { u: 1000 };
    M1Indexer::fixed(&strategy)
        .run_epoch(&base, &[EntityId::shipment(0)], Interval::new(0, 10_000))
        .unwrap();
    // Window entirely before the event.
    let early = Interval::new(0, 1000);
    assert!(TqfEngine
        .events_for_key(&base, EntityId::shipment(0), early)
        .unwrap()
        .is_empty());
    assert!(M1Engine::default()
        .events_for_key(&base, EntityId::shipment(0), early)
        .unwrap()
        .is_empty());
    // Window entirely after.
    let late = Interval::new(9000, 10_000);
    assert!(TqfEngine
        .events_for_key(&base, EntityId::shipment(0), late)
        .unwrap()
        .is_empty());
    assert!(M1Engine::default()
        .events_for_key(&base, EntityId::shipment(0), late)
        .unwrap()
        .is_empty());
}

#[test]
fn ledger_stats_handle_is_shared() {
    let dir = TempDir::new("stats-handle");
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    let handle = ledger.stats_handle();
    let before = handle.snapshot();
    let mut sim = TxSimulator::new(&ledger);
    sim.put_state(&b"k"[..], &b"v"[..]);
    ledger.submit(sim.into_transaction(1).unwrap()).unwrap();
    ledger.cut_block().unwrap();
    let after = handle.snapshot();
    assert_eq!(after.delta(&before).blocks_committed, 1);
    assert_eq!(after.delta(&before).txs_committed, 1);
}

#[test]
fn m2_base_key_space_isolated_from_base_layout() {
    // Mixing layouts in one ledger (not recommended, but possible): base
    // writes to `k` and M2 writes to `k#...` must not interfere.
    let dir = TempDir::new("mixed");
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    let key = EntityId::shipment(0);
    let ev_base = Event {
        subject: key,
        target: EntityId::container(0),
        time: 50,
        kind: EventKind::Load,
    };
    let ev_m2 = Event {
        subject: key,
        target: EntityId::container(1),
        time: 150,
        kind: EventKind::Load,
    };
    ingest(
        &ledger,
        &[ev_base],
        IngestMode::SingleEvent,
        &IdentityEncoder,
    )
    .unwrap();
    ingest(
        &ledger,
        &[ev_m2],
        IngestMode::SingleEvent,
        &M2Encoder { u: 100 },
    )
    .unwrap();
    // TQF over the base key sees only the base event.
    let tqf = TqfEngine
        .events_for_key(&ledger, key, Interval::new(0, 200))
        .unwrap();
    assert_eq!(tqf.len(), 1);
    assert_eq!(tqf[0].time, 50);
    // M2 over the composite keys sees only the tagged event.
    let m2 = M2Engine { u: 100 }
        .events_for_key(&ledger, key, Interval::new(0, 200))
        .unwrap();
    assert_eq!(m2.len(), 1);
    assert_eq!(m2[0].time, 150);
}
