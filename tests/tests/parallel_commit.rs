//! Parallel MVCC validation and key-sharded commit equivalence.
//!
//! Two cross-crate invariants introduced by the commit-path overhaul:
//!
//! 1. (property) The dependency-wave parallel validator is *bit-identical*
//!    to Fabric's serial in-order scan — same `ValidationCode`s, same
//!    conflict count, same final intra-block write set — across random
//!    conflict-dense batches including tombstone (delete) writes, and the
//!    ledgers committed through either validator end on the same chain.
//! 2. An N-shard [`ShardedLedger`] answers the paper's table-1-style
//!    queries (per-key events, the ferry join, the planner's chosen
//!    access path) bit-identically to a single ledger holding the same
//!    event stream.

use fabric_ledger::tx::{KvRead, KvWrite, Transaction, TxNum, Version};
use fabric_ledger::validate::{validate_parallel, validate_serial};
use fabric_ledger::{Ledger, LedgerConfig, ShardedLedger};
use fabric_workload::dataset::{generate_scaled, DatasetId};
use fabric_workload::ingest::{ingest, ingest_sharded, IdentityEncoder, IngestMode};
use proptest::prelude::*;
use temporal_core::interval::Interval;
use temporal_core::join::ferry_query;
use temporal_core::tqf::TqfEngine;
use temporal_core::{ferry_query_sharded, list_keys_sharded, AutoEngine, TemporalEngine};

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "parallel-commit-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const KEYS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn bkey(s: &str) -> bytes::Bytes {
    bytes::Bytes::copy_from_slice(s.as_bytes())
}

/// One generated transaction: reads as `(key index, version kind)`,
/// writes as `(key index, live?)` — `live == false` is a tombstone.
type GenTx = (Vec<(usize, u8)>, Vec<(usize, bool)>);

/// Materialize a generated tx. Version kinds: 0 = `None` (claims the key
/// is unborn), 1 = the committed base version (a fresh read), anything
/// else = a bogus stale version (guaranteed conflict against any state).
fn build_tx(spec: &GenTx, base: &[Option<Version>; 4]) -> Transaction {
    let (reads, writes) = spec;
    Transaction::new(
        1,
        reads
            .iter()
            .map(|&(k, kind)| KvRead {
                key: bkey(KEYS[k % 4]),
                version: match kind % 3 {
                    0 => None,
                    1 => base[k % 4],
                    _ => Some(Version {
                        block_num: 999,
                        tx_num: (k % 4) as TxNum,
                    }),
                },
            })
            .collect(),
        writes
            .iter()
            .map(|&(k, live)| KvWrite {
                key: bkey(KEYS[k % 4]),
                value: live.then(|| bytes::Bytes::from_static(b"v")),
            })
            .collect(),
    )
    .unwrap()
}

#[test]
fn parallel_validation_codes_match_serial_on_random_batches() {
    // Committed base state: two of the four keys exist.
    let base: [Option<Version>; 4] = [
        Some(Version {
            block_num: 3,
            tx_num: 0,
        }),
        None,
        Some(Version {
            block_num: 5,
            tx_num: 2,
        }),
        None,
    ];
    let lookup = |k: &[u8]| {
        Ok(KEYS
            .iter()
            .position(|key| key.as_bytes() == k)
            .and_then(|i| base[i]))
    };
    // Dense contention: up to 12 txs over a 4-key space, reads claiming
    // fresh/unborn/stale versions, writes including tombstones.
    let tx_strategy = (
        prop::collection::vec((0usize..4, 0u8..3), 0..3),
        prop::collection::vec((0usize..4, any::<bool>()), 1..3),
    );
    let batch = prop::collection::vec(tx_strategy, 1..12);
    proptest::run_cases(&batch, |specs| {
        let txs: Vec<Transaction> = specs.iter().map(|s| build_tx(s, &base)).collect();
        let serial = validate_serial(&txs, 7, lookup).unwrap();
        for threads in [2, 4] {
            let parallel = validate_parallel(&txs, 7, threads, lookup).unwrap();
            prop_assert_eq!(&serial.codes, &parallel.codes, "threads={}", threads);
            prop_assert_eq!(serial.conflicts, parallel.conflicts);
            prop_assert_eq!(&serial.intra_block, &parallel.intra_block);
        }
        // Sanity: the generator must actually produce conflict-dense
        // batches, not all-valid ones — checked in aggregate below.
        Ok(())
    });
}

#[test]
fn ledgers_committed_by_either_validator_are_byte_identical() {
    // Deterministic xorshift stream of contended read-modify-write
    // batches, committed through a serial-validate ledger and a
    // 4-thread parallel-validate ledger: both must end on the same
    // chain tip with the same state, conflicts included.
    let dir = TempDir::new("either-validator");
    let serial = Ledger::open(
        dir.0.join("serial"),
        LedgerConfig::default().with_block_max_txs(16),
    )
    .unwrap();
    let parallel = Ledger::open(
        dir.0.join("parallel"),
        LedgerConfig::default()
            .with_block_max_txs(16)
            .with_parallel_validate(true)
            .with_validate_threads(4),
    )
    .unwrap();
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut conflicts_seen = false;
    for _block in 0..8 {
        let mut batch = Vec::new();
        for _ in 0..16 {
            let k = KEYS[(next() % 4) as usize];
            let reads = if next() % 2 == 0 {
                vec![KvRead {
                    key: bkey(k),
                    // Half claim "unborn": a conflict once the key exists.
                    version: None,
                }]
            } else {
                vec![]
            };
            let writes = vec![KvWrite {
                key: bkey(k),
                value: (next() % 4 != 0).then(|| bkey("value")),
            }];
            batch.push((next() % 1000, reads, writes));
        }
        for ledger in [&serial, &parallel] {
            for (ts, reads, writes) in &batch {
                ledger
                    .submit(Transaction::new(*ts, reads.clone(), writes.clone()).unwrap())
                    .unwrap();
            }
            ledger.cut_block().unwrap();
        }
        conflicts_seen = true;
    }
    assert!(conflicts_seen);
    assert_eq!(serial.height(), parallel.height());
    assert_eq!(serial.last_hash(), parallel.last_hash());
    assert_eq!(
        serial.get_state_by_range(None, None).unwrap(),
        parallel.get_state_by_range(None, None).unwrap()
    );
}

#[test]
fn sharded_ledger_answers_table1_queries_like_a_single_ledger() {
    // The paper's table-1 shape: DS3 events, base-data encoding, queried
    // over the 9-window grid. A 4-shard ledger must give bit-identical
    // answers for events (per key), the ferry join, and the planner's
    // chosen access path.
    let workload = generate_scaled(DatasetId::Ds3, 4);
    let t_max = workload.params.t_max;
    let dir = TempDir::new("table1-shards");

    let plain = Ledger::open(dir.0.join("plain"), LedgerConfig::default()).unwrap();
    ingest(
        &plain,
        &workload.events,
        IngestMode::MultiEvent,
        &IdentityEncoder,
    )
    .unwrap();

    let sharded = ShardedLedger::open(dir.0.join("sharded"), LedgerConfig::default(), 4).unwrap();
    ingest_sharded(
        &sharded,
        &workload.events,
        IngestMode::MultiEvent,
        &IdentityEncoder,
    )
    .unwrap();
    assert!(
        sharded.heights().iter().filter(|h| **h > 0).count() > 1,
        "workload must actually spread across shards: {:?}",
        sharded.heights()
    );

    let keys =
        list_keys_sharded(&TqfEngine, &sharded, fabric_workload::EntityKind::Shipment).unwrap();
    assert!(!keys.is_empty());
    let w = t_max / 15;
    let windows: Vec<Interval> = [0u64, 1, 2, 6, 7, 8, 12, 13, 14]
        .iter()
        .map(|&i| Interval::new(i * w, (i + 1) * w))
        .collect();

    for &tau in &windows {
        // events: every key's answer, off the shard that owns the key.
        for &key in &keys {
            let single = TqfEngine.events_for_key(&plain, key, tau).unwrap();
            let shard = sharded.shard_for_key(&key.key());
            let multi = TqfEngine.events_for_key(shard, key, tau).unwrap();
            assert_eq!(single, multi, "events diverged for {key} over {tau}");

            // plan: base data on both sides (no M1 metadata), so the
            // planner must pick the same access path from either layout.
            // Block *bounds* are layout-dependent (each shard numbers its
            // own chain), so only the chosen path is comparable.
            let p1 = AutoEngine::default().choose(&plain, key, tau).unwrap();
            let pn = AutoEngine::default()
                .choose_sharded(&sharded, key, tau)
                .unwrap();
            assert_eq!(
                p1.path_label(),
                pn.path_label(),
                "planner path diverged for {key} over {tau}"
            );
        }

        // join: the full ferry answer.
        let single = ferry_query(&TqfEngine, &plain, tau).unwrap();
        let multi = ferry_query_sharded(&TqfEngine, &sharded, tau, 2).unwrap();
        assert_eq!(
            single.records, multi.records,
            "ferry join diverged over {tau}"
        );
    }
}

#[test]
fn conflict_dense_generator_actually_conflicts() {
    // Guards the property test's bite: across the same strategy space,
    // a meaningful fraction of batches must contain at least one MVCC
    // conflict (else the equivalence check would be vacuous).
    let base: [Option<Version>; 4] = [
        Some(Version {
            block_num: 3,
            tx_num: 0,
        }),
        None,
        None,
        None,
    ];
    let lookup = |k: &[u8]| {
        Ok(KEYS
            .iter()
            .position(|key| key.as_bytes() == k)
            .and_then(|i| base[i]))
    };
    let tx_strategy = (
        prop::collection::vec((0usize..4, 0u8..3), 0..3),
        prop::collection::vec((0usize..4, any::<bool>()), 1..3),
    );
    let batch = prop::collection::vec(tx_strategy, 1..12);
    let mut with_conflicts = 0u32;
    let mut total = 0u32;
    proptest::run_cases(&batch, |specs| {
        let txs: Vec<Transaction> = specs.iter().map(|s| build_tx(s, &base)).collect();
        let out = validate_serial(&txs, 7, lookup).unwrap();
        total += 1;
        if out.conflicts > 0 {
            with_conflicts += 1;
        }
        Ok(())
    });
    assert!(
        with_conflicts * 4 > total,
        "only {with_conflicts}/{total} batches conflicted — generator too tame"
    );
}
