//! Online-indexer equivalence suite: a ledger whose M1 index is
//! maintained by the tip-chasing daemon must answer every temporal query
//! bit-identically to (a) the raw TQF scan on the same chain and (b) a
//! batch-rebuilt M1 index over the same events.
//!
//! Covered invariants (ISSUE 9, satellite 4):
//!
//! 1. Lag grid — daemons configured at lag 0, 1, and 16 all converge to
//!    the same answers as the batch index, across boundary-heavy windows.
//! 2. Mid-batch watermarks — queries issued *between* ingest chunks
//!    (horizon strictly inside the data) match TQF on the same chain.
//! 3. Hybrid cursor at the horizon boundary — windows ending exactly at
//!    `indexed_to`, one past it, and straddling it, with an un-indexed
//!    tail on the chain; the residual tail scan is O(tail), not O(n).
//! 4. Crash/resume — dropping a daemon (flushed or mid-buffer) and
//!    adopting the chain with a fresh one re-reads only the blocks past
//!    the persisted watermark and yields identical answers.
//! 5. Adaptive θ — an `Adaptive` daemon's answers are bit-identical to a
//!    fixed-θ daemon's and to TQF (θ only changes cost, never results).
//! 6. (property) Random windows agree across TQF / M1 / auto on a
//!    daemon-maintained chain.

use std::sync::Arc;

use fabric_ledger::{Ledger, LedgerConfig};
use fabric_workload::dataset::{generate_scaled, DatasetId};
use fabric_workload::event::Event;
use fabric_workload::ingest::{ingest, IdentityEncoder, IngestMode};
use fabric_workload::EntityId;
use proptest::prelude::*;
use temporal_core::interval::Interval;
use temporal_core::m1::{M1Engine, M1Indexer};
use temporal_core::partition::FixedLength;
use temporal_core::tqf::TqfEngine;
use temporal_core::{
    index_freshness, AutoEngine, DaemonConfig, IndexerDaemon, TemporalEngine, ThetaPolicy,
};

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "daemon-equiv-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Events in logical-time order. The daemon drops events at or below an
/// already-committed horizon as late (out-of-order ingest is documented
/// as uncorrectable), so chunked-ingest tests feed the chain in time
/// order — exactly what a live Fabric peer sees.
fn time_sorted(mut events: Vec<Event>) -> Vec<Event> {
    events.sort_by_key(|e| e.time);
    events
}

/// Split `events` into chunks of roughly `chunk` events, never splitting
/// between two events that share a timestamp (a mid-timestamp epoch cut
/// would make the second half late on resume).
fn timestamp_chunks(events: &[Event], chunk: usize) -> Vec<&[Event]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < events.len() {
        let mut end = (start + chunk).min(events.len());
        while end < events.len() && events[end].time == events[end - 1].time {
            end += 1;
        }
        out.push(&events[start..end]);
        start = end;
    }
    out
}

/// Boundary-heavy query windows: engine_equivalence's five shapes plus
/// windows pinned to the daemon horizon (`indexed_to`) — ending exactly
/// on it, one past it, starting on it, and straddling it by one unit.
fn windows(t_max: u64, horizon: u64) -> Vec<Interval> {
    let mut w = vec![
        Interval::new(0, t_max / 10),
        Interval::new(t_max / 3, t_max / 2),
        Interval::new(t_max - t_max / 10, t_max),
        Interval::new(0, t_max),
        Interval::new(t_max / 7 + 1, t_max / 7 + 3),
    ];
    if horizon > 1 {
        w.push(Interval::new(0, horizon));
        w.push(Interval::new(0, horizon + 1));
        w.push(Interval::new(horizon - 1, horizon + 1));
        w.push(Interval::new(horizon, t_max.max(horizon + 1)));
    }
    w
}

fn open(dir: &std::path::Path, name: &str) -> Arc<Ledger> {
    Arc::new(Ledger::open(dir.join(name), LedgerConfig::default()).unwrap())
}

/// Ingest `events` in timestamp-aligned chunks, stepping `daemon` after
/// each chunk (catch_up consumes straight off the chain, so the test is
/// deterministic — no spawn, no sleeps). Returns per-chunk horizons.
fn ingest_chunked(
    ledger: &Ledger,
    daemon: &mut IndexerDaemon,
    events: &[Event],
    chunk: usize,
    mode: IngestMode,
) -> Vec<u64> {
    let mut horizons = Vec::new();
    for part in timestamp_chunks(events, chunk) {
        ingest(ledger, part, mode, &IdentityEncoder).unwrap();
        daemon.catch_up().unwrap();
        horizons.push(daemon.report().indexed_to);
    }
    horizons
}

fn assert_same_answers(
    tag: &str,
    daemon_ledger: &Ledger,
    batch_ledger: &Ledger,
    keys: &[EntityId],
    taus: &[Interval],
) {
    let m1 = M1Engine::default();
    let auto = AutoEngine::default();
    for &key in keys {
        for &tau in taus {
            let tqf = TqfEngine.events_for_key(daemon_ledger, key, tau).unwrap();
            let live = m1.events_for_key(daemon_ledger, key, tau).unwrap();
            let planned = auto.events_for_key(daemon_ledger, key, tau).unwrap();
            let batch = m1.events_for_key(batch_ledger, key, tau).unwrap();
            assert_eq!(live, tqf, "[{tag}] daemon-M1 vs TQF for {key} over {tau}");
            assert_eq!(
                live, batch,
                "[{tag}] daemon-M1 vs batch-M1 for {key} over {tau}"
            );
            assert_eq!(planned, tqf, "[{tag}] auto vs TQF for {key} over {tau}");
        }
    }
}

#[test]
fn lag_grid_matches_batch_rebuilt_m1_and_tqf() {
    let dir = TempDir::new("lag-grid");
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let events = time_sorted(workload.events.clone());
    let t_max = workload.params.t_max;
    let u = t_max / 25;
    let keys = workload.keys();

    // Reference: same (sorted) event stream, batch-indexed in one epoch.
    let batch = open(&dir.0, "batch");
    ingest(&batch, &events, IngestMode::SingleEvent, &IdentityEncoder).unwrap();
    M1Indexer::fixed(&FixedLength { u })
        .run_epoch(&batch, &keys, Interval::new(0, t_max))
        .unwrap();

    let spot_key = keys[0];
    for lag in [0u64, 1, 16] {
        let ledger = open(&dir.0, &format!("lag{lag}"));
        let cfg = DaemonConfig {
            lag_blocks: lag,
            policy: ThetaPolicy::Fixed { u },
        };
        let mut daemon = IndexerDaemon::new(ledger.clone(), cfg).unwrap();
        for part in timestamp_chunks(&events, 11) {
            ingest(&ledger, part, IngestMode::SingleEvent, &IdentityEncoder).unwrap();
            daemon.catch_up().unwrap();
            if daemon.report().epochs == 0 {
                continue; // no index on chain yet (large-lag first chunk)
            }
            // Mid-batch watermark: the horizon sits strictly inside the
            // data; the hybrid path must already agree with TQF.
            let so_far = Interval::new(0, t_max);
            let tqf = TqfEngine.events_for_key(&ledger, spot_key, so_far).unwrap();
            let live = M1Engine::default()
                .events_for_key(&ledger, spot_key, so_far)
                .unwrap();
            assert_eq!(live, tqf, "mid-batch watermark diverged at lag {lag}");
        }
        daemon.flush().unwrap();
        let report = daemon.report();
        assert!(report.epochs > 0, "lag {lag}: daemon never cut an epoch");
        assert_eq!(daemon.lag_blocks(), 0, "lag {lag}: flush left lag");
        drop(daemon);

        let fresh = index_freshness(&ledger).unwrap().expect("freshness");
        assert!(fresh.daemon_seen, "lag {lag}: watermark not persisted");
        assert_eq!(fresh.lag_blocks, 0, "lag {lag}: stale horizon after flush");

        let taus = windows(t_max, report.indexed_to);
        assert_same_answers(&format!("lag{lag}"), &ledger, &batch, &keys, &taus);
    }
}

#[test]
fn hybrid_cursor_at_horizon_boundary_reads_bounded_tail() {
    let dir = TempDir::new("horizon-boundary");
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let events = time_sorted(workload.events.clone());
    let t_max = workload.params.t_max;
    let u = t_max / 25;
    let keys = workload.keys();
    let split = events.len() * 2 / 3;
    let chunks = timestamp_chunks(&events, split);
    let (head, tail) = (chunks[0], &events[chunks[0].len()..]);

    let ledger = open(&dir.0, "chain");
    let cfg = DaemonConfig {
        lag_blocks: 0,
        policy: ThetaPolicy::Fixed { u },
    };
    let mut daemon = IndexerDaemon::new(ledger.clone(), cfg).unwrap();
    ingest(&ledger, head, IngestMode::SingleEvent, &IdentityEncoder).unwrap();
    daemon.catch_up().unwrap();
    daemon.flush().unwrap();
    let horizon = daemon.report().indexed_to;
    assert!(horizon > 0 && horizon < t_max, "split must leave a tail");

    // Commit the tail WITHOUT stepping the daemon: an un-indexed suffix
    // of L data blocks sits past the persisted horizon.
    let height_at_horizon = ledger.height();
    ingest(&ledger, tail, IngestMode::SingleEvent, &IdentityEncoder).unwrap();
    let tail_blocks = ledger.height() - height_at_horizon;
    assert!(tail_blocks > 0);

    // Boundary windows across the horizon agree with TQF on both the
    // hybrid M1 path and the planner.
    let m1 = M1Engine::default();
    let auto = AutoEngine::default();
    for &key in &keys {
        for tau in windows(t_max, horizon) {
            let tqf = TqfEngine.events_for_key(&ledger, key, tau).unwrap();
            let hybrid = m1.events_for_key(&ledger, key, tau).unwrap();
            let planned = auto.events_for_key(&ledger, key, tau).unwrap();
            assert_eq!(hybrid, tqf, "hybrid M1 vs TQF for {key} over {tau}");
            assert_eq!(planned, tqf, "auto vs TQF for {key} over {tau}");
        }
    }

    // Steady-state cost bound: with the index trailing by L data blocks,
    // a full-history query pays at most the lag-0 cost plus O(L) — the
    // residual cursor reads the tail, never the whole chain again.
    let everything = Interval::new(0, t_max);
    let key = keys[0];
    let before = ledger.stats();
    m1.events_for_key(&ledger, key, everything).unwrap();
    let lagged_cost = ledger.stats().delta(&before).blocks_deserialized;

    daemon.catch_up().unwrap();
    daemon.flush().unwrap();
    drop(daemon);
    let before = ledger.stats();
    m1.events_for_key(&ledger, key, everything).unwrap();
    let flushed_cost = ledger.stats().delta(&before).blocks_deserialized;
    assert!(
        lagged_cost <= flushed_cost + tail_blocks + 2,
        "tail scan not O(L): lagged {lagged_cost} vs flushed {flushed_cost} + L {tail_blocks}"
    );
}

#[test]
fn crash_resume_is_bit_identical_and_rescans_only_the_tail() {
    let dir = TempDir::new("crash-resume");
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let events = time_sorted(workload.events.clone());
    let t_max = workload.params.t_max;
    let u = t_max / 25;
    let keys = workload.keys();
    let mid = {
        let chunks = timestamp_chunks(&events, events.len() / 2);
        chunks[0].len()
    };

    let batch = open(&dir.0, "batch");
    ingest(&batch, &events, IngestMode::MultiEvent, &IdentityEncoder).unwrap();
    M1Indexer::fixed(&FixedLength { u })
        .run_epoch(&batch, &keys, Interval::new(0, t_max))
        .unwrap();

    // Crash A: flushed — the watermark on chain covers everything A saw.
    // Crash B: mid-buffer — consumed-but-unindexed events die with the
    // process; the resume watermark must force their blocks to replay.
    for (name, flush_before_crash) in [("flushed", true), ("midbuffer", false)] {
        let ledger = open(&dir.0, name);
        let cfg = DaemonConfig {
            lag_blocks: 4,
            policy: ThetaPolicy::Fixed { u },
        };
        let mut first = IndexerDaemon::new(ledger.clone(), cfg).unwrap();
        ingest(
            &ledger,
            &events[..mid],
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        first.catch_up().unwrap();
        if flush_before_crash {
            first.flush().unwrap();
        }
        let watermark = index_freshness(&ledger)
            .unwrap()
            .map(|f| f.daemon_seen)
            .unwrap_or(false);
        drop(first); // crash: in-memory buffer and clock are gone

        let height_at_crash = ledger.height();
        ingest(
            &ledger,
            &events[mid..],
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();

        let mut resumed = IndexerDaemon::new(ledger.clone(), cfg).unwrap();
        resumed.catch_up().unwrap();
        resumed.flush().unwrap();
        let report = resumed.report();
        drop(resumed);

        // Bounded re-scan: the resumed daemon starts at the persisted
        // watermark, never block 0. Everything it consumed fits in the
        // replay window (crash-height tail) plus the post-crash blocks
        // and its own epoch blocks — far below a full-chain scan.
        if watermark {
            let post_crash = ledger.height() - height_at_crash;
            assert!(
                report.blocks_consumed <= height_at_crash / 2 + post_crash + report.epochs + 2,
                "[{name}] resume re-scanned too much: consumed {} of height {}",
                report.blocks_consumed,
                ledger.height()
            );
        }
        assert_eq!(
            index_freshness(&ledger).unwrap().unwrap().lag_blocks,
            0,
            "[{name}] resumed daemon left lag"
        );

        let taus = windows(t_max, report.indexed_to);
        assert_same_answers(name, &ledger, &batch, &keys, &taus);
    }
}

#[test]
fn adaptive_theta_answers_match_fixed_theta_and_tqf() {
    let dir = TempDir::new("adaptive");
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let events = time_sorted(workload.events.clone());
    let t_max = workload.params.t_max;
    let keys = workload.keys();

    let fixed_ledger = open(&dir.0, "fixed");
    let mut fixed_daemon = IndexerDaemon::new(
        fixed_ledger.clone(),
        DaemonConfig {
            lag_blocks: 2,
            policy: ThetaPolicy::Fixed { u: t_max / 25 },
        },
    )
    .unwrap();
    ingest_chunked(
        &fixed_ledger,
        &mut fixed_daemon,
        &events,
        13,
        IngestMode::MultiEvent,
    );
    fixed_daemon.flush().unwrap();
    drop(fixed_daemon);

    let adaptive_ledger = open(&dir.0, "adaptive");
    let mut adaptive_daemon = IndexerDaemon::new(
        adaptive_ledger.clone(),
        DaemonConfig {
            lag_blocks: 2,
            policy: ThetaPolicy::Adaptive {
                target_events: 8,
                min_u: 100,
                max_u: 100_000,
            },
        },
    )
    .unwrap();
    ingest_chunked(
        &adaptive_ledger,
        &mut adaptive_daemon,
        &events,
        13,
        IngestMode::MultiEvent,
    );
    adaptive_daemon.flush().unwrap();
    let report = adaptive_daemon.report();
    assert!(report.epochs > 0, "adaptive daemon cut no epochs");
    drop(adaptive_daemon);

    let fresh = index_freshness(&adaptive_ledger).unwrap().unwrap();
    assert!(
        fresh.adaptive_keys > 0,
        "adaptive daemon persisted no per-key θ"
    );

    // θ is a cost knob, never a correctness knob: both maintained indexes
    // and the raw scan agree on every window, on both chains.
    let m1 = M1Engine::default();
    for &key in &keys {
        for tau in windows(t_max, report.indexed_to) {
            let via_fixed = m1.events_for_key(&fixed_ledger, key, tau).unwrap();
            let via_adaptive = m1.events_for_key(&adaptive_ledger, key, tau).unwrap();
            let tqf = TqfEngine
                .events_for_key(&adaptive_ledger, key, tau)
                .unwrap();
            assert_eq!(via_adaptive, tqf, "adaptive vs TQF for {key} over {tau}");
            assert_eq!(
                via_adaptive, via_fixed,
                "adaptive vs fixed θ for {key} over {tau}"
            );
        }
    }
}

#[test]
fn prop_random_windows_agree_on_daemon_maintained_chain() {
    let dir = TempDir::new("prop");
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let events = time_sorted(workload.events.clone());
    let t_max = workload.params.t_max;
    let u = t_max / 25;
    let keys = workload.keys();

    let ledger = open(&dir.0, "chain");
    let mut daemon = IndexerDaemon::new(
        ledger.clone(),
        DaemonConfig {
            lag_blocks: 1,
            policy: ThetaPolicy::Fixed { u },
        },
    )
    .unwrap();
    ingest_chunked(&ledger, &mut daemon, &events, 9, IngestMode::SingleEvent);
    daemon.flush().unwrap();
    drop(daemon);

    let strategy = prop_oneof![
        // Anywhere on the axis, including windows entirely past the data.
        (0..2 * t_max, 1..t_max).prop_map(|(s, l)| Interval::new(s, s + l)),
        // θ-aligned edges.
        (0u64..50, 1u64..25).prop_map(move |(i, n)| Interval::new(i * u, (i + n) * u)),
        Just(Interval::new(0, 1)),
    ];
    let m1 = M1Engine::default();
    let auto = AutoEngine::default();
    proptest::run_cases(&strategy, |tau| {
        for &key in &keys {
            let tqf = TqfEngine.events_for_key(&ledger, key, tau).unwrap();
            let live = m1.events_for_key(&ledger, key, tau).unwrap();
            let planned = auto.events_for_key(&ledger, key, tau).unwrap();
            prop_assert_eq!(&live, &tqf, "daemon-M1 vs TQF for {} over {}", key, tau);
            prop_assert_eq!(&planned, &tqf, "auto vs TQF for {} over {}", key, tau);
        }
        Ok(())
    });
}
