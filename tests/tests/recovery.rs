//! Failure injection and recovery across the whole stack: torn writes,
//! index loss, flipped bits, reopen-and-continue.

use fabric_ledger::{Error, Ledger, LedgerConfig};
use fabric_workload::dataset::{generate_scaled, DatasetId};
use fabric_workload::ingest::{ingest, IdentityEncoder, IngestMode};
use temporal_core::interval::Interval;
use temporal_core::join::ferry_query;
use temporal_core::tqf::TqfEngine;

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "recovery-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build(dir: &std::path::Path) -> (Ledger, fabric_workload::GeneratedWorkload) {
    let workload = generate_scaled(DatasetId::Ds3, 60);
    let ledger = Ledger::open(dir, LedgerConfig::default()).unwrap();
    ingest(
        &ledger,
        &workload.events,
        IngestMode::MultiEvent,
        &IdentityEncoder,
    )
    .unwrap();
    (ledger, workload)
}

#[test]
fn reopen_preserves_queries_and_chain() {
    let dir = TempDir::new("reopen");
    let t_max;
    let want;
    {
        let (ledger, workload) = build(&dir.0);
        t_max = workload.params.t_max;
        want = ferry_query(&TqfEngine, &ledger, Interval::new(0, t_max))
            .unwrap()
            .records;
        ledger.flush_stores().unwrap();
    }
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    ledger.verify_chain().unwrap();
    let got = ferry_query(&TqfEngine, &ledger, Interval::new(0, t_max))
        .unwrap()
        .records;
    assert_eq!(got, want);
}

#[test]
fn indexes_rebuilt_after_index_db_loss() {
    // Deleting the whole index store simulates a crash before any index
    // write ever landed; recovery must rebuild everything from the block
    // files alone.
    let dir = TempDir::new("idx-loss");
    let t_max;
    let want_height;
    let want;
    {
        let (ledger, workload) = build(&dir.0);
        t_max = workload.params.t_max;
        want_height = ledger.height();
        want = ferry_query(&TqfEngine, &ledger, Interval::new(0, t_max))
            .unwrap()
            .records;
    }
    std::fs::remove_dir_all(dir.0.join("index")).unwrap();
    std::fs::remove_dir_all(dir.0.join("state")).unwrap();
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    assert_eq!(
        ledger.height(),
        want_height,
        "height rebuilt from block files"
    );
    ledger.verify_chain().unwrap();
    let got = ferry_query(&TqfEngine, &ledger, Interval::new(0, t_max))
        .unwrap()
        .records;
    assert_eq!(got, want, "queries identical after full index rebuild");
}

#[test]
fn torn_block_tail_is_discarded_and_ledger_continues() {
    let dir = TempDir::new("torn");
    let height_before;
    {
        let (ledger, _) = build(&dir.0);
        height_before = ledger.height();
    }
    // Tear the final block frame, then drop index/state so recovery must
    // re-scan and sees the torn frame.
    let blocks_dir = dir.0.join("blocks");
    let mut files: Vec<_> = std::fs::read_dir(&blocks_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    let last = files.last().unwrap();
    let data = std::fs::read(last).unwrap();
    std::fs::write(last, &data[..data.len() - 7]).unwrap();
    std::fs::remove_dir_all(dir.0.join("index")).unwrap();
    std::fs::remove_dir_all(dir.0.join("state")).unwrap();

    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    assert_eq!(
        ledger.height(),
        height_before - 1,
        "exactly the torn block is lost"
    );
    ledger.verify_chain().unwrap();
    // And the ledger accepts new blocks after the repair.
    let mut sim = fabric_ledger::TxSimulator::new(&ledger);
    sim.put_state(&b"post-crash"[..], &b"ok"[..]);
    ledger.submit(sim.into_transaction(1).unwrap()).unwrap();
    ledger.cut_block().unwrap();
    assert_eq!(ledger.height(), height_before);
    assert!(ledger.get_state(b"post-crash").unwrap().is_some());
}

#[test]
fn flipped_bit_in_block_file_detected_on_read() {
    let dir = TempDir::new("bitflip");
    {
        build(&dir.0);
    }
    // Flip one bit near the middle of the first block file.
    let blocks_dir = dir.0.join("blocks");
    let mut files: Vec<_> = std::fs::read_dir(&blocks_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    let first = &files[0];
    let mut data = std::fs::read(first).unwrap();
    let mid = data.len() / 2;
    data[mid] ^= 0x40;
    std::fs::write(first, &data).unwrap();

    // Index/state still intact, so the ledger opens; reading the damaged
    // block must fail with a corruption error, not bad data.
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    let mut saw_corruption = false;
    for num in 0..ledger.height() {
        match ledger.get_block(num) {
            Ok(_) => {}
            Err(Error::Corruption { .. }) => {
                saw_corruption = true;
                break;
            }
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
    assert!(saw_corruption, "the flipped bit must be detected");
    assert!(ledger.verify_chain().is_err(), "chain audit must fail too");
}

#[test]
fn kvstore_wal_tail_loss_is_bounded() {
    // Chop the state-db WAL mid-record: only the torn tail may be lost.
    use fabric_kvstore::{KvStore, Options};
    let dir = TempDir::new("wal-tear");
    {
        let db = KvStore::open(&dir.0, Options::default()).unwrap();
        for i in 0..50 {
            db.put(format!("key{i:03}"), format!("value{i}")).unwrap();
        }
        // No flush: everything lives in the WAL.
    }
    let wal = std::fs::read_dir(&dir.0)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "wal"))
        .expect("wal file exists");
    let data = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &data[..data.len() - 3]).unwrap();
    let db = KvStore::open(&dir.0, Options::default()).unwrap();
    // Keys 0..49 were separate WAL records; only the last may be gone.
    for i in 0..49 {
        assert!(
            db.get(format!("key{i:03}").as_bytes()).unwrap().is_some(),
            "key{i:03} must survive"
        );
    }
    assert!(db.get(b"key049").unwrap().is_none(), "torn record dropped");
}

#[test]
fn backup_is_openable_and_independent() {
    let dir = TempDir::new("backup");
    let backup_dir = TempDir::new("backup-dest");
    let dest = backup_dir.0.join("snap");
    let (ledger, workload) = build(&dir.0);
    let t_max = workload.params.t_max;
    let height = ledger.height();
    let want = ferry_query(&TqfEngine, &ledger, Interval::new(0, t_max))
        .unwrap()
        .records;
    ledger.backup(&dest).unwrap();
    // Mutate the original after the backup.
    let mut sim = fabric_ledger::TxSimulator::new(&ledger);
    sim.put_state(&b"post-backup"[..], &b"x"[..]);
    ledger
        .submit(sim.into_transaction(t_max + 1).unwrap())
        .unwrap();
    ledger.cut_block().unwrap();
    // The backup opens, verifies, answers identically, and lacks the
    // post-backup write.
    let snap = Ledger::open(&dest, LedgerConfig::default()).unwrap();
    assert_eq!(snap.height(), height);
    snap.verify_chain().unwrap();
    assert!(snap.get_state(b"post-backup").unwrap().is_none());
    let got = ferry_query(&TqfEngine, &snap, Interval::new(0, t_max))
        .unwrap()
        .records;
    assert_eq!(got, want);
    // Refuses to overwrite an existing backup.
    assert!(ledger.backup(&dest).is_err());
}
