//! Assert the paper's *qualitative* claims as executable tests, at reduced
//! scale. These are the claims EXPERIMENTS.md reports at full scale; here
//! they gate CI.

use fabric_ledger::{Ledger, LedgerConfig};
use fabric_workload::dataset::{generate_scaled, params_scaled, DatasetId};
use fabric_workload::ingest::{ingest, IdentityEncoder, IngestMode};
use temporal_core::interval::Interval;
use temporal_core::join::ferry_query;
use temporal_core::m1::{M1Engine, M1Indexer};
use temporal_core::m2::{M2Encoder, M2Engine};
use temporal_core::partition::FixedLength;
use temporal_core::tqf::TqfEngine;

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "shapes-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const SCALE: u32 = 150;

fn ds1() -> fabric_workload::GeneratedWorkload {
    generate_scaled(DatasetId::Ds1, SCALE)
}

/// Nine Table-I style windows.
fn sweep(t_max: u64) -> Vec<Interval> {
    let w = t_max / 15;
    [0u64, 1, 2, 6, 7, 8, 12, 13, 14]
        .iter()
        .map(|&i| Interval::new(i * w, (i + 1) * w))
        .collect()
}

#[test]
fn tqf_cost_grows_rightward_m1_flat_m2_flat() {
    let workload = ds1();
    let t_max = workload.params.t_max;
    let u = t_max / 75; // paper's u=2K out of 150K
    let dir = TempDir::new("sweep");

    let base = Ledger::open(dir.0.join("base"), LedgerConfig::default()).unwrap();
    ingest(
        &base,
        &workload.events,
        IngestMode::MultiEvent,
        &IdentityEncoder,
    )
    .unwrap();
    let strategy = FixedLength { u };
    M1Indexer::fixed(&strategy)
        .run_epoch(&base, &workload.keys(), Interval::new(0, t_max))
        .unwrap();
    let m2_ledger = Ledger::open(dir.0.join("m2"), LedgerConfig::default()).unwrap();
    ingest(
        &m2_ledger,
        &workload.events,
        IngestMode::MultiEvent,
        &M2Encoder { u },
    )
    .unwrap();

    let mut tqf_blocks = Vec::new();
    let mut m1_blocks = Vec::new();
    let mut m2_blocks = Vec::new();
    for tau in sweep(t_max) {
        tqf_blocks.push(
            ferry_query(&TqfEngine, &base, tau)
                .unwrap()
                .stats
                .blocks_deserialized(),
        );
        m1_blocks.push(
            ferry_query(&M1Engine::default(), &base, tau)
                .unwrap()
                .stats
                .blocks_deserialized(),
        );
        m2_blocks.push(
            ferry_query(&M2Engine { u }, &m2_ledger, tau)
                .unwrap()
                .stats
                .blocks_deserialized(),
        );
    }
    // Paper claim 1: TQF cost grows as the window moves right —
    // monotonically across the sweep, and the last window costs several
    // times the first.
    assert!(
        tqf_blocks.windows(2).all(|w| w[0] <= w[1]),
        "TQF blocks not monotone: {tqf_blocks:?}"
    );
    assert!(
        *tqf_blocks.last().unwrap() >= tqf_blocks[0] * 5,
        "TQF rightmost should cost ≥5x leftmost: {tqf_blocks:?}"
    );
    // Paper claim 2: M1 cost is ~flat (uniform data): max ≤ 2x min.
    let (m1_min, m1_max) = (
        *m1_blocks.iter().min().unwrap(),
        *m1_blocks.iter().max().unwrap(),
    );
    assert!(m1_max <= m1_min * 2, "M1 not flat: {m1_blocks:?}");
    // Paper claim 3: M2 cost is ~flat too, but above M1 (events scattered).
    let (m2_min, m2_max) = (
        *m2_blocks.iter().min().unwrap(),
        *m2_blocks.iter().max().unwrap(),
    );
    assert!(m2_max <= m2_min * 2, "M2 not flat: {m2_blocks:?}");
    for i in 0..m1_blocks.len() {
        assert!(
            m1_blocks[i] <= m2_blocks[i],
            "M1 must not exceed M2 at window {i}: {} vs {}",
            m1_blocks[i],
            m2_blocks[i]
        );
    }
    // Paper claim 4: by the right edge, both models beat TQF decisively.
    assert!(*tqf_blocks.last().unwrap() > 3 * *m2_blocks.last().unwrap());
    assert!(*tqf_blocks.last().unwrap() > 10 * *m1_blocks.last().unwrap());
}

#[test]
fn m1_ghfk_calls_match_arithmetic() {
    // Paper: for a window of length L and interval u, M1 issues
    // keys × ceil(L/u) GHFK calls (2500 = 500 × 5 in Table I).
    let workload = ds1();
    let t_max = workload.params.t_max;
    let u = t_max / 75;
    let dir = TempDir::new("calls");
    let base = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    ingest(
        &base,
        &workload.events,
        IngestMode::MultiEvent,
        &IdentityEncoder,
    )
    .unwrap();
    let strategy = FixedLength { u };
    M1Indexer::fixed(&strategy)
        .run_epoch(&base, &workload.keys(), Interval::new(0, t_max))
        .unwrap();

    let keys = workload.params.total_keys() as u64;
    let tau = Interval::new(0, 5 * u); // aligned window of 5 intervals
    let outcome = ferry_query(&M1Engine::default(), &base, tau).unwrap();
    assert_eq!(outcome.stats.ghfk_calls(), keys * 5);
    // And one block per non-empty interval at most.
    assert!(outcome.stats.blocks_deserialized() <= keys * 5);
}

#[test]
fn tqf_ghfk_calls_equal_key_count() {
    let workload = ds1();
    let dir = TempDir::new("tqf-calls");
    let base = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    ingest(
        &base,
        &workload.events,
        IngestMode::MultiEvent,
        &IdentityEncoder,
    )
    .unwrap();
    let tau = Interval::new(0, workload.params.t_max / 15);
    let outcome = ferry_query(&TqfEngine, &base, tau).unwrap();
    assert_eq!(
        outcome.stats.ghfk_calls(),
        u64::from(workload.params.total_keys()),
        "TQF issues exactly one GHFK per key (paper: 500)"
    );
}

#[test]
fn larger_u_means_fewer_m1_calls_and_blocks() {
    // Paper Table II: u ∈ {2K, 10K, 50K} — join cost drops as u grows.
    let workload = ds1();
    let t_max = workload.params.t_max;
    let tau = Interval::new(t_max * 2 / 15, t_max * 9 / 15);
    let mut previous_blocks = u64::MAX;
    for divisor in [75u64, 15, 3] {
        let u = t_max / divisor;
        let dir = TempDir::new(&format!("table2-{divisor}"));
        let base = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
        ingest(
            &base,
            &workload.events,
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        let strategy = FixedLength { u };
        M1Indexer::fixed(&strategy)
            .run_epoch(&base, &workload.keys(), Interval::new(0, t_max))
            .unwrap();
        let outcome = ferry_query(&M1Engine::default(), &base, tau).unwrap();
        let blocks = outcome.stats.blocks_deserialized();
        assert!(
            blocks < previous_blocks,
            "u={u}: expected fewer blocks than {previous_blocks}, got {blocks}"
        );
        previous_blocks = blocks;
    }
}

#[test]
fn zipf_m1_and_m2_costs_decrease_rightward() {
    // Paper: on DS2 the events thin out to the right, so M1/M2 join costs
    // decrease while TQF's still grows.
    let workload = generate_scaled(DatasetId::Ds2, SCALE);
    let t_max = workload.params.t_max;
    let u = t_max / 75;
    let dir = TempDir::new("zipf");
    let base = Ledger::open(dir.0.join("base"), LedgerConfig::default()).unwrap();
    ingest(
        &base,
        &workload.events,
        IngestMode::MultiEvent,
        &IdentityEncoder,
    )
    .unwrap();
    let m2_ledger = Ledger::open(dir.0.join("m2"), LedgerConfig::default()).unwrap();
    ingest(
        &m2_ledger,
        &workload.events,
        IngestMode::MultiEvent,
        &M2Encoder { u },
    )
    .unwrap();

    let w = t_max / 15;
    let early = Interval::new(w, 2 * w);
    let late = Interval::new(13 * w, 14 * w);
    let m2_early = ferry_query(&M2Engine { u }, &m2_ledger, early).unwrap();
    let m2_late = ferry_query(&M2Engine { u }, &m2_ledger, late).unwrap();
    assert!(
        m2_late.stats.blocks_deserialized() < m2_early.stats.blocks_deserialized(),
        "zipf: late window should be cheaper for M2 ({} vs {})",
        m2_late.stats.blocks_deserialized(),
        m2_early.stats.blocks_deserialized()
    );
    let tqf_early = ferry_query(&TqfEngine, &base, early).unwrap();
    let tqf_late = ferry_query(&TqfEngine, &base, late).unwrap();
    assert!(
        tqf_late.stats.blocks_deserialized() > tqf_early.stats.blocks_deserialized(),
        "zipf: TQF must still grow rightward"
    );
}

#[test]
fn m2_state_db_grows_with_interval_count() {
    // Paper §VII-B: n intervals per key ⇒ n−1 extra states in state-db.
    let p = params_scaled(DatasetId::Ds3, 40);
    let workload = fabric_workload::GeneratedWorkload::generate(p);
    let t_max = p.t_max;
    let dir = TempDir::new("m2-statedb");
    let mut counts = Vec::new();
    for (i, divisor) in [1u64, 5, 25].iter().enumerate() {
        let u = t_max / divisor;
        let sub = dir.0.join(format!("u{i}"));
        let ledger = Ledger::open(&sub, LedgerConfig::default()).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &M2Encoder { u },
        )
        .unwrap();
        counts.push(ledger.state_db().key_count().unwrap());
    }
    assert!(
        counts[0] < counts[1] && counts[1] < counts[2],
        "state-db must grow as u shrinks: {counts:?}"
    );
    // With one interval covering everything, exactly one state per key.
    assert_eq!(counts[0], workload.params.total_keys() as usize);
}

#[test]
fn periodic_indexing_invocations_get_costlier() {
    // Paper Table III: each invocation re-scans all ingested data.
    let workload = generate_scaled(DatasetId::Ds1, 400);
    let t_max = workload.params.t_max;
    let u = t_max / 75;
    let dir = TempDir::new("periodic-cost");
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    let strategy = FixedLength { u };
    let indexer = M1Indexer::fixed(&strategy);
    let epochs = 6u64;
    let mut cursor = 0usize;
    let mut blocks_per_epoch = Vec::new();
    for e in 1..=epochs {
        let epoch = Interval::new(t_max * (e - 1) / epochs, t_max * e / epochs);
        let end = workload.events[cursor..]
            .iter()
            .position(|ev| ev.time > epoch.end)
            .map(|x| cursor + x)
            .unwrap_or(workload.events.len());
        ingest(
            &ledger,
            &workload.events[cursor..end],
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        cursor = end;
        let report = indexer.run_epoch(&ledger, &workload.keys(), epoch).unwrap();
        blocks_per_epoch.push(report.stats.blocks_deserialized());
    }
    assert!(
        blocks_per_epoch.windows(2).all(|w| w[0] <= w[1]),
        "index-build cost must be non-decreasing: {blocks_per_epoch:?}"
    );
    assert!(
        *blocks_per_epoch.last().unwrap() > blocks_per_epoch[0] * 2,
        "last invocation must cost well over the first: {blocks_per_epoch:?}"
    );
}

#[test]
fn get_state_base_probe_count_drops_with_u() {
    // Paper Table IV: 329K probes (u=2K) → 100K (u=50K) for 100K calls.
    use temporal_core::base_api::M2BaseApi;
    let workload = generate_scaled(DatasetId::Ds1, 300);
    let t_max = workload.params.t_max;
    let keys = workload.keys();
    // Probe from well past the last event: the walk must cross every
    // trailing empty interval, so the probe count is ∝ 1/u — the exact
    // mechanism behind Table IV's 329K → 100K drop.
    let now = 2 * t_max;
    let dir = TempDir::new("table4");
    let mut probe_totals = Vec::new();
    for (i, divisor) in [75u64, 15, 3].iter().enumerate() {
        let u = t_max / divisor;
        let ledger = Ledger::open(dir.0.join(format!("u{i}")), LedgerConfig::default()).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &M2Encoder { u },
        )
        .unwrap();
        let api = M2BaseApi::new(u, now);
        let mut probes = 0;
        for &key in &keys {
            let r = api.get_state_base(&ledger, key).unwrap();
            assert!(r.state.is_some(), "every key has a current state");
            probes += r.probes;
        }
        probe_totals.push(probes);
    }
    assert!(
        probe_totals[0] > probe_totals[1] && probe_totals[1] > probe_totals[2],
        "probes must drop as u grows: {probe_totals:?}"
    );
    // u = t_max/3 with now = 2·t_max: at most a handful of probes per key.
    assert!(
        probe_totals[2] <= 5 * keys.len() as u64,
        "expected few probes per key, got {} for {} keys",
        probe_totals[2],
        keys.len()
    );
}
