//! End-to-end acceptance for the continuous-observability subsystem: a
//! real ledger served over HTTP must expose a parseable Prometheus
//! exposition (counters, gauges, histograms with cumulative buckets), the
//! flight recorder must retain recent root spans, and a slow query must
//! produce a JSONL record carrying its full span tree.

use std::collections::BTreeMap;
use std::sync::Arc;

use fabric_ledger::{Ledger, LedgerConfig};
use fabric_telemetry::{http_get, MetricsServer, SlowLogConfig};
use fabric_workload::dataset::{generate_scaled, DatasetId};
use fabric_workload::ingest::{ingest, IdentityEncoder, IngestMode};
use temporal_core::interval::Interval;
use temporal_core::join::ferry_query;
use temporal_core::tqf::TqfEngine;

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "metrics-ep-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A queried ledger with telemetry enabled (spans + histograms populated).
fn queried_ledger(dir: &TempDir) -> Arc<Ledger> {
    let workload = generate_scaled(DatasetId::Ds3, 400);
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    ledger.telemetry().enable();
    ingest(
        &ledger,
        &workload.events,
        IngestMode::SingleEvent,
        &IdentityEncoder,
    )
    .unwrap();
    ferry_query(
        &TqfEngine,
        &ledger,
        Interval::new(0, workload.params.t_max / 2),
    )
    .unwrap();
    Arc::new(ledger)
}

/// Parsed exposition: TYPE declarations plus every sample line.
struct Exposition {
    types: BTreeMap<String, String>,
    samples: Vec<(String, f64)>,
}

fn parse_exposition(text: &str) -> Exposition {
    let mut types = BTreeMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().expect("TYPE name").to_string();
            let kind = it.next().expect("TYPE kind").to_string();
            assert!(it.next().is_none(), "malformed TYPE line: {line}");
            types.insert(name, kind);
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (series, value) = line.rsplit_once(' ').expect(line);
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
        // Metric names must stay within the Prometheus charset.
        let name_part = series.split('{').next().unwrap();
        assert!(
            name_part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name: {series}"
        );
        samples.push((series.to_string(), value));
    }
    Exposition { types, samples }
}

impl Exposition {
    fn value(&self, series: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|(s, _)| s == series)
            .map(|(_, v)| *v)
    }

    fn names_of_kind(&self, kind: &str) -> Vec<&str> {
        self.types
            .iter()
            .filter(|(_, k)| k.as_str() == kind)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

#[test]
fn metrics_endpoint_serves_parseable_prometheus_exposition() {
    let dir = TempDir::new("scrape");
    let ledger = queried_ledger(&dir);
    let tel = ledger.telemetry().clone();
    let collect_ledger = ledger.clone();
    let server = MetricsServer::bind(
        "127.0.0.1:0",
        tel,
        Some(Box::new(move |_| collect_ledger.publish_gauges())),
    )
    .unwrap()
    .with_max_requests(2);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());

    let (code, health) = http_get(addr, "/healthz").unwrap();
    assert_eq!((code, health.as_str()), (200, "ok\n"));
    let (code, body) = http_get(addr, "/metrics").unwrap();
    assert_eq!(code, 200);
    handle.join().unwrap();

    let exp = parse_exposition(&body);

    // At least one counter fed by the query (block deserialisation).
    let counters = exp.names_of_kind("counter");
    assert!(!counters.is_empty(), "no counters in: {body}");
    assert!(
        exp.value("tf_ledger_blocks_deserialized").unwrap_or(0.0) > 0.0,
        "query did not feed the block counter: {body}"
    );

    // Ledger/kvstore occupancy gauges refreshed by the collect hook.
    let gauges = exp.names_of_kind("gauge");
    assert!(
        gauges.iter().any(|g| g.starts_with("tf_statedb_")),
        "no statedb gauges: {gauges:?}"
    );
    assert!(exp.value("tf_ledger_height").unwrap_or(0.0) > 0.0);

    // A histogram with cumulative buckets whose +Inf equals _count.
    let histograms = exp.names_of_kind("histogram");
    assert!(!histograms.is_empty(), "no histograms in: {body}");
    for name in histograms {
        let buckets: Vec<f64> = exp
            .samples
            .iter()
            .filter(|(s, _)| s.starts_with(&format!("{name}_bucket{{")))
            .map(|(_, v)| *v)
            .collect();
        assert!(!buckets.is_empty(), "{name} has no buckets");
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "{name} buckets not cumulative: {buckets:?}"
        );
        let inf = exp
            .value(&format!("{name}_bucket{{le=\"+Inf\"}}"))
            .unwrap_or_else(|| panic!("{name} lacks an +Inf bucket"));
        assert_eq!(Some(inf), exp.value(&format!("{name}_count")));
    }
}

#[test]
fn flight_recorder_retains_recent_roots_and_serves_them() {
    let dir = TempDir::new("flight");
    let ledger = queried_ledger(&dir);
    let tel = ledger.telemetry().clone();

    // Many more root spans than the root ring holds: only the most recent
    // N survive, and the recorder says how many were dropped.
    tel.flight().set_capacity(256, 16);
    for i in 0..100u64 {
        let mut s = tel.span("flood.root");
        s.record("i", i);
    }
    let roots = tel.flight().recent_roots();
    assert_eq!(roots.len(), 16, "root ring must cap retention");
    assert!(roots.iter().all(|r| r.name == "flood.root"));
    assert!(
        roots[roots.len() - 1].metric("i") == Some(99),
        "newest root must be retained"
    );
    assert!(tel.flight().dropped() > 0);

    let server = MetricsServer::bind("127.0.0.1:0", tel, None)
        .unwrap()
        .with_max_requests(1);
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().unwrap());
    let (code, flight) = http_get(addr, "/flight").unwrap();
    handle.join().unwrap();
    assert_eq!(code, 200);
    assert!(flight.contains("\"recorded\""), "{flight}");
    assert!(flight.contains("flood.root"), "{flight}");
}

#[test]
fn slow_query_emits_jsonl_with_full_span_tree() {
    let dir = TempDir::new("slow");
    let ledger = queried_ledger(&dir);
    let tel = ledger.telemetry().clone();
    let (buffer, sink) = fabric_telemetry::slowlog::memory_sink();
    // Threshold 0: every root span is "slow", so one real query must
    // produce at least one record.
    tel.install_slow_log(
        SlowLogConfig {
            threshold_ns: 0,
            p99_factor: None,
            min_samples: u64::MAX,
        },
        sink,
    );
    ferry_query(&TqfEngine, &ledger, Interval::new(0, 1_000)).unwrap();
    tel.remove_slow_log();

    let logged = String::from_utf8(buffer.lock().clone()).unwrap();
    let record = logged
        .lines()
        .find(|l| l.contains("\"name\":\"query.ferry\""))
        .unwrap_or_else(|| panic!("no query.ferry slow record in: {logged}"));
    // One JSON object per line, carrying the whole span tree: the root
    // query span must contain its per-phase children and, transitively,
    // the ledger's GHFK spans.
    assert!(record.starts_with('{') && record.ends_with('}'), "{record}");
    assert!(record.contains("\"kind\":\"slow_query\""), "{record}");
    assert!(record.contains("\"threshold_ns\":0"), "{record}");
    assert!(record.contains("\"children\":["), "{record}");
    assert!(record.contains("ferry.shipments"), "{record}");
    assert!(record.contains("ferry.join"), "{record}");
    assert!(record.contains("\"ghfk\""), "{record}");
}
