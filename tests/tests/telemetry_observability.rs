//! Cross-crate observability guarantees: the telemetry layer's span trees
//! and counters must agree exactly with the deterministic IoStats cost
//! model, EXPLAIN ANALYZE's measured costs must stay within the planner's
//! predicted bounds for every engine, and a disabled handle must record
//! nothing at all.

use fabric_ledger::{Ledger, LedgerConfig};
use fabric_telemetry::SpanNode;
use fabric_workload::dataset::{generate_scaled, DatasetId};
use fabric_workload::ingest::{ingest, IdentityEncoder, IngestMode};
use fabric_workload::EntityId;
use temporal_core::explain_analyze;
use temporal_core::interval::Interval;
use temporal_core::join::ferry_query;
use temporal_core::m1::{M1Engine, M1Indexer};
use temporal_core::m2::{M2Encoder, M2Engine};
use temporal_core::partition::FixedLength;
use temporal_core::tqf::TqfEngine;
use temporal_core::TemporalEngine;

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "telobs-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// DS3 at 1/400 scale, base encoding, with M1 indexes over the whole range.
fn indexed_ledger(dir: &TempDir) -> (Ledger, u64, u64) {
    let workload = generate_scaled(DatasetId::Ds3, 400);
    let t_max = workload.params.t_max;
    let u = (t_max / 10).max(1);
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    ingest(
        &ledger,
        &workload.events,
        IngestMode::SingleEvent,
        &IdentityEncoder,
    )
    .unwrap();
    let strategy = FixedLength { u };
    M1Indexer::fixed(&strategy)
        .run_epoch(&ledger, &workload.keys(), Interval::new(0, t_max))
        .unwrap();
    (ledger, t_max, u)
}

fn m2_ledger(dir: &TempDir) -> (Ledger, u64, u64) {
    let workload = generate_scaled(DatasetId::Ds3, 400);
    let t_max = workload.params.t_max;
    let u = (t_max / 10).max(1);
    let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
    ingest(
        &ledger,
        &workload.events,
        IngestMode::SingleEvent,
        &M2Encoder { u },
    )
    .unwrap();
    (ledger, t_max, u)
}

#[test]
fn explain_analyze_measured_within_predicted_for_all_engines() {
    let dir = TempDir::new("bounds");
    let (ledger, t_max, _) = indexed_ledger(&dir);
    let m2dir = TempDir::new("bounds-m2");
    let (m2led, _, u) = m2_ledger(&m2dir);
    let tau = Interval::new(t_max / 4, t_max / 2);

    for key in [EntityId::shipment(0), EntityId::shipment(1)] {
        let tqf = explain_analyze(&TqfEngine, &ledger, key, tau).unwrap();
        assert!(
            tqf.within_bounds(),
            "TQF measured exceeded prediction:\n{}",
            tqf.render()
        );
        let m1 = explain_analyze(&M1Engine::default(), &ledger, key, tau).unwrap();
        assert!(
            m1.within_bounds(),
            "M1 measured exceeded prediction:\n{}",
            m1.render()
        );
        let m2 = explain_analyze(&M2Engine { u }, &m2led, key, tau).unwrap();
        assert!(
            m2.within_bounds(),
            "M2 measured exceeded prediction:\n{}",
            m2.render()
        );
        // All three engines saw the same events.
        assert_eq!(tqf.events, m1.events);
        assert_eq!(tqf.events, m2.events);
        // The per-step measurements cover every block the run deserialized.
        assert_eq!(tqf.measured_blocks(), tqf.stats.blocks_deserialized());
    }
}

#[test]
fn span_blocks_match_iostats_delta_per_engine() {
    let dir = TempDir::new("lockstep");
    let (ledger, t_max, _) = indexed_ledger(&dir);
    let tau = Interval::new(0, t_max / 2);
    let tel = ledger.telemetry();

    for engine in [&TqfEngine as &dyn TemporalEngine, &M1Engine::default()] {
        tel.enable();
        tel.reset();
        let before = ledger.stats();
        let outcome = ferry_query(engine, &ledger, tau).unwrap();
        let delta = ledger.stats().delta(&before);
        let tree = tel.span_tree();
        tel.disable();

        // Counter vs IoStats: exact.
        let counted = tel
            .registry()
            .snapshot()
            .counter("ledger.blocks.deserialized");
        assert_eq!(
            counted,
            delta.blocks_deserialized,
            "{}: telemetry counter diverged from IoStats",
            engine.name()
        );
        // Span tree vs IoStats: every deserialization shows up as exactly
        // one `block.deserialize` span.
        let spans: usize = tree
            .iter()
            .map(|n| n.count_named("block.deserialize"))
            .sum();
        assert_eq!(
            spans as u64,
            delta.blocks_deserialized,
            "{}: block.deserialize span count diverged from IoStats",
            engine.name()
        );
        assert!(outcome.stats.blocks_deserialized() > 0);
    }
}

#[test]
fn ferry_trace_nests_at_least_three_levels() {
    let dir = TempDir::new("depth");
    let (ledger, t_max, _) = indexed_ledger(&dir);
    let tel = ledger.telemetry();
    tel.enable();
    let _ = tel.drain_spans();
    ferry_query(&TqfEngine, &ledger, Interval::new(0, t_max)).unwrap();
    let tree = tel.span_tree();
    tel.disable();

    let depth = tree.iter().map(SpanNode::depth).max().unwrap_or(0);
    assert!(depth >= 3, "span tree depth {depth} < 3");
    let root = tree
        .iter()
        .find(|n| n.record.name == "query.ferry")
        .expect("query.ferry root span");
    assert!(
        root.count_named("ghfk") > 0,
        "ghfk spans nest under the query"
    );
    assert!(
        root.count_named("block.deserialize") > 0,
        "block.deserialize spans nest under the query"
    );
    let rendered = fabric_telemetry::render_tree(&tree);
    assert!(rendered.contains("query.ferry"), "{rendered}");
}

#[test]
fn disabled_telemetry_records_nothing_across_the_stack() {
    let dir = TempDir::new("disabled");
    let (ledger, t_max, _) = indexed_ledger(&dir);
    let tel = ledger.telemetry();
    assert!(!tel.is_enabled());
    ferry_query(&M1Engine::default(), &ledger, Interval::new(0, t_max)).unwrap();
    assert!(tel.span_tree().is_empty(), "no spans when disabled");
    // Queue probes register their instruments when the ledger opens, so
    // the snapshot lists them; disabled telemetry records no *values*.
    let snapshot = tel.snapshot();
    assert!(
        snapshot.counters.iter().all(|(_, v)| *v == 0),
        "no counter increments when disabled: {snapshot:?}"
    );
    assert!(
        snapshot.histograms.iter().all(|(_, h)| h.count == 0),
        "no histogram samples when disabled"
    );
}
