//! The reproduction's central correctness invariant: TQF, M1 and M2 are
//! *interchangeable* — same events, same join result, for every query
//! window — differing only in cost. If this holds, every performance
//! comparison in the benchmark harness compares like with like.

use fabric_kvstore::Backend;
use fabric_ledger::{Ledger, LedgerConfig};
use fabric_workload::dataset::{generate_scaled, DatasetId};
use fabric_workload::generator::{EventDistribution, GeneratedWorkload, WorkloadParams};
use fabric_workload::ingest::{ingest, IdentityEncoder, IngestMode};
use temporal_core::interval::Interval;
use temporal_core::join::ferry_query;
use temporal_core::m1::{M1Engine, M1Indexer};
use temporal_core::m2::{M2Encoder, M2Engine};
use temporal_core::partition::FixedLength;
use temporal_core::tqf::TqfEngine;
use temporal_core::TemporalEngine;

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "equiv-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Build the three ledgers (base+M1, M2) for a workload and check
/// equivalence over `taus`.
fn assert_equivalent(
    tag: &str,
    workload: &GeneratedWorkload,
    mode: IngestMode,
    u: u64,
    taus: &[Interval],
) {
    let dir = TempDir::new(tag);
    let t_max = workload.params.t_max;

    let base = Ledger::open(dir.0.join("base"), LedgerConfig::default()).unwrap();
    ingest(&base, &workload.events, mode, &IdentityEncoder).unwrap();
    let strategy = FixedLength { u };
    M1Indexer::fixed(&strategy)
        .run_epoch(&base, &workload.keys(), Interval::new(0, t_max))
        .unwrap();

    let m2 = Ledger::open(dir.0.join("m2"), LedgerConfig::default()).unwrap();
    ingest(&m2, &workload.events, mode, &M2Encoder { u }).unwrap();

    let m2_engine = M2Engine { u };
    for &tau in taus {
        // Per-key event equivalence.
        for key in workload.keys() {
            let a = TqfEngine.events_for_key(&base, key, tau).unwrap();
            let b = M1Engine::default().events_for_key(&base, key, tau).unwrap();
            let c = m2_engine.events_for_key(&m2, key, tau).unwrap();
            assert_eq!(a, b, "[{tag}] TQF vs M1 for {key} over {tau}");
            assert_eq!(a, c, "[{tag}] TQF vs M2 for {key} over {tau}");
        }
        // Join equivalence.
        let a = ferry_query(&TqfEngine, &base, tau).unwrap();
        let b = ferry_query(&M1Engine::default(), &base, tau).unwrap();
        let c = ferry_query(&m2_engine, &m2, tau).unwrap();
        assert_eq!(a.records, b.records, "[{tag}] join TQF vs M1 over {tau}");
        assert_eq!(a.records, c.records, "[{tag}] join TQF vs M2 over {tau}");
        assert_eq!(a.events_scanned, b.events_scanned);
        assert_eq!(a.events_scanned, c.events_scanned);
    }
}

fn windows(t_max: u64) -> Vec<Interval> {
    vec![
        Interval::new(0, t_max / 10),                 // leftmost
        Interval::new(t_max / 3, t_max / 2),          // middle, unaligned
        Interval::new(t_max - t_max / 10, t_max),     // rightmost
        Interval::new(0, t_max),                      // everything
        Interval::new(t_max / 7 + 1, t_max / 7 + 13), // tiny, odd offsets
    ]
}

#[test]
fn ds3_uniform_se_equivalence() {
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    assert_equivalent(
        "ds3-se",
        &workload,
        IngestMode::SingleEvent,
        t_max / 25,
        &windows(t_max),
    );
}

#[test]
fn ds3_uniform_me_equivalence() {
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    assert_equivalent(
        "ds3-me",
        &workload,
        IngestMode::MultiEvent,
        t_max / 25,
        &windows(t_max),
    );
}

#[test]
fn ds2_zipf_me_equivalence() {
    let workload = generate_scaled(DatasetId::Ds2, 300);
    let t_max = workload.params.t_max;
    assert_equivalent(
        "ds2-me",
        &workload,
        IngestMode::MultiEvent,
        t_max / 25,
        &windows(t_max),
    );
}

#[test]
fn u_not_dividing_t_max_equivalence() {
    // u = 7 leaves a ragged final interval; everything must still agree.
    let workload = GeneratedWorkload::generate(WorkloadParams {
        shipments: 6,
        containers: 3,
        trucks: 2,
        events_per_key: 30,
        distribution: EventDistribution::Uniform,
        t_max: 997, // prime: no alignment anywhere
        seed: 11,
    });
    assert_equivalent(
        "ragged-u",
        &workload,
        IngestMode::MultiEvent,
        7,
        &windows(997),
    );
}

#[test]
fn u_larger_than_t_max_equivalence() {
    let workload = GeneratedWorkload::generate(WorkloadParams {
        shipments: 4,
        containers: 2,
        trucks: 2,
        events_per_key: 20,
        distribution: EventDistribution::Uniform,
        t_max: 500,
        seed: 3,
    });
    assert_equivalent(
        "huge-u",
        &workload,
        IngestMode::SingleEvent,
        10_000,
        &windows(500),
    );
}

#[test]
fn read_path_overhaul_keeps_engines_bit_identical() {
    // The read-path overhaul (coalesced history runs + selective tx decode
    // + sharded block cache) must be invisible to every engine: identical
    // join records and event counts with the overhaul on vs. the seed
    // per-location, uncached path.
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    let u = t_max / 25;
    let dir = TempDir::new("overhaul");

    let overhaul_cfg = || {
        LedgerConfig::default()
            .with_cache_blocks(256)
            .with_cache_shards(4)
    };
    let seed_cfg = || LedgerConfig::default().with_coalesce_history(false);

    let build_base = |sub: &str, config: LedgerConfig| -> Ledger {
        let ledger = Ledger::open(dir.0.join(sub), config).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        let strategy = FixedLength { u };
        M1Indexer::fixed(&strategy)
            .run_epoch(&ledger, &workload.keys(), Interval::new(0, t_max))
            .unwrap();
        ledger
    };
    let build_m2 = |sub: &str, config: LedgerConfig| -> Ledger {
        let ledger = Ledger::open(dir.0.join(sub), config).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &M2Encoder { u },
        )
        .unwrap();
        ledger
    };

    let base_on = build_base("base-on", overhaul_cfg());
    let base_off = build_base("base-off", seed_cfg());
    let m2_on = build_m2("m2-on", overhaul_cfg());
    let m2_off = build_m2("m2-off", seed_cfg());

    let m1_engine = M1Engine::default();
    let m2_engine = M2Engine { u };
    for tau in windows(t_max) {
        // Run each window twice so the second pass hits the warm cache on
        // the overhaul ledgers — results must not depend on cache state.
        for pass in 0..2 {
            for (name, ledger_on, ledger_off) in [
                ("tqf", &base_on, &base_off),
                ("m1", &base_on, &base_off),
                ("m2", &m2_on, &m2_off),
            ] {
                let engine: &dyn TemporalEngine = match name {
                    "tqf" => &TqfEngine,
                    "m1" => &m1_engine,
                    _ => &m2_engine,
                };
                let a = ferry_query(engine, ledger_on, tau).unwrap();
                let b = ferry_query(engine, ledger_off, tau).unwrap();
                assert_eq!(
                    a.records, b.records,
                    "{name} records diverged over {tau} (pass {pass})"
                );
                assert_eq!(
                    a.events_scanned, b.events_scanned,
                    "{name} events_scanned diverged over {tau} (pass {pass})"
                );
            }
        }
    }
}

/// Every `blockfile_*` under `dir`, name-sorted, with its exact bytes.
fn read_blockfiles(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("blockfile_") {
            out.push((name, std::fs::read(entry.path()).unwrap()));
        }
    }
    out.sort();
    out
}

#[test]
fn log_backend_is_equivalent_to_lsm() {
    // The storage-engine boundary must be invisible above the kvstore:
    // the same workload ingested on the LSM and on the value-log engine
    // produces bit-identical blockfiles, identical current state
    // (including the M1 EV-set rows and the null tombstones the indexer
    // writes), identical GHFK history, and identical query answers with
    // identical cost counters.
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    let u = t_max / 25;
    let dir = TempDir::new("backend");

    let build_base = |sub: &str, backend: Backend| -> Ledger {
        let config = LedgerConfig::default().with_backend(backend);
        let ledger = Ledger::open(dir.0.join(sub), config).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        let strategy = FixedLength { u };
        M1Indexer::fixed(&strategy)
            .run_epoch(&ledger, &workload.keys(), Interval::new(0, t_max))
            .unwrap();
        ledger
    };
    let lsm = build_base("lsm", Backend::Lsm);
    let log = build_base("log", Backend::Log);

    assert_eq!(lsm.height(), log.height());
    assert_eq!(lsm.last_hash(), log.last_hash(), "identical hash chains");
    assert_eq!(
        read_blockfiles(&dir.0.join("lsm").join("blocks")),
        read_blockfiles(&dir.0.join("log").join("blocks")),
        "bit-identical block files"
    );
    assert_eq!(
        lsm.get_state_by_range(None, None).unwrap(),
        log.get_state_by_range(None, None).unwrap(),
        "identical current state (events + M1 index rows)"
    );
    for key in workload.keys() {
        let a: Vec<_> = lsm
            .get_history_for_key(&key.key())
            .unwrap()
            .collect_all()
            .unwrap();
        let b: Vec<_> = log
            .get_history_for_key(&key.key())
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(a, b, "GHFK history for {key}");
    }

    // The table-1 query suite: TQF (pure GHFK) and M1 (index-assisted)
    // per-key events plus the ferry join, over every window shape.
    let m1_engine = M1Engine::default();
    for tau in windows(t_max) {
        for key in workload.keys() {
            assert_eq!(
                TqfEngine.events_for_key(&lsm, key, tau).unwrap(),
                TqfEngine.events_for_key(&log, key, tau).unwrap(),
                "TQF events for {key} over {tau}"
            );
            assert_eq!(
                m1_engine.events_for_key(&lsm, key, tau).unwrap(),
                m1_engine.events_for_key(&log, key, tau).unwrap(),
                "M1 events for {key} over {tau}"
            );
        }
        let a = ferry_query(&TqfEngine, &lsm, tau).unwrap();
        let b = ferry_query(&TqfEngine, &log, tau).unwrap();
        assert_eq!(a.records, b.records, "TQF join over {tau}");
        assert_eq!(a.events_scanned, b.events_scanned, "TQF cost over {tau}");
        let a = ferry_query(&m1_engine, &lsm, tau).unwrap();
        let b = ferry_query(&m1_engine, &log, tau).unwrap();
        assert_eq!(a.records, b.records, "M1 join over {tau}");
        assert_eq!(a.events_scanned, b.events_scanned, "M1 cost over {tau}");
    }
}

#[test]
fn log_backend_m2_matches_lsm_m2() {
    // Same check for the M2 interval-encoded layout, whose values are
    // rewritten in place far more often — the compaction-heavy shape.
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    let u = t_max / 25;
    let dir = TempDir::new("backend-m2");

    let build = |sub: &str, backend: Backend| -> Ledger {
        let config = LedgerConfig::default().with_backend(backend);
        let ledger = Ledger::open(dir.0.join(sub), config).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &M2Encoder { u },
        )
        .unwrap();
        ledger
    };
    let lsm = build("lsm", Backend::Lsm);
    let log = build("log", Backend::Log);
    assert_eq!(lsm.last_hash(), log.last_hash());
    assert_eq!(
        lsm.get_state_by_range(None, None).unwrap(),
        log.get_state_by_range(None, None).unwrap()
    );
    let m2_engine = M2Engine { u };
    for tau in windows(t_max) {
        let a = ferry_query(&m2_engine, &lsm, tau).unwrap();
        let b = ferry_query(&m2_engine, &log, tau).unwrap();
        assert_eq!(a.records, b.records, "M2 join over {tau}");
        assert_eq!(a.events_scanned, b.events_scanned, "M2 cost over {tau}");
    }
}

#[test]
fn log_backend_reopens_after_torn_index_tail() {
    // Crash simulation on the value-log engine: tear the tail off the
    // index store's newest data file (dropping the final batch — the last
    // block's index rows and chain tip), then reopen. The vlog recovery
    // truncates the torn record and ledger recovery re-applies the lost
    // block from the blockfiles, converging to the LSM ledger's answers.
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    let dir = TempDir::new("backend-crash");

    let build = |sub: &str, backend: Backend| {
        let config = LedgerConfig::default().with_backend(backend);
        let ledger = Ledger::open(dir.0.join(sub), config).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        ledger
    };
    let lsm = build("lsm", Backend::Lsm);
    let want_height = lsm.height();
    let want = ferry_query(&TqfEngine, &lsm, Interval::new(0, t_max))
        .unwrap()
        .records;
    drop(build("log", Backend::Log));

    let index_dir = dir.0.join("log").join("index");
    let mut vlogs: Vec<_> = std::fs::read_dir(&index_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "vlog"))
        .collect();
    vlogs.sort();
    let newest = vlogs.last().expect("index store holds data files");
    let data = std::fs::read(newest).unwrap();
    assert!(data.len() > 16, "active file must hold records");
    std::fs::write(newest, &data[..data.len() - 9]).unwrap();

    // Auto resolves the on-disk marker back to the log engine.
    let log = Ledger::open(dir.0.join("log"), LedgerConfig::default()).unwrap();
    assert_eq!(log.height(), want_height, "lost block re-applied");
    log.verify_chain().unwrap();
    let got = ferry_query(&TqfEngine, &log, Interval::new(0, t_max))
        .unwrap()
        .records;
    assert_eq!(got, want, "answers identical after crash recovery");

    // Losing the stores entirely also rebuilds — but a bare directory no
    // longer carries the engine marker, so the backend must be named.
    std::fs::remove_dir_all(dir.0.join("log").join("index")).unwrap();
    std::fs::remove_dir_all(dir.0.join("log").join("state")).unwrap();
    drop(log);
    let log = Ledger::open(
        dir.0.join("log"),
        LedgerConfig::default().with_backend(Backend::Log),
    )
    .unwrap();
    assert_eq!(log.height(), want_height);
    let got = ferry_query(&TqfEngine, &log, Interval::new(0, t_max))
        .unwrap()
        .records;
    assert_eq!(got, want, "answers identical after full store rebuild");
}

#[test]
fn periodic_m1_equals_oneshot_m1() {
    // Indexing in 4 epochs must answer identically to indexing in 1.
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    let u = t_max / 20;
    let dir = TempDir::new("periodic-vs-oneshot");

    let build = |sub: &str, epochs: u64| -> Ledger {
        let ledger = Ledger::open(dir.0.join(sub), LedgerConfig::default()).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        let strategy = FixedLength { u };
        let indexer = M1Indexer::fixed(&strategy);
        for e in 1..=epochs {
            indexer
                .run_epoch(
                    &ledger,
                    &workload.keys(),
                    Interval::new(t_max * (e - 1) / epochs, t_max * e / epochs),
                )
                .unwrap();
        }
        ledger
    };
    let oneshot = build("oneshot", 1);
    let periodic = build("periodic", 4);
    for tau in windows(t_max) {
        let a = ferry_query(&M1Engine::default(), &oneshot, tau).unwrap();
        let b = ferry_query(&M1Engine::default(), &periodic, tau).unwrap();
        assert_eq!(
            a.records, b.records,
            "epoch count must not affect answers ({tau})"
        );
    }
}
