//! The reproduction's central correctness invariant: TQF, M1 and M2 are
//! *interchangeable* — same events, same join result, for every query
//! window — differing only in cost. If this holds, every performance
//! comparison in the benchmark harness compares like with like.

use fabric_ledger::{Ledger, LedgerConfig};
use fabric_workload::dataset::{generate_scaled, DatasetId};
use fabric_workload::generator::{EventDistribution, GeneratedWorkload, WorkloadParams};
use fabric_workload::ingest::{ingest, IdentityEncoder, IngestMode};
use temporal_core::interval::Interval;
use temporal_core::join::ferry_query;
use temporal_core::m1::{M1Engine, M1Indexer};
use temporal_core::m2::{M2Encoder, M2Engine};
use temporal_core::partition::FixedLength;
use temporal_core::tqf::TqfEngine;
use temporal_core::TemporalEngine;

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "equiv-test-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Build the three ledgers (base+M1, M2) for a workload and check
/// equivalence over `taus`.
fn assert_equivalent(
    tag: &str,
    workload: &GeneratedWorkload,
    mode: IngestMode,
    u: u64,
    taus: &[Interval],
) {
    let dir = TempDir::new(tag);
    let t_max = workload.params.t_max;

    let base = Ledger::open(dir.0.join("base"), LedgerConfig::default()).unwrap();
    ingest(&base, &workload.events, mode, &IdentityEncoder).unwrap();
    let strategy = FixedLength { u };
    M1Indexer::fixed(&strategy)
        .run_epoch(&base, &workload.keys(), Interval::new(0, t_max))
        .unwrap();

    let m2 = Ledger::open(dir.0.join("m2"), LedgerConfig::default()).unwrap();
    ingest(&m2, &workload.events, mode, &M2Encoder { u }).unwrap();

    let m2_engine = M2Engine { u };
    for &tau in taus {
        // Per-key event equivalence.
        for key in workload.keys() {
            let a = TqfEngine.events_for_key(&base, key, tau).unwrap();
            let b = M1Engine::default().events_for_key(&base, key, tau).unwrap();
            let c = m2_engine.events_for_key(&m2, key, tau).unwrap();
            assert_eq!(a, b, "[{tag}] TQF vs M1 for {key} over {tau}");
            assert_eq!(a, c, "[{tag}] TQF vs M2 for {key} over {tau}");
        }
        // Join equivalence.
        let a = ferry_query(&TqfEngine, &base, tau).unwrap();
        let b = ferry_query(&M1Engine::default(), &base, tau).unwrap();
        let c = ferry_query(&m2_engine, &m2, tau).unwrap();
        assert_eq!(a.records, b.records, "[{tag}] join TQF vs M1 over {tau}");
        assert_eq!(a.records, c.records, "[{tag}] join TQF vs M2 over {tau}");
        assert_eq!(a.events_scanned, b.events_scanned);
        assert_eq!(a.events_scanned, c.events_scanned);
    }
}

fn windows(t_max: u64) -> Vec<Interval> {
    vec![
        Interval::new(0, t_max / 10),                 // leftmost
        Interval::new(t_max / 3, t_max / 2),          // middle, unaligned
        Interval::new(t_max - t_max / 10, t_max),     // rightmost
        Interval::new(0, t_max),                      // everything
        Interval::new(t_max / 7 + 1, t_max / 7 + 13), // tiny, odd offsets
    ]
}

#[test]
fn ds3_uniform_se_equivalence() {
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    assert_equivalent(
        "ds3-se",
        &workload,
        IngestMode::SingleEvent,
        t_max / 25,
        &windows(t_max),
    );
}

#[test]
fn ds3_uniform_me_equivalence() {
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    assert_equivalent(
        "ds3-me",
        &workload,
        IngestMode::MultiEvent,
        t_max / 25,
        &windows(t_max),
    );
}

#[test]
fn ds2_zipf_me_equivalence() {
    let workload = generate_scaled(DatasetId::Ds2, 300);
    let t_max = workload.params.t_max;
    assert_equivalent(
        "ds2-me",
        &workload,
        IngestMode::MultiEvent,
        t_max / 25,
        &windows(t_max),
    );
}

#[test]
fn u_not_dividing_t_max_equivalence() {
    // u = 7 leaves a ragged final interval; everything must still agree.
    let workload = GeneratedWorkload::generate(WorkloadParams {
        shipments: 6,
        containers: 3,
        trucks: 2,
        events_per_key: 30,
        distribution: EventDistribution::Uniform,
        t_max: 997, // prime: no alignment anywhere
        seed: 11,
    });
    assert_equivalent(
        "ragged-u",
        &workload,
        IngestMode::MultiEvent,
        7,
        &windows(997),
    );
}

#[test]
fn u_larger_than_t_max_equivalence() {
    let workload = GeneratedWorkload::generate(WorkloadParams {
        shipments: 4,
        containers: 2,
        trucks: 2,
        events_per_key: 20,
        distribution: EventDistribution::Uniform,
        t_max: 500,
        seed: 3,
    });
    assert_equivalent(
        "huge-u",
        &workload,
        IngestMode::SingleEvent,
        10_000,
        &windows(500),
    );
}

#[test]
fn read_path_overhaul_keeps_engines_bit_identical() {
    // The read-path overhaul (coalesced history runs + selective tx decode
    // + sharded block cache) must be invisible to every engine: identical
    // join records and event counts with the overhaul on vs. the seed
    // per-location, uncached path.
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    let u = t_max / 25;
    let dir = TempDir::new("overhaul");

    let overhaul_cfg = || {
        LedgerConfig::default()
            .with_cache_blocks(256)
            .with_cache_shards(4)
    };
    let seed_cfg = || LedgerConfig::default().with_coalesce_history(false);

    let build_base = |sub: &str, config: LedgerConfig| -> Ledger {
        let ledger = Ledger::open(dir.0.join(sub), config).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        let strategy = FixedLength { u };
        M1Indexer::fixed(&strategy)
            .run_epoch(&ledger, &workload.keys(), Interval::new(0, t_max))
            .unwrap();
        ledger
    };
    let build_m2 = |sub: &str, config: LedgerConfig| -> Ledger {
        let ledger = Ledger::open(dir.0.join(sub), config).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &M2Encoder { u },
        )
        .unwrap();
        ledger
    };

    let base_on = build_base("base-on", overhaul_cfg());
    let base_off = build_base("base-off", seed_cfg());
    let m2_on = build_m2("m2-on", overhaul_cfg());
    let m2_off = build_m2("m2-off", seed_cfg());

    let m1_engine = M1Engine::default();
    let m2_engine = M2Engine { u };
    for tau in windows(t_max) {
        // Run each window twice so the second pass hits the warm cache on
        // the overhaul ledgers — results must not depend on cache state.
        for pass in 0..2 {
            for (name, ledger_on, ledger_off) in [
                ("tqf", &base_on, &base_off),
                ("m1", &base_on, &base_off),
                ("m2", &m2_on, &m2_off),
            ] {
                let engine: &dyn TemporalEngine = match name {
                    "tqf" => &TqfEngine,
                    "m1" => &m1_engine,
                    _ => &m2_engine,
                };
                let a = ferry_query(engine, ledger_on, tau).unwrap();
                let b = ferry_query(engine, ledger_off, tau).unwrap();
                assert_eq!(
                    a.records, b.records,
                    "{name} records diverged over {tau} (pass {pass})"
                );
                assert_eq!(
                    a.events_scanned, b.events_scanned,
                    "{name} events_scanned diverged over {tau} (pass {pass})"
                );
            }
        }
    }
}

#[test]
fn periodic_m1_equals_oneshot_m1() {
    // Indexing in 4 epochs must answer identically to indexing in 1.
    let workload = generate_scaled(DatasetId::Ds3, 40);
    let t_max = workload.params.t_max;
    let u = t_max / 20;
    let dir = TempDir::new("periodic-vs-oneshot");

    let build = |sub: &str, epochs: u64| -> Ledger {
        let ledger = Ledger::open(dir.0.join(sub), LedgerConfig::default()).unwrap();
        ingest(
            &ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        let strategy = FixedLength { u };
        let indexer = M1Indexer::fixed(&strategy);
        for e in 1..=epochs {
            indexer
                .run_epoch(
                    &ledger,
                    &workload.keys(),
                    Interval::new(t_max * (e - 1) / epochs, t_max * e / epochs),
                )
                .unwrap();
        }
        ledger
    };
    let oneshot = build("oneshot", 1);
    let periodic = build("periodic", 4);
    for tau in windows(t_max) {
        let a = ferry_query(&M1Engine::default(), &oneshot, tau).unwrap();
        let b = ferry_query(&M1Engine::default(), &periodic, tau).unwrap();
        assert_eq!(
            a.records, b.records,
            "epoch count must not affect answers ({tau})"
        );
    }
}
