//! Streaming-cursor and cost-based-planner integration tests.
//!
//! Three invariants from the streaming query core:
//!
//! 1. Draining a cursor costs exactly what the eager call costs (the
//!    eager path *is* a drained cursor), and partial consumption costs
//!    strictly fewer blocks — early termination is real, not cosmetic.
//! 2. The cost-based planner (`--engine auto`) never deserializes more
//!    blocks than the best fixed engine for the same query on a
//!    bench-style workload.
//! 3. (property) The auto-planned answer is byte-identical to every
//!    fixed engine across random windows, including windows entirely
//!    past the data and windows aligned to index-interval edges.

use fabric_ledger::{Ledger, LedgerConfig};
use fabric_workload::dataset::{generate_scaled, DatasetId};
use fabric_workload::generator::GeneratedWorkload;
use fabric_workload::ingest::{ingest, IdentityEncoder, IngestMode};
use fabric_workload::EntityId;
use proptest::prelude::*;
use temporal_core::interval::Interval;
use temporal_core::m1::{M1Engine, M1Indexer};
use temporal_core::m2::{M2Encoder, M2Engine};
use temporal_core::partition::FixedLength;
use temporal_core::tqf::TqfEngine;
use temporal_core::{drain, AutoEngine, PlannerLog, TemporalEngine};

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        let p = std::env::temp_dir().join(format!(
            "streaming-planner-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A base ledger (plain keys + M1 indexes over `(0, indexed_to]`) and an
/// M2 ledger (interval-tagged keys), both holding the same workload.
struct Fixture {
    _dir: TempDir,
    workload: GeneratedWorkload,
    base: Ledger,
    m2: Ledger,
    u: u64,
    t_max: u64,
    indexed_to: u64,
}

impl Fixture {
    /// `index_fraction` is how much of `(0, t_max]` gets M1-indexed, in
    /// u-aligned units; 1.0 mirrors the bench tables (fully indexed),
    /// less leaves an unindexed tail so auto plans the hybrid path.
    fn build(tag: &str, mode: IngestMode, index_fraction: f64) -> Fixture {
        let dir = TempDir::new(tag);
        let workload = generate_scaled(DatasetId::Ds3, 40);
        let t_max = workload.params.t_max;
        let u = t_max / 25;
        let indexed_to = (((t_max as f64 * index_fraction) as u64) / u).max(1) * u;

        let base = Ledger::open(dir.0.join("base"), LedgerConfig::default()).unwrap();
        ingest(&base, &workload.events, mode, &IdentityEncoder).unwrap();
        let strategy = FixedLength { u };
        M1Indexer::fixed(&strategy)
            .run_epoch(&base, &workload.keys(), Interval::new(0, indexed_to))
            .unwrap();

        let m2 = Ledger::open(dir.0.join("m2"), LedgerConfig::default()).unwrap();
        ingest(&m2, &workload.events, mode, &M2Encoder { u }).unwrap();

        Fixture {
            _dir: dir,
            workload,
            base,
            m2,
            u,
            t_max,
            indexed_to,
        }
    }

    fn keys(&self) -> Vec<EntityId> {
        self.workload.keys()
    }
}

/// Blocks and GHFK calls an engine spends answering one query.
fn cost(engine: &dyn TemporalEngine, ledger: &Ledger, key: EntityId, tau: Interval) -> (u64, u64) {
    let before = ledger.stats();
    engine.events_for_key(ledger, key, tau).unwrap();
    let d = ledger.stats().delta(&before);
    (d.blocks_deserialized, d.ghfk_calls)
}

#[test]
fn cursor_drain_matches_eager_cost_and_partial_consumption_costs_less() {
    let fx = Fixture::build("cursor-cost", IngestMode::SingleEvent, 1.0);
    let tau = Interval::new(0, fx.t_max);
    let m1 = M1Engine::default();
    let m2 = M2Engine { u: fx.u };
    let cases: [(&str, &dyn TemporalEngine, &Ledger); 3] = [
        ("tqf", &TqfEngine, &fx.base),
        ("m1", &m1, &fx.base),
        ("m2", &m2, &fx.m2),
    ];
    for (name, engine, ledger) in cases {
        for key in fx.keys() {
            // Eager call vs explicit cursor drain: identical events AND
            // identical I/O counters (the eager path is a drained cursor).
            let before = ledger.stats();
            let eager = engine.events_for_key(ledger, key, tau).unwrap();
            let d_eager = ledger.stats().delta(&before);

            let before = ledger.stats();
            let mut cursor = engine.events_cursor(ledger, key, tau).unwrap();
            let streamed = drain(cursor.as_mut()).unwrap();
            drop(cursor);
            let d_cursor = ledger.stats().delta(&before);

            assert_eq!(
                eager, streamed,
                "[{name}] {key}: cursor must stream the eager answer"
            );
            assert!(
                d_cursor.blocks_deserialized <= d_eager.blocks_deserialized,
                "[{name}] {key}: cursor blocks {} > eager {}",
                d_cursor.blocks_deserialized,
                d_eager.blocks_deserialized
            );
            assert!(
                d_cursor.ghfk_calls <= d_eager.ghfk_calls,
                "[{name}] {key}: cursor ghfk {} > eager {}",
                d_cursor.ghfk_calls,
                d_eager.ghfk_calls
            );

            // Consuming only the first event must stop the scan early:
            // strictly fewer blocks than the full drain whenever the full
            // drain needed more than one block.
            if !eager.is_empty() && d_eager.blocks_deserialized > 1 {
                let before = ledger.stats();
                let mut cursor = engine.events_cursor(ledger, key, tau).unwrap();
                assert!(cursor.next_event().unwrap().is_some());
                drop(cursor);
                let d_partial = ledger.stats().delta(&before);
                assert!(
                    d_partial.blocks_deserialized < d_eager.blocks_deserialized,
                    "[{name}] {key}: partial consumption read {} blocks, full drain {}",
                    d_partial.blocks_deserialized,
                    d_eager.blocks_deserialized
                );
            }
        }
    }
}

#[test]
fn auto_planner_never_beaten_by_a_fixed_engine() {
    // Fully indexed base ledger, like the bench tables.
    let fx = Fixture::build("auto-vs-fixed", IngestMode::MultiEvent, 1.0);
    let t = fx.t_max;
    let windows = [
        Interval::new(0, t / 10),
        Interval::new(t / 3, t / 2),
        Interval::new(t - t / 10, t),
        Interval::new(0, t),
        Interval::new(t / 7 + 1, t / 7 + 13),
        Interval::new(fx.u, 3 * fx.u), // θ-aligned
    ];
    let m1 = M1Engine::default();
    let m2 = M2Engine { u: fx.u };
    for tau in windows {
        for key in fx.keys() {
            let expected = TqfEngine.events_for_key(&fx.base, key, tau).unwrap();

            let (tqf_blocks, _) = cost(&TqfEngine, &fx.base, key, tau);
            let (m1_blocks, _) = cost(&m1, &fx.base, key, tau);
            let before = fx.base.stats();
            let got = AutoEngine::default()
                .events_for_key(&fx.base, key, tau)
                .unwrap();
            let auto_blocks = fx.base.stats().delta(&before).blocks_deserialized;
            assert_eq!(got, expected, "auto answer diverged for {key} over {tau}");
            assert!(
                auto_blocks <= tqf_blocks.min(m1_blocks),
                "auto read {auto_blocks} blocks for {key} over {tau}, best fixed engine {}",
                tqf_blocks.min(m1_blocks)
            );

            // On the interval-tagged ledger auto must detect M2 layout and
            // match its cost.
            let (m2_blocks, _) = cost(&m2, &fx.m2, key, tau);
            let before = fx.m2.stats();
            let got = AutoEngine::default()
                .events_for_key(&fx.m2, key, tau)
                .unwrap();
            let auto_m2_blocks = fx.m2.stats().delta(&before).blocks_deserialized;
            assert_eq!(
                got, expected,
                "auto-on-M2 answer diverged for {key} over {tau}"
            );
            assert!(
                auto_m2_blocks <= m2_blocks,
                "auto read {auto_m2_blocks} blocks on the M2 ledger, M2 itself {m2_blocks}"
            );
        }
    }
}

#[test]
fn auto_matches_every_fixed_engine_on_random_windows() {
    // Partially indexed (3/5 of the time axis) so windows crossing the
    // horizon exercise the hybrid plan: M1 EV-sets for covered θs plus a
    // bounded base-data scan for the unindexed fringe.
    let fx = Fixture::build("prop", IngestMode::MultiEvent, 0.6);
    assert!(
        fx.indexed_to < fx.t_max,
        "fixture must leave an unindexed tail"
    );
    let t = fx.t_max;
    let u = fx.u;
    let windows = prop_oneof![
        // Anywhere on the axis, length up to the whole history; start may
        // exceed t_max, putting the window entirely past the data.
        (0..2 * t, 1..t).prop_map(|(s, l)| Interval::new(s, s + l)),
        // θ-aligned edges (grid multiples of u).
        (0u64..50, 1u64..25).prop_map(move |(i, n)| Interval::new(i * u, (i + n) * u)),
        // Degenerate leading window, before any event.
        Just(Interval::new(0, 1)),
    ];
    let m1 = M1Engine::default();
    let m2 = M2Engine { u };
    let keys = fx.keys();
    proptest::run_cases(&windows, |tau| {
        for &key in &keys {
            let auto = AutoEngine::default()
                .events_for_key(&fx.base, key, tau)
                .unwrap();
            let tqf = TqfEngine.events_for_key(&fx.base, key, tau).unwrap();
            let m1r = m1.events_for_key(&fx.base, key, tau).unwrap();
            let m2r = m2.events_for_key(&fx.m2, key, tau).unwrap();
            let auto_m2 = AutoEngine::default()
                .events_for_key(&fx.m2, key, tau)
                .unwrap();
            prop_assert_eq!(&auto, &tqf, "auto vs TQF for {} over {}", key, tau);
            prop_assert_eq!(&auto, &m1r, "auto vs M1 for {} over {}", key, tau);
            prop_assert_eq!(&auto, &m2r, "auto vs M2 for {} over {}", key, tau);
            prop_assert_eq!(
                &auto,
                &auto_m2,
                "auto on base vs M2 ledger for {} over {}",
                key,
                tau
            );
        }
        Ok(())
    });
}

#[test]
fn calibration_log_certified_bounds_dominate_actuals() {
    // (property) Every *certified* planner decision — TQF with its
    // closed-form block bound, M1 with its per-interval bound — must log
    // predicted bounds that dominate the measured actuals, across random
    // windows on a partially indexed ledger (the hybrid plan is exactly
    // where a miscounted bound would surface). Queries run sequentially:
    // actuals come from ledger-wide IoStats deltas, so a concurrent query
    // would bleed blocks into another query's measurement.
    let fx = Fixture::build("calib", IngestMode::MultiEvent, 0.6);
    let t = fx.t_max;
    let u = fx.u;
    let log_path = std::env::temp_dir().join(format!(
        "calib-log-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&log_path);
    {
        let log = PlannerLog::open(&log_path).unwrap();
        log.set_dataset("ds3-prop");
        let auto = AutoEngine::with_log(log);
        let keys = fx.keys();
        let windows = prop_oneof![
            (0..2 * t, 1..t).prop_map(|(s, l)| Interval::new(s, s + l)),
            (0u64..50, 1u64..25).prop_map(move |(i, n)| Interval::new(i * u, (i + n) * u)),
        ];
        proptest::run_cases(&windows, |tau| {
            for &key in &keys {
                let mut cursor = auto.events_cursor(&fx.base, key, tau).unwrap();
                drain(cursor.as_mut()).unwrap();
                drop(cursor); // Drop measures actuals and appends the record.
            }
            Ok(())
        });
        // Random windows land on M1/hybrid almost surely; degenerate
        // leading windows force TQF certificates (at most the blocks
        // holding a state of the key in (0, te] — which for tiny te ties
        // or beats the M1 bound in the cost comparison).
        for &key in &keys {
            for te in [1u64, 2] {
                let mut cursor = auto
                    .events_cursor(&fx.base, key, Interval::new(0, te))
                    .unwrap();
                drain(cursor.as_mut()).unwrap();
            }
        }
    }
    let records = PlannerLog::load(&log_path).unwrap();
    let _ = std::fs::remove_file(&log_path);
    assert!(!records.is_empty(), "no planner decisions were logged");
    let certified: Vec<_> = records.iter().filter(|r| r.certified).collect();
    assert!(
        !certified.is_empty(),
        "no certified plans among {} records",
        records.len()
    );
    assert!(
        certified.iter().any(|r| r.engine.contains("TQF")),
        "property never exercised a certified TQF plan"
    );
    for r in &certified {
        let (lo, hi) = r
            .predicted
            .expect("certified record must carry predicted bounds");
        assert!(lo <= hi, "inverted bound ({lo}, {hi}) for {}", r.key);
        assert!(
            r.actual_blocks <= hi,
            "certificate violated: {} {} over ({}, {}] predicted ≤{hi} blocks, measured {}",
            r.engine,
            r.key,
            r.tau.0,
            r.tau.1,
            r.actual_blocks
        );
    }
}
