#!/usr/bin/env bash
# Full local verification: build, tests, lints, formatting.
#
# Usage: scripts/verify.sh [--offline]
#   --offline   pass --offline to every cargo invocation (air-gapped builds)

set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
if [[ "${1:-}" == "--offline" ]]; then
    OFFLINE=(--offline)
fi

echo "==> cargo build --workspace --release"
cargo build "${OFFLINE[@]}" --workspace --release

echo "==> cargo test --workspace"
cargo test "${OFFLINE[@]}" --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy "${OFFLINE[@]}" --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: all checks passed"
