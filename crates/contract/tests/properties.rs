//! Property tests: the contract enforces a state machine.
//!
//! For any random operation sequence, driving the contract must (a) never
//! corrupt the ledger, (b) accept exactly the operations a reference state
//! machine accepts, and (c) leave queryable history identical to the
//! accepted-operation trace — on both data layouts.

use std::collections::HashMap;

use proptest::prelude::*;

use fabric_ledger::{Ledger, LedgerConfig};
use fabric_workload::{EntityId, Event, EventKind};
use supplychain_contract::{ContractError, DataLayout, SupplyChainContract};
use temporal_core::interval::Interval;
use temporal_core::m2::M2Engine;
use temporal_core::tqf::TqfEngine;
use temporal_core::TemporalEngine;

#[derive(Debug, Clone, Copy)]
struct Op {
    subject: u32,
    target: u32,
    load: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u32..4, 0u32..3, any::<bool>()).prop_map(|(subject, target, load)| Op {
        subject,
        target,
        load,
    })
}

/// Reference state machine mirroring the contract's rules.
#[derive(Default)]
struct Model {
    /// subject → (target, last event time) when currently loaded.
    loaded: HashMap<EntityId, EntityId>,
    /// subject → latest event time.
    latest: HashMap<EntityId, u64>,
    /// Accepted events in order.
    accepted: Vec<Event>,
}

impl Model {
    fn apply(&mut self, subject: EntityId, target: EntityId, time: u64, load: bool) -> bool {
        if let Some(&latest) = self.latest.get(&subject) {
            if time <= latest {
                return false;
            }
        }
        if load {
            if self.loaded.contains_key(&subject) {
                return false;
            }
            self.loaded.insert(subject, target);
        } else {
            match self.loaded.get(&subject) {
                Some(&actual) if actual == target => {
                    self.loaded.remove(&subject);
                }
                _ => return false,
            }
        }
        self.latest.insert(subject, time);
        self.accepted.push(Event {
            subject,
            target,
            time,
            kind: if load {
                EventKind::Load
            } else {
                EventKind::Unload
            },
        });
        true
    }
}

fn run_sequence(ops: &[Op], layout: DataLayout, dir: &std::path::Path) {
    let ledger = Ledger::open(dir, LedgerConfig::small_for_tests()).unwrap();
    let contract = SupplyChainContract::new(layout);
    let mut model = Model::default();
    let mut clock = 0u64;
    for op in ops {
        clock += 7;
        let subject = EntityId::shipment(op.subject);
        let target = EntityId::container(op.target);
        let result = match op.load {
            true => contract.load(&ledger, subject, target, clock),
            false => contract.unload(&ledger, subject, target, clock),
        };
        let model_accepts = model.apply(subject, target, clock, op.load);
        match result {
            Ok(tx) => {
                assert!(model_accepts, "contract accepted what the model rejects");
                ledger.submit(tx).unwrap();
                ledger.cut_block().unwrap();
            }
            Err(ContractError::Ledger(e)) => panic!("ledger error: {e}"),
            Err(_) => assert!(!model_accepts, "contract rejected what the model accepts"),
        }
    }
    // The accepted trace must be exactly what temporal queries see.
    let tau = Interval::new(0, clock.max(1));
    let engine: Box<dyn TemporalEngine> = match layout {
        DataLayout::Base => Box::new(TqfEngine),
        DataLayout::M2 { u } => Box::new(M2Engine { u }),
    };
    let mut got: Vec<Event> = Vec::new();
    for s in 0..4 {
        got.extend(
            engine
                .events_for_key(&ledger, EntityId::shipment(s), tau)
                .unwrap(),
        );
    }
    got.sort_by_key(|e| e.time);
    let mut want = model.accepted.clone();
    want.sort_by_key(|e| e.time);
    assert_eq!(got, want, "ledger history diverged from accepted trace");
    ledger.verify_chain().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn contract_matches_reference_model_base(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "contract-prop-base-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        run_sequence(&ops, DataLayout::Base, &dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn contract_matches_reference_model_m2(
        ops in prop::collection::vec(op_strategy(), 1..40),
        u in prop::sample::select(vec![13u64, 50, 1000]),
        seed in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "contract-prop-m2-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        run_sequence(&ops, DataLayout::M2 { u }, &dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn container_level_rules_hold_too(
        ops in prop::collection::vec((0u32..3, 0u32..2, any::<bool>()), 1..30),
    ) {
        // Same contract driven at the container→truck level.
        let dir = std::env::temp_dir().join(format!(
            "contract-prop-cont-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ledger = Ledger::open(&dir, LedgerConfig::small_for_tests()).unwrap();
        let contract = SupplyChainContract::new(DataLayout::Base);
        let mut clock = 0u64;
        let mut loaded: HashMap<u32, u32> = HashMap::new();
        for (c, t, load) in ops {
            clock += 3;
            let container = EntityId::container(c);
            let truck = EntityId::truck(t);
            let result = if load {
                contract.load(&ledger, container, truck, clock)
            } else {
                contract.unload(&ledger, container, truck, clock)
            };
            let expected_ok = if load {
                !loaded.contains_key(&c)
            } else {
                loaded.get(&c) == Some(&t)
            };
            prop_assert_eq!(result.is_ok(), expected_ok);
            if let Ok(tx) = result {
                ledger.submit(tx).unwrap();
                ledger.cut_block().unwrap();
                if load {
                    loaded.insert(c, t);
                } else {
                    loaded.remove(&c);
                }
            }
        }
        // Final locations agree with the model.
        for (c, t) in &loaded {
            let loc = contract
                .current_location(&ledger, EntityId::container(*c), clock + 1)
                .unwrap();
            prop_assert_eq!(loc, Some(EntityId::truck(*t)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
