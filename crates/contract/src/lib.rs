//! # supplychain-contract
//!
//! The paper's §I supply-chain scenario as real chaincode: shipments are
//! loaded into containers, containers onto trucks, and every operation is a
//! ledger transaction with *validated business rules* — a subject cannot be
//! loaded twice without an unload in between, unloads must name the carrier
//! the subject is actually inside, and timestamps must move forward.
//!
//! Unlike the bulk ingestion driver in `fabric-workload` (which writes
//! events blindly, as the paper's benchmarks do), this contract **reads the
//! current state of each key before writing** — the read/write-set workload
//! the paper's conclusion names as future work. Because reads capture MVCC
//! versions, conflicting concurrent operations on the same subject are
//! rejected at commit, exactly as on Fabric.
//!
//! The contract runs over either data layout:
//!
//! * [`DataLayout::Base`] — plain keys (TQF/M1 compatible); reads use
//!   `GetState`.
//! * [`DataLayout::M2`] — interval-tagged keys; reads go through the
//!   GetState-Base probe walk and writes through the M2 key transformation,
//!   so the temporal index keeps working while the business logic stays
//!   unchanged.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use fabric_ledger::{Ledger, Transaction, TxSimulator};
use fabric_workload::{EntityId, EntityKind, Event, EventKind};
use temporal_core::base_api::M2BaseApi;
use temporal_core::interval::Interval;

/// How events are keyed on the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataLayout {
    /// Plain subject keys (TQF and Model-M1 layouts).
    Base,
    /// Model-M2 interval-tagged keys with the given interval length `u`.
    M2 {
        /// Index-interval length.
        u: u64,
    },
}

/// Errors raised by contract validation (before anything reaches the
/// orderer).
#[derive(Debug)]
pub enum ContractError {
    /// The subject/target kinds don't form a valid pairing.
    InvalidPairing {
        /// Subject kind.
        subject: EntityKind,
        /// Target kind.
        target: EntityKind,
    },
    /// Subject is already loaded (into the given target).
    AlreadyLoaded {
        /// The carrier currently holding the subject.
        current_target: EntityId,
    },
    /// Subject is not currently loaded anywhere.
    NotLoaded,
    /// Unload names a different carrier than the subject is inside.
    WrongTarget {
        /// Where the subject actually is.
        actual: EntityId,
    },
    /// Timestamp does not advance past the subject's latest event.
    TimeNotMonotonic {
        /// The latest recorded event time for the subject.
        latest: u64,
    },
    /// Underlying ledger failure.
    Ledger(fabric_ledger::Error),
}

impl std::fmt::Display for ContractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContractError::InvalidPairing { subject, target } => {
                write!(f, "{subject:?} cannot be loaded onto {target:?}")
            }
            ContractError::AlreadyLoaded { current_target } => {
                write!(f, "subject is already inside {current_target}")
            }
            ContractError::NotLoaded => write!(f, "subject is not currently loaded"),
            ContractError::WrongTarget { actual } => {
                write!(f, "subject is inside {actual}, not the named carrier")
            }
            ContractError::TimeNotMonotonic { latest } => {
                write!(f, "timestamp must exceed the latest event time {latest}")
            }
            ContractError::Ledger(e) => write!(f, "ledger error: {e}"),
        }
    }
}

impl std::error::Error for ContractError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ContractError::Ledger(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fabric_ledger::Error> for ContractError {
    fn from(e: fabric_ledger::Error) -> Self {
        ContractError::Ledger(e)
    }
}

/// Result alias for contract operations.
pub type Result<T> = std::result::Result<T, ContractError>;

/// The supply-chain contract bound to a data layout.
#[derive(Debug, Clone, Copy)]
pub struct SupplyChainContract {
    layout: DataLayout,
}

impl SupplyChainContract {
    /// A contract over the given layout.
    pub fn new(layout: DataLayout) -> Self {
        SupplyChainContract { layout }
    }

    /// The layout this contract writes.
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    fn check_pairing(subject: EntityId, target: EntityId) -> Result<()> {
        let valid = matches!(
            (subject.kind, target.kind),
            (EntityKind::Shipment, EntityKind::Container)
                | (EntityKind::Container, EntityKind::Truck)
        );
        if valid {
            Ok(())
        } else {
            Err(ContractError::InvalidPairing {
                subject: subject.kind,
                target: target.kind,
            })
        }
    }

    /// Read the subject's latest event, through the layout-appropriate
    /// path. Returns the decoded event and, for the base layout, records
    /// the read in `sim`'s read set (M2 probes bypass the simulator — they
    /// are `GetState` calls on other keys, see module docs).
    fn latest_event(
        &self,
        ledger: &Ledger,
        sim: &mut TxSimulator<'_>,
        subject: EntityId,
        now: u64,
    ) -> Result<Option<Event>> {
        match self.layout {
            DataLayout::Base => {
                let Some(value) = sim.get_state(&subject.key())? else {
                    return Ok(None);
                };
                Ok(Some(decode(subject, &value)?))
            }
            DataLayout::M2 { u } => {
                let api = M2BaseApi::new(u, now.max(1));
                let result = api.get_state_base(ledger, subject)?;
                match result.state {
                    Some(vv) => Ok(Some(decode(subject, &vv.value)?)),
                    None => Ok(None),
                }
            }
        }
    }

    fn write_event(&self, sim: &mut TxSimulator<'_>, event: &Event) {
        match self.layout {
            DataLayout::Base => sim.put_state(event.key(), event.encode_value()),
            DataLayout::M2 { u } => {
                let theta = Interval::grid_containing(event.time, u);
                sim.put_state(theta.composite_key(&event.key()), event.encode_value());
            }
        }
    }

    /// Validate and assemble a *load* transaction: `subject` enters
    /// `target` at `time`. The transaction still needs to be
    /// [submitted](Ledger::submit).
    pub fn load(
        &self,
        ledger: &Ledger,
        subject: EntityId,
        target: EntityId,
        time: u64,
    ) -> Result<Transaction> {
        Self::check_pairing(subject, target)?;
        let mut sim = TxSimulator::new(ledger);
        if let Some(latest) = self.latest_event(ledger, &mut sim, subject, time)? {
            if time <= latest.time {
                return Err(ContractError::TimeNotMonotonic {
                    latest: latest.time,
                });
            }
            if latest.kind == EventKind::Load {
                return Err(ContractError::AlreadyLoaded {
                    current_target: latest.target,
                });
            }
        }
        let event = Event {
            subject,
            target,
            time,
            kind: EventKind::Load,
        };
        self.write_event(&mut sim, &event);
        Ok(sim.into_transaction(time)?)
    }

    /// Validate and assemble an *unload* transaction: `subject` leaves
    /// `target` at `time`.
    pub fn unload(
        &self,
        ledger: &Ledger,
        subject: EntityId,
        target: EntityId,
        time: u64,
    ) -> Result<Transaction> {
        Self::check_pairing(subject, target)?;
        let mut sim = TxSimulator::new(ledger);
        let Some(latest) = self.latest_event(ledger, &mut sim, subject, time)? else {
            return Err(ContractError::NotLoaded);
        };
        if time <= latest.time {
            return Err(ContractError::TimeNotMonotonic {
                latest: latest.time,
            });
        }
        if latest.kind != EventKind::Load {
            return Err(ContractError::NotLoaded);
        }
        if latest.target != target {
            return Err(ContractError::WrongTarget {
                actual: latest.target,
            });
        }
        let event = Event {
            subject,
            target,
            time,
            kind: EventKind::Unload,
        };
        self.write_event(&mut sim, &event);
        Ok(sim.into_transaction(time)?)
    }

    /// Where is `subject` right now? `None` when not loaded.
    pub fn current_location(
        &self,
        ledger: &Ledger,
        subject: EntityId,
        now: u64,
    ) -> Result<Option<EntityId>> {
        let mut sim = TxSimulator::new(ledger);
        Ok(self
            .latest_event(ledger, &mut sim, subject, now)?
            .filter(|e| e.kind == EventKind::Load)
            .map(|e| e.target))
    }

    /// Resolve the full carrier chain of a shipment right now:
    /// `shipment → container → truck` (each level optional).
    pub fn locate_chain(
        &self,
        ledger: &Ledger,
        shipment: EntityId,
        now: u64,
    ) -> Result<(Option<EntityId>, Option<EntityId>)> {
        let container = self.current_location(ledger, shipment, now)?;
        let truck = match container {
            Some(c) => self.current_location(ledger, c, now)?,
            None => None,
        };
        Ok((container, truck))
    }
}

fn decode(subject: EntityId, value: &[u8]) -> Result<Event> {
    Event::decode_value(subject, value).ok_or_else(|| {
        ContractError::Ledger(fabric_ledger::Error::InvalidArgument(format!(
            "state of {subject} is not an event payload"
        )))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabric_ledger::{LedgerConfig, ValidationCode};

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "contract-test-{}-{tag}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn ledger(dir: &TempDir) -> Ledger {
        Ledger::open(&dir.0, LedgerConfig::small_for_tests()).unwrap()
    }

    fn commit(ledger: &Ledger, tx: Transaction) {
        ledger.submit(tx).unwrap();
        ledger.cut_block().unwrap();
    }

    #[test]
    fn load_then_unload_happy_path() {
        let dir = TempDir::new("happy");
        let ledger = ledger(&dir);
        let c = SupplyChainContract::new(DataLayout::Base);
        let s = EntityId::shipment(1);
        let cont = EntityId::container(2);
        commit(&ledger, c.load(&ledger, s, cont, 10).unwrap());
        assert_eq!(c.current_location(&ledger, s, 11).unwrap(), Some(cont));
        commit(&ledger, c.unload(&ledger, s, cont, 20).unwrap());
        assert_eq!(c.current_location(&ledger, s, 21).unwrap(), None);
    }

    #[test]
    fn double_load_rejected() {
        let dir = TempDir::new("dblload");
        let ledger = ledger(&dir);
        let c = SupplyChainContract::new(DataLayout::Base);
        let s = EntityId::shipment(1);
        commit(
            &ledger,
            c.load(&ledger, s, EntityId::container(1), 10).unwrap(),
        );
        let err = c.load(&ledger, s, EntityId::container(2), 20).unwrap_err();
        assert!(matches!(err, ContractError::AlreadyLoaded { .. }), "{err}");
    }

    #[test]
    fn unload_without_load_rejected() {
        let dir = TempDir::new("noload");
        let ledger = ledger(&dir);
        let c = SupplyChainContract::new(DataLayout::Base);
        let err = c
            .unload(&ledger, EntityId::shipment(1), EntityId::container(1), 10)
            .unwrap_err();
        assert!(matches!(err, ContractError::NotLoaded), "{err}");
    }

    #[test]
    fn unload_wrong_target_rejected() {
        let dir = TempDir::new("wrongtarget");
        let ledger = ledger(&dir);
        let c = SupplyChainContract::new(DataLayout::Base);
        let s = EntityId::shipment(1);
        commit(
            &ledger,
            c.load(&ledger, s, EntityId::container(1), 10).unwrap(),
        );
        let err = c
            .unload(&ledger, s, EntityId::container(9), 20)
            .unwrap_err();
        assert!(matches!(err, ContractError::WrongTarget { .. }), "{err}");
    }

    #[test]
    fn invalid_pairings_rejected() {
        let dir = TempDir::new("pairing");
        let ledger = ledger(&dir);
        let c = SupplyChainContract::new(DataLayout::Base);
        // shipment→truck, container→container, truck→anything: all invalid.
        for (s, t) in [
            (EntityId::shipment(0), EntityId::truck(0)),
            (EntityId::container(0), EntityId::container(1)),
            (EntityId::truck(0), EntityId::container(0)),
            (EntityId::shipment(0), EntityId::shipment(1)),
        ] {
            assert!(matches!(
                c.load(&ledger, s, t, 10).unwrap_err(),
                ContractError::InvalidPairing { .. }
            ));
        }
    }

    #[test]
    fn time_must_advance() {
        let dir = TempDir::new("time");
        let ledger = ledger(&dir);
        let c = SupplyChainContract::new(DataLayout::Base);
        let s = EntityId::shipment(1);
        let cont = EntityId::container(1);
        commit(&ledger, c.load(&ledger, s, cont, 10).unwrap());
        assert!(matches!(
            c.unload(&ledger, s, cont, 10).unwrap_err(),
            ContractError::TimeNotMonotonic { latest: 10 }
        ));
        assert!(c.unload(&ledger, s, cont, 11).is_ok());
    }

    #[test]
    fn locate_chain_resolves_two_hops() {
        let dir = TempDir::new("chain");
        let ledger = ledger(&dir);
        let c = SupplyChainContract::new(DataLayout::Base);
        let s = EntityId::shipment(1);
        let cont = EntityId::container(3);
        let truck = EntityId::truck(2);
        commit(&ledger, c.load(&ledger, s, cont, 10).unwrap());
        commit(&ledger, c.load(&ledger, cont, truck, 20).unwrap());
        assert_eq!(
            c.locate_chain(&ledger, s, 30).unwrap(),
            (Some(cont), Some(truck))
        );
        commit(&ledger, c.unload(&ledger, cont, truck, 40).unwrap());
        assert_eq!(c.locate_chain(&ledger, s, 50).unwrap(), (Some(cont), None));
    }

    #[test]
    fn m2_layout_full_lifecycle() {
        let dir = TempDir::new("m2");
        let ledger = ledger(&dir);
        let c = SupplyChainContract::new(DataLayout::M2 { u: 100 });
        let s = EntityId::shipment(1);
        let cont = EntityId::container(1);
        // Events landing in different index intervals.
        commit(&ledger, c.load(&ledger, s, cont, 50).unwrap());
        commit(&ledger, c.unload(&ledger, s, cont, 250).unwrap());
        commit(&ledger, c.load(&ledger, s, cont, 450).unwrap());
        assert_eq!(c.current_location(&ledger, s, 500).unwrap(), Some(cont));
        // Same validation rules hold across the probe walk.
        assert!(matches!(
            c.load(&ledger, s, EntityId::container(2), 500).unwrap_err(),
            ContractError::AlreadyLoaded { .. }
        ));
        // Base key never appears in the state database.
        assert!(ledger.get_state(&s.key()).unwrap().is_none());
        // And the M2 query engine sees all three events.
        use temporal_core::m2::M2Engine;
        use temporal_core::TemporalEngine;
        let events = M2Engine { u: 100 }
            .events_for_key(&ledger, s, Interval::new(0, 500))
            .unwrap();
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn mvcc_rejects_conflicting_concurrent_loads() {
        // Two clients race to load the same shipment into different
        // containers: both read "not loaded", both write; the second must
        // be invalidated by MVCC at commit.
        let dir = TempDir::new("mvcc");
        let ledger = ledger(&dir);
        let c = SupplyChainContract::new(DataLayout::Base);
        let s = EntityId::shipment(1);
        // Seed with one committed event so both txs carry a read version.
        commit(
            &ledger,
            c.load(&ledger, s, EntityId::container(9), 5).unwrap(),
        );
        commit(
            &ledger,
            c.unload(&ledger, s, EntityId::container(9), 6).unwrap(),
        );
        let tx_a = c.load(&ledger, s, EntityId::container(1), 10).unwrap();
        let tx_b = c.load(&ledger, s, EntityId::container(2), 11).unwrap();
        ledger.submit(tx_a).unwrap();
        ledger.submit(tx_b).unwrap();
        ledger.cut_block().unwrap();
        // Exactly one survived.
        let block = ledger.get_block(ledger.height() - 1).unwrap();
        let valid = block
            .validation
            .iter()
            .filter(|v| **v == ValidationCode::Valid)
            .count();
        assert_eq!(valid, 1, "MVCC must invalidate one of the racing loads");
        assert_eq!(
            c.current_location(&ledger, s, 20).unwrap(),
            Some(EntityId::container(1)),
            "the first load wins"
        );
    }
}
