//! Property-based tests: the store must behave exactly like a sorted map,
//! no matter how operations interleave with flushes, compactions and
//! reopens.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::PathBuf;

use proptest::prelude::*;

use fabric_kvstore::{KvStore, Options, WriteBatch};

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Batch(Vec<(Vec<u8>, Option<Vec<u8>>)>),
    Flush,
    Compact,
    Reopen,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small keyspace so puts/deletes/overwrites actually collide.
    prop::collection::vec(prop::sample::select(b"abcdxyz".to_vec()), 1..4)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..24)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (key_strategy(), value_strategy()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => key_strategy().prop_map(Op::Delete),
        2 => prop::collection::vec(
            (key_strategy(), prop::option::of(value_strategy())),
            1..5
        )
        .prop_map(Op::Batch),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: u64) -> Self {
        let p = std::env::temp_dir().join(format!(
            "kv-prop-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn check_equiv(db: &KvStore, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    // Every model key matches; a range scan reproduces the whole model.
    let scanned = db
        .range(Bound::Unbounded, Bound::Unbounded)
        .unwrap()
        .collect_all()
        .unwrap();
    let scanned: Vec<(Vec<u8>, Vec<u8>)> = scanned
        .into_iter()
        .map(|(k, v)| (k.to_vec(), v.to_vec()))
        .collect();
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(scanned, expected, "full scan diverged from model");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn store_matches_sorted_map_model(ops in prop::collection::vec(op_strategy(), 1..60), seed in any::<u64>()) {
        let dir = TempDir::new(seed);
        let mut db = KvStore::open(&dir.0, Options::small_for_tests()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    db.put(k.clone(), v.clone()).unwrap();
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    db.delete(k.clone()).unwrap();
                    model.remove(&k);
                }
                Op::Batch(entries) => {
                    let mut batch = WriteBatch::new();
                    for (k, v) in &entries {
                        match v {
                            Some(v) => { batch.put(k.clone(), v.clone()); }
                            None => { batch.delete(k.clone()); }
                        }
                    }
                    db.write(batch).unwrap();
                    for (k, v) in entries {
                        match v {
                            Some(v) => { model.insert(k, v); }
                            None => { model.remove(&k); }
                        }
                    }
                }
                Op::Flush => db.flush().unwrap(),
                Op::Compact => db.compact().unwrap(),
                Op::Reopen => {
                    drop(db);
                    db = KvStore::open(&dir.0, Options::small_for_tests()).unwrap();
                }
            }
            // Spot-check point reads continuously (cheap).
            for (k, v) in model.iter().take(4) {
                let got = db.get(k).unwrap();
                prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
            }
        }
        check_equiv(&db, &model);
        // Point reads for everything, including deleted keys.
        for key in [b"a".to_vec(), b"zz".to_vec(), b"dcba".to_vec()] {
            prop_assert_eq!(db.get(&key).unwrap().map(|b| b.to_vec()), model.get(&key).cloned());
        }
        // Survives one final reopen.
        drop(db);
        let db = KvStore::open(&dir.0, Options::small_for_tests()).unwrap();
        check_equiv(&db, &model);
    }

    #[test]
    fn range_bounds_match_model(
        entries in prop::collection::btree_map(key_strategy(), value_strategy(), 0..30),
        start in key_strategy(),
        end in key_strategy(),
        seed in any::<u64>(),
    ) {
        let dir = TempDir::new(seed.wrapping_add(1_000_000));
        let db = KvStore::open(&dir.0, Options::small_for_tests()).unwrap();
        for (k, v) in &entries {
            db.put(k.clone(), v.clone()).unwrap();
        }
        db.flush().unwrap();
        let got = db
            .range(Bound::Included(start.as_slice()), Bound::Excluded(end.as_slice()))
            .unwrap()
            .collect_all()
            .unwrap();
        let got: Vec<Vec<u8>> = got.into_iter().map(|(k, _)| k.to_vec()).collect();
        let want: Vec<Vec<u8>> = if start >= end {
            Vec::new() // inverted range: the store must return empty
        } else {
            entries
                .range::<Vec<u8>, _>((Bound::Included(&start), Bound::Excluded(&end)))
                .map(|(k, _)| k.clone())
                .collect()
        };
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prefix_scan_matches_model(
        entries in prop::collection::btree_map(key_strategy(), value_strategy(), 0..30),
        prefix in key_strategy(),
        seed in any::<u64>(),
    ) {
        let dir = TempDir::new(seed.wrapping_add(2_000_000));
        let db = KvStore::open(&dir.0, Options::small_for_tests()).unwrap();
        for (k, v) in &entries {
            db.put(k.clone(), v.clone()).unwrap();
        }
        let got = db.prefix(&prefix).unwrap().collect_all().unwrap();
        let got: Vec<Vec<u8>> = got.into_iter().map(|(k, _)| k.to_vec()).collect();
        let want: Vec<Vec<u8>> = entries
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        prop_assert_eq!(got, want);
    }
}
