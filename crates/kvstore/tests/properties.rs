//! Property-based tests: the store must behave exactly like a sorted map,
//! no matter how operations interleave with flushes, compactions and
//! reopens.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::PathBuf;

use proptest::prelude::*;

use fabric_kvstore::{KvStore, LogStore, Options, WriteBatch};

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Batch(Vec<(Vec<u8>, Option<Vec<u8>>)>),
    Flush,
    Compact,
    Reopen,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small keyspace so puts/deletes/overwrites actually collide.
    prop::collection::vec(prop::sample::select(b"abcdxyz".to_vec()), 1..4)
}

fn value_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..24)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (key_strategy(), value_strategy()).prop_map(|(k, v)| Op::Put(k, v)),
        2 => key_strategy().prop_map(Op::Delete),
        2 => prop::collection::vec(
            (key_strategy(), prop::option::of(value_strategy())),
            1..5
        )
        .prop_map(Op::Batch),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::Reopen),
    ]
}

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: u64) -> Self {
        let p = std::env::temp_dir().join(format!(
            "kv-prop-{}-{tag}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn check_equiv(db: &KvStore, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    // Every model key matches; a range scan reproduces the whole model.
    let scanned = db
        .range(Bound::Unbounded, Bound::Unbounded)
        .unwrap()
        .collect_all()
        .unwrap();
    let scanned: Vec<(Vec<u8>, Vec<u8>)> = scanned
        .into_iter()
        .map(|(k, v)| (k.to_vec(), v.to_vec()))
        .collect();
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(scanned, expected, "full scan diverged from model");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    #[test]
    fn store_matches_sorted_map_model(ops in prop::collection::vec(op_strategy(), 1..60), seed in any::<u64>()) {
        let dir = TempDir::new(seed);
        let mut db = KvStore::open(&dir.0, Options::small_for_tests()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    db.put(k.clone(), v.clone()).unwrap();
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    db.delete(k.clone()).unwrap();
                    model.remove(&k);
                }
                Op::Batch(entries) => {
                    let mut batch = WriteBatch::new();
                    for (k, v) in &entries {
                        match v {
                            Some(v) => { batch.put(k.clone(), v.clone()); }
                            None => { batch.delete(k.clone()); }
                        }
                    }
                    db.write(batch).unwrap();
                    for (k, v) in entries {
                        match v {
                            Some(v) => { model.insert(k, v); }
                            None => { model.remove(&k); }
                        }
                    }
                }
                Op::Flush => db.flush().unwrap(),
                Op::Compact => db.compact().unwrap(),
                Op::Reopen => {
                    drop(db);
                    db = KvStore::open(&dir.0, Options::small_for_tests()).unwrap();
                }
            }
            // Spot-check point reads continuously (cheap).
            for (k, v) in model.iter().take(4) {
                let got = db.get(k).unwrap();
                prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
            }
        }
        check_equiv(&db, &model);
        // Point reads for everything, including deleted keys.
        for key in [b"a".to_vec(), b"zz".to_vec(), b"dcba".to_vec()] {
            prop_assert_eq!(db.get(&key).unwrap().map(|b| b.to_vec()), model.get(&key).cloned());
        }
        // Survives one final reopen.
        drop(db);
        let db = KvStore::open(&dir.0, Options::small_for_tests()).unwrap();
        check_equiv(&db, &model);
    }

    #[test]
    fn range_bounds_match_model(
        entries in prop::collection::btree_map(key_strategy(), value_strategy(), 0..30),
        start in key_strategy(),
        end in key_strategy(),
        seed in any::<u64>(),
    ) {
        let dir = TempDir::new(seed.wrapping_add(1_000_000));
        let db = KvStore::open(&dir.0, Options::small_for_tests()).unwrap();
        for (k, v) in &entries {
            db.put(k.clone(), v.clone()).unwrap();
        }
        db.flush().unwrap();
        let got = db
            .range(Bound::Included(start.as_slice()), Bound::Excluded(end.as_slice()))
            .unwrap()
            .collect_all()
            .unwrap();
        let got: Vec<Vec<u8>> = got.into_iter().map(|(k, _)| k.to_vec()).collect();
        let want: Vec<Vec<u8>> = if start >= end {
            Vec::new() // inverted range: the store must return empty
        } else {
            entries
                .range::<Vec<u8>, _>((Bound::Included(&start), Bound::Excluded(&end)))
                .map(|(k, _)| k.clone())
                .collect()
        };
        prop_assert_eq!(got, want);
    }

    #[test]
    fn prefix_scan_matches_model(
        entries in prop::collection::btree_map(key_strategy(), value_strategy(), 0..30),
        prefix in key_strategy(),
        seed in any::<u64>(),
    ) {
        let dir = TempDir::new(seed.wrapping_add(2_000_000));
        let db = KvStore::open(&dir.0, Options::small_for_tests()).unwrap();
        for (k, v) in &entries {
            db.put(k.clone(), v.clone()).unwrap();
        }
        let got = db.prefix(&prefix).unwrap().collect_all().unwrap();
        let got: Vec<Vec<u8>> = got.into_iter().map(|(k, _)| k.to_vec()).collect();
        let want: Vec<Vec<u8>> = entries
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn log_store_matches_sorted_map_model(ops in prop::collection::vec(op_strategy(), 1..60), seed in any::<u64>()) {
        // Same model test against the value-log engine, whose tiny
        // small_for_tests file/compaction thresholds force frequent
        // rotations and automatic merges: compaction and reopen must
        // never lose a live key or resurrect a deleted one.
        let dir = TempDir::new(seed.wrapping_add(3_000_000));
        let mut db = LogStore::open(&dir.0, Options::small_for_tests()).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    db.put(k.clone(), v.clone()).unwrap();
                    model.insert(k, v);
                }
                Op::Delete(k) => {
                    db.delete(k.clone()).unwrap();
                    model.remove(&k);
                }
                Op::Batch(entries) => {
                    let mut batch = WriteBatch::new();
                    for (k, v) in &entries {
                        match v {
                            Some(v) => { batch.put(k.clone(), v.clone()); }
                            None => { batch.delete(k.clone()); }
                        }
                    }
                    db.write(batch).unwrap();
                    for (k, v) in entries {
                        match v {
                            Some(v) => { model.insert(k, v); }
                            None => { model.remove(&k); }
                        }
                    }
                }
                Op::Flush => db.flush().unwrap(),
                Op::Compact => db.compact().unwrap(),
                Op::Reopen => {
                    drop(db);
                    db = LogStore::open(&dir.0, Options::small_for_tests()).unwrap();
                }
            }
            for (k, v) in model.iter().take(4) {
                let got = db.get(k).unwrap();
                prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
            }
        }
        let scan = |db: &LogStore| -> Vec<(Vec<u8>, Vec<u8>)> {
            db.range(Bound::Unbounded, Bound::Unbounded)
                .unwrap()
                .collect_all()
                .unwrap()
                .into_iter()
                .map(|(k, v)| (k.to_vec(), v.to_vec()))
                .collect()
        };
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(scan(&db), expected.clone(), "full scan diverged from model");
        // A forced merge plus one reopen must be invisible too.
        db.compact().unwrap();
        prop_assert_eq!(scan(&db), expected.clone(), "scan diverged after compaction");
        drop(db);
        let db = LogStore::open(&dir.0, Options::small_for_tests()).unwrap();
        prop_assert_eq!(scan(&db), expected, "scan diverged after reopen");
    }

    #[test]
    fn log_torn_tail_recovers_to_last_whole_record(
        ops in prop::collection::vec((key_strategy(), value_strategy()), 1..30),
        chop in 1usize..48,
        seed in any::<u64>(),
    ) {
        // Write every op as one record into a single data file, tear an
        // arbitrary number of bytes off its tail, and reopen: recovery
        // must keep exactly the records whose frames survive whole —
        // the store equals the model of that operation prefix.
        let dir = TempDir::new(seed.wrapping_add(4_000_000));
        let mut opts = Options::small_for_tests();
        opts.log_file_max_bytes = u64::MAX; // one data file
        opts.log_compaction_bytes = u64::MAX; // no merges: frames = ops
        {
            let db = LogStore::open(&dir.0, opts.clone()).unwrap();
            for (k, v) in &ops {
                db.put(k.clone(), v.clone()).unwrap();
            }
        }
        let vlog = std::fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "vlog"))
            .max()
            .expect("data file exists");
        let data = std::fs::read(&vlog).unwrap();
        // Walk the CRC framing to find each record's end offset.
        let mut ends = Vec::new();
        let mut off = 0usize;
        while off + 8 <= data.len() {
            let len = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap()) as usize;
            if off + 8 + len > data.len() {
                break;
            }
            off += 8 + len;
            ends.push(off);
        }
        prop_assert_eq!(ends.len(), ops.len(), "one record per put");
        let keep = data.len() - chop.min(data.len());
        std::fs::write(&vlog, &data[..keep]).unwrap();
        let survivors = ends.iter().filter(|&&e| e <= keep).count();
        let db = LogStore::open(&dir.0, opts).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (k, v) in &ops[..survivors] {
            model.insert(k.clone(), v.clone());
        }
        let got: Vec<(Vec<u8>, Vec<u8>)> = db
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect_all()
            .unwrap()
            .into_iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want, "recovered to a different prefix");
    }
}
