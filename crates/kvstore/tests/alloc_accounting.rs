//! Per-span resource accounting through the storage write path.
//!
//! This binary installs the counting global allocator exactly like the
//! `tfq` binary does, so every WAL append / memtable flush span recorded
//! by the store must carry allocation charges — the end-to-end proof
//! that allocator, span thread-locals, and the kvstore span sites
//! compose.

#[global_allocator]
static ALLOC: fabric_telemetry::CountingAlloc = fabric_telemetry::CountingAlloc;

use fabric_kvstore::{KvStore, Options};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> Self {
        let p = std::env::temp_dir().join(format!(
            "kv-alloc-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn wal_append_spans_carry_alloc_charges() {
    assert!(
        fabric_telemetry::alloc::is_counting(),
        "counting allocator must be live in this binary"
    );
    let dir = TempDir::new();
    let tel = fabric_telemetry::Telemetry::enabled();
    let db = KvStore::open_with_telemetry(&dir.0, Options::small_for_tests(), tel.clone()).unwrap();
    for i in 0..40 {
        db.put(format!("key{i:03}"), format!("v{}", "x".repeat(64)))
            .unwrap();
    }
    db.flush().unwrap();
    let spans = tel.drain_spans();

    let wal: Vec<_> = spans.iter().filter(|s| s.name == "kv.wal.append").collect();
    assert!(!wal.is_empty(), "no WAL append spans recorded");
    // Encoding the batch allocates, so appends must be charged.
    assert!(
        wal.iter().all(|s| s.alloc_bytes > 0 && s.alloc_calls > 0),
        "uncharged WAL span: {wal:?}"
    );
    let flushes: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "kv.memtable.flush")
        .collect();
    assert!(
        flushes.iter().all(|s| s.alloc_bytes > 0),
        "uncharged flush span: {flushes:?}"
    );
    // The net-live high-water mark during a span can never exceed the
    // gross bytes allocated on its thread while it was open.
    for s in &spans {
        assert!(
            s.peak_bytes <= s.alloc_bytes,
            "{}: peak {} > alloc {}",
            s.name,
            s.peak_bytes,
            s.alloc_bytes
        );
    }
    // Process totals moved too (trivially true once anything allocated).
    let totals = fabric_telemetry::alloc::totals();
    assert!(totals.alloc_calls > 0 && totals.allocated_bytes > 0);
    assert!(totals.peak_live_bytes >= 1, "peak-live never sampled");
}
