//! The [`KvStore`] facade: durability, flushing, compaction and reads.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/MANIFEST          current file set, rewritten atomically
//! <dir>/NNNNNN.sst        immutable sorted tables (higher N = newer)
//! <dir>/NNNNNN.wal        write-ahead log for the active memtable
//! ```
//!
//! The manifest is a small text file: `next <n>`, `wal <n>` and one
//! `sst <n>` line per live table, oldest first. It is replaced with a
//! write-to-temp-then-rename so a crash can never leave a half-written
//! manifest; the WAL covers everything newer than the manifest.

use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use fabric_telemetry::{QueueProbe, Telemetry};
use parking_lot::{Mutex, RwLock};

use crate::batch::{BatchOp, WriteBatch};
use crate::error::{Error, Result};
use crate::iter::{EntrySource, MergeIter, VecSource};
use crate::memtable::{MemTable, Slot};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::options::Options;
use crate::sstable::{SsEntry, SsTableReader, SsTableWriter};
use crate::wal::{replay, Wal};

#[derive(Debug)]
struct Inner {
    memtable: MemTable,
    /// Live tables, oldest first (later entries shadow earlier ones).
    tables: Vec<Arc<SsTableReader>>,
    /// File numbers matching `tables` (for manifest rewrites).
    table_nums: Vec<u64>,
    wal: Wal,
    wal_num: u64,
    next_file: u64,
}

/// An embedded, ordered, persistent key-value store.
///
/// Thread-safe: reads take a shared lock, writes an exclusive one. All keys
/// and values are arbitrary byte strings; iteration order is lexicographic
/// on the raw bytes.
pub struct KvStore {
    dir: PathBuf,
    options: Options,
    inner: RwLock<Inner>,
    metrics: Metrics,
    tel: Telemetry,
    /// Leader/follower queue for [`Options::group_commit`].
    group: GroupCommit,
    /// Backpressure probe for the group-commit queue: depth is batches
    /// pending a leader, send-wait is each waiter's enqueue-to-result
    /// latency, drain-wait is how stale the drained backlog was when a
    /// leader picked it up.
    group_probe: QueueProbe,
    /// Serializes compactions so the merge can run outside the writer lock
    /// without two merges racing over the same input tables.
    compaction_gate: Mutex<()>,
}

/// Shared state of the group-commit path: writers enqueue their batch, the
/// first to find no leader running drains the queue and commits it as one
/// WAL append + fsync. Uses std primitives (not `parking_lot`) because the
/// queue needs a condvar paired with its mutex guard.
#[derive(Default)]
struct GroupCommit {
    state: std::sync::Mutex<GroupState>,
    cond: std::sync::Condvar,
}

#[derive(Default)]
struct GroupState {
    pending: Vec<PendingWrite>,
    leader_running: bool,
}

struct PendingWrite {
    batch: WriteBatch,
    slot: Arc<WriteSlot>,
}

/// Per-waiter result cell, filled by the leader that commits the batch.
#[derive(Default)]
struct WriteSlot(Mutex<Option<Result<()>>>);

/// Create a WAL at a freshly allocated file number. A crash between
/// allocating the number and persisting the manifest can leave an orphan
/// file at this path from a previous process; it was never referenced by
/// any manifest, so it is explicitly discarded here — [`Wal::create`]
/// itself refuses to touch an existing file.
fn create_fresh_wal(dir: &Path, num: u64, sync: bool) -> Result<Wal> {
    let path = wal_path(dir, num);
    if path.exists() {
        std::fs::remove_file(&path)
            .map_err(|e| Error::io(format!("removing orphan wal {}", path.display()), e))?;
    }
    Wal::create(path, sync)
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore").field("dir", &self.dir).finish()
    }
}

fn sst_path(dir: &Path, num: u64) -> PathBuf {
    dir.join(format!("{num:06}.sst"))
}

fn wal_path(dir: &Path, num: u64) -> PathBuf {
    dir.join(format!("{num:06}.wal"))
}

impl KvStore {
    /// Open (or create) a store in `dir`.
    pub fn open(dir: impl Into<PathBuf>, options: Options) -> Result<Self> {
        Self::open_with_telemetry(dir, options, Telemetry::disabled())
    }

    /// Open (or create) a store in `dir`, recording spans and counters
    /// into `tel` whenever that handle is enabled. The handle is shared:
    /// the ledger passes the same one to every store it owns so a single
    /// `enable()` lights up the whole stack.
    pub fn open_with_telemetry(
        dir: impl Into<PathBuf>,
        options: Options,
        tel: Telemetry,
    ) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("creating store dir {}", dir.display()), e))?;
        let manifest_path = dir.join("MANIFEST");
        let (mut next_file, wal_num, table_nums) = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => Self::parse_manifest(&manifest_path, &text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (1, 0, Vec::new()),
            Err(e) => return Err(Error::io("reading manifest".to_string(), e)),
        };
        let mut tables = Vec::with_capacity(table_nums.len());
        for &num in &table_nums {
            tables.push(SsTableReader::open(sst_path(&dir, num))?);
        }
        // Replay the WAL (if any) into a fresh memtable, then continue
        // appending to a new WAL so replay is idempotent across crashes
        // during open.
        let mut memtable = MemTable::new();
        let old_wal = wal_path(&dir, wal_num);
        for record in replay(&old_wal)? {
            let batch = WriteBatch::decode(&record)?;
            Self::apply_to_memtable(&mut memtable, batch);
        }
        let new_wal_num = next_file;
        next_file += 1;
        let mut wal = create_fresh_wal(&dir, new_wal_num, options.sync_wal)?;
        // Re-log replayed entries so the old WAL can be dropped.
        if !memtable.is_empty() {
            let mut batch = WriteBatch::new();
            for (k, slot) in memtable.iter() {
                match slot {
                    Slot::Value(v) => batch.put(k.clone(), v.clone()),
                    Slot::Tombstone => batch.delete(k.clone()),
                };
            }
            wal.append(&batch.encode())?;
        }
        let store = KvStore {
            dir: dir.clone(),
            options,
            inner: RwLock::new(Inner {
                memtable,
                tables,
                table_nums,
                wal,
                wal_num: new_wal_num,
                next_file,
            }),
            metrics: Metrics::default(),
            group_probe: QueueProbe::new(&tel, "kv.group"),
            tel,
            group: GroupCommit::default(),
            compaction_gate: Mutex::new(()),
        };
        store.write_manifest(&store.inner.read())?;
        if old_wal.exists() && old_wal != wal_path(&dir, new_wal_num) {
            let _ = std::fs::remove_file(old_wal);
        }
        Ok(store)
    }

    fn parse_manifest(path: &Path, text: &str) -> Result<(u64, u64, Vec<u64>)> {
        let mut next_file = 1u64;
        let mut wal_num = 0u64;
        let mut table_nums = Vec::new();
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let (Some(kind), Some(num)) = (parts.next(), parts.next()) else {
                continue;
            };
            let num: u64 = num
                .parse()
                .map_err(|_| Error::corruption(path, format!("bad manifest line: {line}")))?;
            match kind {
                "next" => next_file = num,
                "wal" => wal_num = num,
                "sst" => table_nums.push(num),
                other => {
                    return Err(Error::corruption(
                        path,
                        format!("unknown manifest entry: {other}"),
                    ))
                }
            }
        }
        Ok((next_file, wal_num, table_nums))
    }

    fn write_manifest(&self, inner: &Inner) -> Result<()> {
        let mut text = format!("next {}\nwal {}\n", inner.next_file, inner.wal_num);
        for num in &inner.table_nums {
            text.push_str(&format!("sst {num}\n"));
        }
        let tmp = self.dir.join("MANIFEST.tmp");
        let final_path = self.dir.join("MANIFEST");
        std::fs::write(&tmp, text)
            .and_then(|_| std::fs::rename(&tmp, &final_path))
            .map_err(|e| Error::io("writing manifest".to_string(), e))
    }

    fn apply_to_memtable(memtable: &mut MemTable, batch: WriteBatch) {
        for op in batch.into_ops() {
            match op {
                BatchOp::Put { key, value } => memtable.put(key, value),
                BatchOp::Delete { key } => memtable.delete(key),
            }
        }
    }

    /// Insert or overwrite a single key.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key.into(), value.into());
        self.write(batch)
    }

    /// Delete a single key (idempotent).
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key.into());
        self.write(batch)
    }

    /// Apply a batch atomically: logged as one WAL record, applied to the
    /// memtable under one lock. With [`Options::group_commit`] enabled,
    /// concurrent callers are coalesced into one WAL append + fsync.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.options.group_commit {
            return self.write_grouped(batch);
        }
        let puts = batch
            .iter()
            .filter(|op| matches!(op, BatchOp::Put { .. }))
            .count();
        let dels = batch.len() - puts;
        let mut inner = self.inner.write();
        let bytes = {
            let mut span = self.tel.span("kv.wal.append");
            let bytes = inner.wal.append(&batch.encode())?;
            span.record("bytes", bytes);
            bytes
        };
        Metrics::add(&self.metrics.bytes_wal, bytes);
        if self.options.sync_wal {
            Metrics::incr(&self.metrics.wal_fsyncs);
            self.tel.count("kv.wal.fsyncs", 1);
        }
        Metrics::add(&self.metrics.puts, puts as u64);
        Metrics::add(&self.metrics.deletes, dels as u64);
        Self::apply_to_memtable(&mut inner.memtable, batch);
        let wants_compaction = self.maybe_flush_locked(&mut inner)?;
        drop(inner);
        self.compact_if_wanted(wants_compaction)
    }

    /// Apply several batches as one durability unit: all batches are
    /// logged in one WAL append (one fsync with [`Options::sync_wal`]) and
    /// applied to the memtable in order. The WAL frames and the resulting
    /// store contents are exactly those of [`KvStore::write`] called once
    /// per batch — only the fsync count differs. This is group commit for
    /// a *single* caller with a backlog: the ledger's pipelined commit
    /// workers use it to amortise fsyncs over queued blocks.
    pub fn write_many(&self, batches: Vec<WriteBatch>) -> Result<()> {
        let mut batches: Vec<WriteBatch> = batches.into_iter().filter(|b| !b.is_empty()).collect();
        if batches.len() < 2 {
            return match batches.pop() {
                Some(batch) => self.write(batch),
                None => Ok(()),
            };
        }
        let mut inner = self.inner.write();
        Metrics::incr(&self.metrics.group_commits);
        Metrics::add(&self.metrics.group_commit_batches, batches.len() as u64);
        let payloads: Vec<Vec<u8>> = batches.iter().map(|b| b.encode()).collect();
        let bytes = {
            let mut span = self.tel.span("kv.wal.append");
            let bytes = inner.wal.append_group(&payloads)?;
            span.record("bytes", bytes);
            bytes
        };
        Metrics::add(&self.metrics.bytes_wal, bytes);
        if self.options.sync_wal {
            Metrics::incr(&self.metrics.wal_fsyncs);
            self.tel.count("kv.wal.fsyncs", 1);
        }
        for batch in batches {
            let puts = batch
                .iter()
                .filter(|op| matches!(op, BatchOp::Put { .. }))
                .count();
            Metrics::add(&self.metrics.puts, puts as u64);
            Metrics::add(&self.metrics.deletes, (batch.len() - puts) as u64);
            Self::apply_to_memtable(&mut inner.memtable, batch);
        }
        let wants_compaction = self.maybe_flush_locked(&mut inner)?;
        drop(inner);
        self.compact_if_wanted(wants_compaction)
    }

    /// Flush when the memtable is over its cap. Returns whether the flush
    /// brought the table count up to the compaction trigger; the caller
    /// must release the writer lock before acting on it.
    fn maybe_flush_locked(&self, inner: &mut Inner) -> Result<bool> {
        if inner.memtable.approx_bytes() < self.options.memtable_max_bytes {
            return Ok(false);
        }
        self.flush_locked(inner)?;
        Ok(self.options.compaction_trigger > 0
            && inner.tables.len() >= self.options.compaction_trigger)
    }

    /// Run a compaction with the writer lock **released**. `try_lock`
    /// keeps this automatic path single-flight: if another thread is
    /// already compacting, this one moves on.
    fn compact_if_wanted(&self, wanted: bool) -> Result<()> {
        if wanted {
            if let Some(_gate) = self.compaction_gate.try_lock() {
                self.compact_gated()?;
            }
        }
        Ok(())
    }

    /// Group-commit front door: enqueue the batch, then either become the
    /// leader (no leader running) and commit the whole queue, or wait for
    /// a leader to fill this batch's result slot.
    fn write_grouped(&self, batch: WriteBatch) -> Result<()> {
        let slot = Arc::new(WriteSlot::default());
        let enqueued_at = self.group_probe.is_live().then(std::time::Instant::now);
        let wait_ns =
            |t0: Option<std::time::Instant>| t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        let mut state = self.group.state.lock().unwrap_or_else(|e| e.into_inner());
        state.pending.push(PendingWrite {
            batch,
            slot: Arc::clone(&slot),
        });
        self.group_probe.enqueued();
        loop {
            if !state.leader_running {
                state.leader_running = true;
                let work = std::mem::take(&mut state.pending);
                // The backlog's staleness is bounded by this leader's own
                // queue residency (it enqueued last).
                self.group_probe
                    .drained(work.len() as u64, wait_ns(enqueued_at));
                drop(state);
                self.run_group(work);
                self.group
                    .state
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .leader_running = false;
                self.group.cond.notify_all();
                self.group_probe.send_waited_ns(wait_ns(enqueued_at));
                return slot
                    .0
                    .lock()
                    .take()
                    .expect("leader fills every slot it drained, including its own");
            }
            state = self
                .group
                .cond
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
            if let Some(result) = slot.0.lock().take() {
                self.group_probe.send_waited_ns(wait_ns(enqueued_at));
                return result;
            }
            // Woken but not served: this batch arrived after the running
            // leader drained the queue. Loop — we may be the next leader.
        }
    }

    /// Leader body of the group-commit path: append every queued batch in
    /// one WAL write (one fsync), then apply them to the memtable in queue
    /// order. Fills every waiter's result slot; never returns an error —
    /// failures fan out to the waiters instead.
    fn run_group(&self, work: Vec<PendingWrite>) {
        let mut inner = self.inner.write();
        Metrics::incr(&self.metrics.group_commits);
        Metrics::add(&self.metrics.group_commit_batches, work.len() as u64);
        let payloads: Vec<Vec<u8>> = work.iter().map(|w| w.batch.encode()).collect();
        let appended = {
            let mut span = self.tel.span("kv.wal.append");
            let result = inner.wal.append_group(&payloads);
            if let Ok(bytes) = &result {
                span.record("bytes", *bytes);
            }
            result
        };
        let bytes = match appended {
            Ok(bytes) => bytes,
            Err(e) => {
                drop(inner);
                // Nothing in this group is durable; fail every waiter.
                // `Error` is not `Clone`, so each gets a formatted copy.
                let msg = e.to_string();
                for w in work {
                    *w.slot.0.lock() = Some(Err(Error::io(
                        "group commit".to_string(),
                        std::io::Error::other(msg.clone()),
                    )));
                }
                return;
            }
        };
        Metrics::add(&self.metrics.bytes_wal, bytes);
        if self.options.sync_wal {
            Metrics::incr(&self.metrics.wal_fsyncs);
            self.tel.count("kv.wal.fsyncs", 1);
        }
        let mut slots = Vec::with_capacity(work.len());
        for w in work {
            let puts = w
                .batch
                .iter()
                .filter(|op| matches!(op, BatchOp::Put { .. }))
                .count();
            Metrics::add(&self.metrics.puts, puts as u64);
            Metrics::add(&self.metrics.deletes, (w.batch.len() - puts) as u64);
            Self::apply_to_memtable(&mut inner.memtable, w.batch);
            slots.push(w.slot);
        }
        // Flush/compact exactly as a serial writer would. A failure here is
        // reported to every waiter: their records are durable in the WAL,
        // but the store may be wedged — same contract as the serial path.
        let tail = self.maybe_flush_locked(&mut inner).and_then(|wanted| {
            drop(inner);
            self.compact_if_wanted(wanted)
        });
        match tail {
            Ok(()) => {
                for s in slots {
                    *s.0.lock() = Some(Ok(()));
                }
            }
            Err(e) => {
                let msg = e.to_string();
                for s in slots {
                    *s.0.lock() = Some(Err(Error::io(
                        "group commit flush".to_string(),
                        std::io::Error::other(msg.clone()),
                    )));
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        Metrics::incr(&self.metrics.gets);
        let inner = self.inner.read();
        if let Some(slot) = inner.memtable.get(key) {
            return Ok(slot.as_value().cloned());
        }
        for table in inner.tables.iter().rev() {
            if table.definitely_absent(key) {
                Metrics::incr(&self.metrics.bloom_negatives);
                self.tel.count("kv.bloom.negatives", 1);
                continue;
            }
            Metrics::incr(&self.metrics.sstable_point_reads);
            let _span = self.tel.span("kv.sstable.read");
            if let Some(slot) = table.get(key)? {
                return Ok(slot.as_value().cloned());
            }
            // The bloom filter (and key-range check) said "maybe", yet the
            // table had no entry: a false positive we paid a data read for.
            Metrics::incr(&self.metrics.bloom_false_positives);
            self.tel.count("kv.bloom.false_positives", 1);
        }
        Ok(None)
    }

    /// Iterate live entries with keys in `[start, end)`.
    ///
    /// The iterator sees a snapshot of the memtable taken now plus the
    /// current set of SSTables; writes performed after this call are not
    /// reflected.
    pub fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<RangeIter> {
        Metrics::incr(&self.metrics.range_scans);
        // An inverted or empty range is a no-op, not a panic (BTreeMap's
        // `range` would panic on start > end).
        let inverted = match (&start, &end) {
            (Bound::Included(s) | Bound::Excluded(s), Bound::Included(e)) => s > e,
            (Bound::Included(s), Bound::Excluded(e)) => s >= e,
            (Bound::Excluded(s), Bound::Excluded(e)) => s >= e,
            _ => false,
        };
        if inverted {
            return Ok(RangeIter {
                merge: MergeIter::new(Vec::new())?,
                start: Bound::Unbounded,
                end: Bound::Unbounded,
                done: true,
            });
        }
        let inner = self.inner.read();
        let mut sources: Vec<Box<dyn EntrySource + Send>> = Vec::new();
        // Memtable snapshot is the newest source.
        let mem_entries: Vec<SsEntry> = inner
            .memtable
            .range(start, Bound::Unbounded)
            .map(|(k, slot)| SsEntry {
                key: k.clone(),
                slot: slot.clone(),
            })
            .collect();
        sources.push(Box::new(VecSource::new(mem_entries)));
        for table in inner.tables.iter().rev() {
            let iter = match start {
                Bound::Included(k) | Bound::Excluded(k) => table.seek(k)?,
                Bound::Unbounded => table.iter()?,
            };
            sources.push(Box::new(iter));
        }
        let start_owned = match start {
            Bound::Included(k) => Bound::Included(Bytes::copy_from_slice(k)),
            Bound::Excluded(k) => Bound::Excluded(Bytes::copy_from_slice(k)),
            Bound::Unbounded => Bound::Unbounded,
        };
        let end_owned = match end {
            Bound::Included(k) => Bound::Included(Bytes::copy_from_slice(k)),
            Bound::Excluded(k) => Bound::Excluded(Bytes::copy_from_slice(k)),
            Bound::Unbounded => Bound::Unbounded,
        };
        Ok(RangeIter {
            merge: MergeIter::new(sources)?,
            start: start_owned,
            end: end_owned,
            done: false,
        })
    }

    /// Iterate live entries whose key starts with `prefix`.
    pub fn prefix(&self, prefix: &[u8]) -> Result<RangeIter> {
        let end = prefix_end(prefix);
        match &end {
            Some(end) => self.range(Bound::Included(prefix), Bound::Excluded(end)),
            None => self.range(Bound::Included(prefix), Bound::Unbounded),
        }
    }

    /// Force the memtable to an SSTable regardless of size.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let mut span = self.tel.span("kv.memtable.flush");
        let num = inner.next_file;
        inner.next_file += 1;
        let path = sst_path(&self.dir, num);
        let mut writer = SsTableWriter::create(
            &path,
            self.options.sparse_index_interval,
            self.options.bloom_bits_per_key,
        )?;
        for (key, slot) in inner.memtable.iter() {
            writer.add(key, slot)?;
        }
        let bytes = writer.finish()?;
        span.record("bytes", bytes);
        Metrics::add(&self.metrics.bytes_flushed, bytes);
        Metrics::incr(&self.metrics.flushes);
        inner.tables.push(SsTableReader::open(&path)?);
        inner.table_nums.push(num);
        inner.memtable = MemTable::new();
        // Rotate the WAL: everything it contained is now durable in the sst.
        let old_wal = wal_path(&self.dir, inner.wal_num);
        let new_wal_num = inner.next_file;
        inner.next_file += 1;
        inner.wal = create_fresh_wal(&self.dir, new_wal_num, self.options.sync_wal)?;
        inner.wal_num = new_wal_num;
        self.write_manifest(inner)?;
        let _ = std::fs::remove_file(old_wal);
        Ok(())
    }

    /// Merge every SSTable into one, dropping shadowed versions and
    /// tombstones (safe: a full merge leaves nothing older underneath).
    ///
    /// The merge itself runs **without** the writer lock, so concurrent
    /// readers and writers proceed; only the snapshot at the start and the
    /// table swap at the end take the lock briefly.
    pub fn compact(&self) -> Result<()> {
        let _gate = self.compaction_gate.lock();
        self.compact_gated()
    }

    /// Compaction body; caller must hold `compaction_gate` and must NOT
    /// hold the `inner` lock.
    fn compact_gated(&self) -> Result<()> {
        // Phase 1 (brief write lock): snapshot the live tables and reserve
        // an output file number. `tables` is oldest-first and flushes only
        // append, so the snapshot is a stable bottom prefix of the stack —
        // dropping tombstones from its merge stays safe because nothing
        // older can exist beneath it.
        let (snap_tables, snap_nums, out_num) = {
            let mut inner = self.inner.write();
            if inner.tables.len() <= 1 {
                return Ok(());
            }
            let num = inner.next_file;
            inner.next_file += 1;
            (inner.tables.clone(), inner.table_nums.clone(), num)
        };
        let mut span = self.tel.span("kv.compaction");
        // Input size: every snapshot table is read in full during the merge.
        let bytes_read: u64 = snap_nums
            .iter()
            .filter_map(|&n| std::fs::metadata(sst_path(&self.dir, n)).ok())
            .map(|m| m.len())
            .sum();
        Metrics::add(&self.metrics.compaction_bytes_read, bytes_read);
        span.record("bytes_read", bytes_read);
        // Phase 2 (no lock): merge the snapshot into one table. A crash
        // here leaves an orphan .sst never named by any manifest; the next
        // writer of that number truncates it (`SsTableWriter::create`).
        let path = sst_path(&self.dir, out_num);
        let mut writer = SsTableWriter::create(
            &path,
            self.options.sparse_index_interval,
            self.options.bloom_bits_per_key,
        )?;
        {
            // Newest-first sources; exclude the memtable (it stays live).
            let sources: Vec<Box<dyn EntrySource + Send>> = snap_tables
                .iter()
                .rev()
                .map(|t| t.iter().map(|i| Box::new(i) as Box<dyn EntrySource + Send>))
                .collect::<Result<_>>()?;
            let mut merge = MergeIter::new(sources)?;
            while let Some((key, value)) = merge.next_live()? {
                writer.add(&key, &Slot::Value(value))?;
            }
        }
        let bytes = writer.finish()?;
        span.record("bytes_written", bytes);
        Metrics::add(&self.metrics.bytes_flushed, bytes);
        Metrics::add(&self.metrics.compaction_bytes_written, bytes);
        Metrics::incr(&self.metrics.compactions);
        let merged = SsTableReader::open(&path)?;
        // Phase 3 (brief write lock): swap the snapshot prefix for the
        // merged table. Tables flushed during the merge stay stacked on
        // top, in order.
        {
            let mut inner = self.inner.write();
            debug_assert_eq!(inner.table_nums[..snap_nums.len()], snap_nums[..]);
            let newer_tables = inner.tables.split_off(snap_tables.len());
            let newer_nums = inner.table_nums.split_off(snap_nums.len());
            inner.tables = std::iter::once(merged).chain(newer_tables).collect();
            inner.table_nums = std::iter::once(out_num).chain(newer_nums).collect();
            self.write_manifest(&inner)?;
        }
        for old in snap_nums {
            let _ = std::fs::remove_file(sst_path(&self.dir, old));
        }
        Ok(())
    }

    /// Write a consistent checkpoint of the store into `dest` (which must
    /// not already contain a store). The checkpoint is a fully openable
    /// copy: the memtable is flushed first, then the live SSTables and a
    /// fresh manifest are copied under the write lock, so no concurrent
    /// writer can interleave.
    pub fn checkpoint(&self, dest: impl Into<PathBuf>) -> Result<()> {
        let dest = dest.into();
        std::fs::create_dir_all(&dest)
            .map_err(|e| Error::io(format!("creating checkpoint dir {}", dest.display()), e))?;
        if dest.join("MANIFEST").exists() {
            return Err(Error::InvalidArgument(format!(
                "checkpoint destination {} already holds a store",
                dest.display()
            )));
        }
        let mut inner = self.inner.write();
        self.flush_locked(&mut inner)?;
        let mut text = format!("next {}\nwal 0\n", inner.next_file);
        for (num, _table) in inner.table_nums.iter().zip(&inner.tables) {
            let name = format!("{num:06}.sst");
            std::fs::copy(sst_path(&self.dir, *num), dest.join(&name))
                .map_err(|e| Error::io(format!("copying {name} to checkpoint"), e))?;
            text.push_str(&format!("sst {num}\n"));
        }
        let tmp = dest.join("MANIFEST.tmp");
        std::fs::write(&tmp, text)
            .and_then(|_| std::fs::rename(&tmp, dest.join("MANIFEST")))
            .map_err(|e| Error::io("writing checkpoint manifest".to_string(), e))?;
        Ok(())
    }

    /// Number of live SSTables (diagnostics / tests).
    pub fn table_count(&self) -> usize {
        self.inner.read().tables.len()
    }

    /// Point-in-time occupancy numbers for live-metrics surfaces
    /// (`/metrics` gauges): SSTable count, bytes appended to the current
    /// WAL, and memtable entries/bytes. One shared read lock, no I/O.
    pub fn storage_stats(&self) -> StorageStats {
        let inner = self.inner.read();
        StorageStats {
            sstables: inner.tables.len() as u64,
            wal_bytes: inner.wal.bytes_written(),
            memtable_entries: inner.memtable.len() as u64,
            memtable_bytes: inner.memtable.approx_bytes() as u64,
            ..StorageStats::default()
        }
    }

    /// Snapshot of the operation counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The telemetry handle this store records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Point-in-time storage occupancy (see [`KvStore::storage_stats`] and
/// [`crate::LogStore::storage_stats`]). One struct serves both engines;
/// fields that do not apply to a backend read zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// Which engine produced these numbers.
    pub backend: crate::options::Backend,
    /// LSM: live SSTables backing the store.
    pub sstables: u64,
    /// Bytes appended to the current append log: the LSM's write-ahead log,
    /// or the value log's active data file.
    pub wal_bytes: u64,
    /// LSM: entries (values + tombstones) in the active memtable.
    pub memtable_entries: u64,
    /// LSM: approximate bytes held by the active memtable.
    pub memtable_bytes: u64,
    /// Value log: data files on disk (sealed + active).
    pub data_files: u64,
    /// Value log: estimated bytes of dead entries awaiting compaction.
    pub uncompacted_bytes: u64,
    /// Value log: merge compactions run since open.
    pub compactions: u64,
}

impl Default for StorageStats {
    fn default() -> Self {
        StorageStats {
            // Stats always describe a concrete engine, so the default is the
            // default engine, not `Backend::Auto`.
            backend: crate::options::Backend::Lsm,
            sstables: 0,
            wal_bytes: 0,
            memtable_entries: 0,
            memtable_bytes: 0,
            data_files: 0,
            uncompacted_bytes: 0,
            compactions: 0,
        }
    }
}

/// Smallest byte string strictly greater than every string with `prefix`.
/// `None` when the prefix is all `0xFF` (no upper bound exists).
pub fn prefix_end(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(end);
        }
        end.pop();
    }
    None
}

/// Snapshot iterator over a key range; yields live `(key, value)` pairs in
/// ascending key order.
pub struct RangeIter {
    merge: MergeIter,
    start: Bound<Bytes>,
    end: Bound<Bytes>,
    done: bool,
}

impl RangeIter {
    fn within_start(&self, key: &[u8]) -> bool {
        match &self.start {
            Bound::Included(s) => key >= &s[..],
            Bound::Excluded(s) => key > &s[..],
            Bound::Unbounded => true,
        }
    }

    fn within_end(&self, key: &[u8]) -> bool {
        match &self.end {
            Bound::Included(e) => key <= &e[..],
            Bound::Excluded(e) => key < &e[..],
            Bound::Unbounded => true,
        }
    }

    /// Next pair, or `None` at the end of the range.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        if self.done {
            return Ok(None);
        }
        while let Some((key, value)) = self.merge.next_live()? {
            if !self.within_start(&key) {
                continue; // sstable seek may land slightly before start
            }
            if !self.within_end(&key) {
                self.done = true;
                return Ok(None);
            }
            return Ok(Some((key, value)));
        }
        self.done = true;
        Ok(None)
    }

    /// Drain the iterator into a vector (convenience for tests/queries).
    pub fn collect_all(mut self) -> Result<Vec<(Bytes, Bytes)>> {
        let mut out = Vec::new();
        while let Some(pair) = self.next()? {
            out.push(pair);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "kvstore-test-{}-{tag}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn open(dir: &TempDir) -> KvStore {
        KvStore::open(&dir.0, Options::small_for_tests()).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let dir = TempDir::new("pgd");
        let db = open(&dir);
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        assert_eq!(db.get(b"k").unwrap().unwrap(), &b"v"[..]);
        db.delete(&b"k"[..]).unwrap();
        assert!(db.get(b"k").unwrap().is_none());
        assert!(db.get(b"never").unwrap().is_none());
    }

    #[test]
    fn survives_reopen_via_wal() {
        let dir = TempDir::new("wal-reopen");
        {
            let db = open(&dir);
            db.put(&b"persist"[..], &b"me"[..]).unwrap();
        }
        let db = open(&dir);
        assert_eq!(db.get(b"persist").unwrap().unwrap(), &b"me"[..]);
    }

    #[test]
    fn survives_reopen_via_sstables() {
        let dir = TempDir::new("sst-reopen");
        {
            let db = open(&dir);
            for i in 0..200 {
                db.put(format!("key{i:04}"), format!("val{i}")).unwrap();
            }
            db.flush().unwrap();
        }
        let db = open(&dir);
        assert_eq!(db.get(b"key0123").unwrap().unwrap(), &b"val123"[..]);
        assert!(db.table_count() >= 1);
    }

    #[test]
    fn storage_stats_tracks_occupancy() {
        let dir = TempDir::new("storage-stats");
        let db = open(&dir);
        assert_eq!(db.storage_stats(), StorageStats::default());
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        let s = db.storage_stats();
        assert_eq!(s.memtable_entries, 1);
        assert!(s.memtable_bytes > 0);
        assert!(s.wal_bytes > 0);
        assert_eq!(s.sstables, 0);
        db.flush().unwrap();
        let s = db.storage_stats();
        assert_eq!(s.memtable_entries, 0);
        assert_eq!(s.sstables, 1);
    }

    #[test]
    fn flush_triggers_automatically() {
        let dir = TempDir::new("autoflush");
        let db = open(&dir); // memtable_max_bytes = 1024
        for i in 0..100 {
            db.put(format!("key-{i:05}"), "x".repeat(50)).unwrap();
        }
        assert!(db.metrics().flushes > 0, "expected automatic flushes");
        for i in 0..100 {
            let k = format!("key-{i:05}");
            assert_eq!(db.get(k.as_bytes()).unwrap().unwrap(), "x".repeat(50));
        }
    }

    #[test]
    fn compaction_reduces_table_count_and_preserves_data() {
        let dir = TempDir::new("compact");
        let db = open(&dir);
        for round in 0..5 {
            for i in 0..20 {
                db.put(format!("key{i:03}"), format!("round{round}"))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact().unwrap();
        assert_eq!(db.table_count(), 1);
        for i in 0..20 {
            let k = format!("key{i:03}");
            assert_eq!(db.get(k.as_bytes()).unwrap().unwrap(), &b"round4"[..]);
        }
    }

    #[test]
    fn compaction_drops_tombstones() {
        let dir = TempDir::new("compact-tomb");
        let db = open(&dir);
        db.put(&b"dead"[..], &b"v"[..]).unwrap();
        db.flush().unwrap();
        db.delete(&b"dead"[..]).unwrap();
        db.put(&b"live"[..], &b"v"[..]).unwrap();
        db.flush().unwrap();
        db.compact().unwrap();
        assert!(db.get(b"dead").unwrap().is_none());
        assert_eq!(db.get(b"live").unwrap().unwrap(), &b"v"[..]);
        // After compaction the single table should hold exactly one entry.
        assert_eq!(db.table_count(), 1);
    }

    #[test]
    fn range_scan_merges_all_levels() {
        let dir = TempDir::new("range");
        let db = open(&dir);
        db.put(&b"a"[..], &b"old"[..]).unwrap();
        db.put(&b"c"[..], &b"1"[..]).unwrap();
        db.flush().unwrap();
        db.put(&b"a"[..], &b"new"[..]).unwrap(); // shadows sstable version
        db.put(&b"b"[..], &b"2"[..]).unwrap(); // memtable only
        let got = db
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect_all()
            .unwrap();
        let got: Vec<(String, String)> = got
            .into_iter()
            .map(|(k, v)| {
                (
                    String::from_utf8(k.to_vec()).unwrap(),
                    String::from_utf8(v.to_vec()).unwrap(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".into(), "new".into()),
                ("b".into(), "2".into()),
                ("c".into(), "1".into())
            ]
        );
    }

    #[test]
    fn range_scan_respects_bounds() {
        let dir = TempDir::new("range-bounds");
        let db = open(&dir);
        for k in ["a", "b", "c", "d", "e"] {
            db.put(k.as_bytes().to_vec(), &b"v"[..]).unwrap();
        }
        let got = db
            .range(Bound::Excluded(&b"a"[..]), Bound::Included(&b"d"[..]))
            .unwrap()
            .collect_all()
            .unwrap();
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| &k[..]).collect();
        assert_eq!(keys, vec![b"b", b"c", b"d"]);
    }

    #[test]
    fn range_scan_skips_deleted() {
        let dir = TempDir::new("range-del");
        let db = open(&dir);
        db.put(&b"a"[..], &b"1"[..]).unwrap();
        db.put(&b"b"[..], &b"2"[..]).unwrap();
        db.flush().unwrap();
        db.delete(&b"a"[..]).unwrap();
        let got = db
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].0[..], b"b");
    }

    #[test]
    fn prefix_scan() {
        let dir = TempDir::new("prefix");
        let db = open(&dir);
        for k in ["app:1", "app:2", "apple", "b:1"] {
            db.put(k.as_bytes().to_vec(), &b"v"[..]).unwrap();
        }
        let got = db.prefix(b"app:").unwrap().collect_all().unwrap();
        assert_eq!(got.len(), 2);
        let got = db.prefix(b"app").unwrap().collect_all().unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn prefix_end_edge_cases() {
        assert_eq!(prefix_end(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_end(b"ab\xff"), Some(b"ac".to_vec()));
        assert_eq!(prefix_end(b"\xff\xff"), None);
        assert_eq!(prefix_end(b""), None);
    }

    #[test]
    fn atomic_batch_applies_all_or_nothing() {
        let dir = TempDir::new("batch");
        let db = open(&dir);
        db.put(&b"x"[..], &b"old"[..]).unwrap();
        let mut batch = WriteBatch::new();
        batch
            .put(&b"x"[..], &b"new"[..])
            .put(&b"y"[..], &b"1"[..])
            .delete(&b"x"[..]);
        db.write(batch).unwrap();
        // Ops apply in order: final state of x is deleted.
        assert!(db.get(b"x").unwrap().is_none());
        assert_eq!(db.get(b"y").unwrap().unwrap(), &b"1"[..]);
    }

    #[test]
    fn reopen_after_flush_and_more_writes() {
        let dir = TempDir::new("mixed-reopen");
        {
            let db = open(&dir);
            db.put(&b"in-sst"[..], &b"1"[..]).unwrap();
            db.flush().unwrap();
            db.put(&b"in-wal"[..], &b"2"[..]).unwrap();
        }
        let db = open(&dir);
        assert_eq!(db.get(b"in-sst").unwrap().unwrap(), &b"1"[..]);
        assert_eq!(db.get(b"in-wal").unwrap().unwrap(), &b"2"[..]);
    }

    #[test]
    fn delete_of_flushed_key_survives_reopen() {
        let dir = TempDir::new("tomb-reopen");
        {
            let db = open(&dir);
            db.put(&b"k"[..], &b"v"[..]).unwrap();
            db.flush().unwrap();
            db.delete(&b"k"[..]).unwrap();
        }
        let db = open(&dir);
        assert!(db.get(b"k").unwrap().is_none());
    }

    #[test]
    fn empty_batch_is_noop() {
        let dir = TempDir::new("empty-batch");
        let db = open(&dir);
        db.write(WriteBatch::new()).unwrap();
        assert_eq!(db.metrics().puts, 0);
    }

    #[test]
    fn metrics_track_operations() {
        let dir = TempDir::new("metrics");
        let db = open(&dir);
        db.put(&b"a"[..], &b"1"[..]).unwrap();
        db.get(b"a").unwrap();
        db.get(b"missing").unwrap();
        db.delete(&b"a"[..]).unwrap();
        let m = db.metrics();
        assert_eq!(m.puts, 1);
        assert_eq!(m.gets, 2);
        assert_eq!(m.deletes, 1);
        assert!(m.bytes_wal > 0);
    }

    #[test]
    fn bloom_false_positives_are_counted() {
        let dir = TempDir::new("bloom-fp");
        // Blooms disabled: every in-range probe of a missing key is a
        // deterministic "maybe" that misses — exactly the false-positive
        // accounting path.
        let mut opts = Options::small_for_tests();
        opts.bloom_bits_per_key = 0;
        let db = KvStore::open(&dir.0, opts).unwrap();
        db.put(&b"aaa"[..], &b"1"[..]).unwrap();
        db.put(&b"zzz"[..], &b"2"[..]).unwrap();
        db.flush().unwrap();
        db.get(b"mmm").unwrap(); // inside [aaa, zzz], not present
        let m = db.metrics();
        assert_eq!(m.bloom_false_positives, 1);
        assert_eq!(m.sstable_point_reads, 1);
        db.get(b"aaa").unwrap(); // present: a true positive, not counted
        assert_eq!(db.metrics().bloom_false_positives, 1);
    }

    #[test]
    fn wal_fsyncs_are_counted_when_sync_enabled() {
        let dir = TempDir::new("wal-fsync");
        let mut opts = Options::small_for_tests();
        opts.sync_wal = true;
        let db = KvStore::open(&dir.0, opts).unwrap();
        db.put(&b"a"[..], &b"1"[..]).unwrap();
        db.put(&b"b"[..], &b"2"[..]).unwrap();
        assert_eq!(db.metrics().wal_fsyncs, 2);

        let dir2 = TempDir::new("wal-nosync");
        let db2 = open(&dir2); // sync_wal = false
        db2.put(&b"a"[..], &b"1"[..]).unwrap();
        assert_eq!(db2.metrics().wal_fsyncs, 0);
    }

    #[test]
    fn compaction_byte_counters_track_inputs_and_outputs() {
        let dir = TempDir::new("compact-bytes");
        let db = open(&dir);
        for round in 0..3 {
            for i in 0..20 {
                db.put(format!("key{i:03}"), format!("round{round}"))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        assert_eq!(db.metrics().compaction_bytes_read, 0);
        db.compact().unwrap();
        let m = db.metrics();
        assert!(m.compaction_bytes_read > 0, "inputs were read");
        assert!(
            m.compaction_bytes_written > 0,
            "an output table was written"
        );
        // Shadowed versions are dropped, so the output is smaller than the
        // three overlapping inputs combined.
        assert!(m.compaction_bytes_written < m.compaction_bytes_read);
    }

    #[test]
    fn telemetry_spans_cover_write_flush_compact() {
        let dir = TempDir::new("telemetry");
        let tel = fabric_telemetry::Telemetry::enabled();
        let db =
            KvStore::open_with_telemetry(&dir.0, Options::small_for_tests(), tel.clone()).unwrap();
        for round in 0..2 {
            for i in 0..40 {
                db.put(
                    format!("key{i:03}"),
                    format!("round{round}-{}", "x".repeat(20)),
                )
                .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact().unwrap();
        db.get(b"key001").unwrap();
        let spans = tel.drain_spans();
        let names: std::collections::HashSet<&str> = spans.iter().map(|s| s.name).collect();
        for expected in [
            "kv.wal.append",
            "kv.memtable.flush",
            "kv.compaction",
            "kv.sstable.read",
        ] {
            assert!(names.contains(expected), "missing span {expected}");
        }
        // Auto-compaction may fire during the writes too, so compare the
        // sum over every compaction span against the cumulative counters.
        let read: u64 = spans
            .iter()
            .filter(|s| s.name == "kv.compaction")
            .filter_map(|s| s.metric("bytes_read"))
            .sum();
        let written: u64 = spans
            .iter()
            .filter(|s| s.name == "kv.compaction")
            .filter_map(|s| s.metric("bytes_written"))
            .sum();
        assert_eq!(read, db.metrics().compaction_bytes_read);
        assert_eq!(written, db.metrics().compaction_bytes_written);
    }

    #[test]
    fn disabled_telemetry_records_nothing_by_default() {
        let dir = TempDir::new("telemetry-off");
        let db = open(&dir);
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        db.flush().unwrap();
        assert!(!db.telemetry().is_enabled());
        assert!(db.telemetry().drain_spans().is_empty());
    }

    #[test]
    fn checkpoint_is_openable_and_frozen() {
        let dir = TempDir::new("ckpt-src");
        let dest = TempDir::new("ckpt-dst");
        let ckpt_dir = dest.0.join("snap");
        let db = open(&dir);
        for i in 0..50 {
            db.put(format!("key{i:03}"), format!("v{i}")).unwrap();
        }
        db.flush().unwrap();
        db.put(&b"unflushed"[..], &b"in-memtable"[..]).unwrap();
        db.checkpoint(&ckpt_dir).unwrap();
        // Mutate the original afterwards.
        db.put(&b"key000"[..], &b"MUTATED"[..]).unwrap();
        db.delete(&b"key001"[..]).unwrap();
        // The checkpoint preserves the moment-of-checkpoint state,
        // including what was only in the memtable.
        let snap = KvStore::open(&ckpt_dir, Options::small_for_tests()).unwrap();
        assert_eq!(snap.get(b"key000").unwrap().unwrap(), &b"v0"[..]);
        assert_eq!(snap.get(b"key001").unwrap().unwrap(), &b"v1"[..]);
        assert_eq!(
            snap.get(b"unflushed").unwrap().unwrap(),
            &b"in-memtable"[..]
        );
        // And the original kept its mutations.
        assert_eq!(db.get(b"key000").unwrap().unwrap(), &b"MUTATED"[..]);
    }

    #[test]
    fn checkpoint_refuses_existing_store() {
        let dir = TempDir::new("ckpt-refuse");
        let db = open(&dir);
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        let dest = dir.0.join("snap");
        db.checkpoint(&dest).unwrap();
        assert!(
            db.checkpoint(&dest).is_err(),
            "second checkpoint must refuse"
        );
    }

    #[test]
    fn group_commit_sequential_writes_match_serial_fsyncs() {
        let dir = TempDir::new("group-seq");
        let mut opts = Options::small_for_tests();
        opts.sync_wal = true;
        opts.group_commit = true;
        let db = KvStore::open(&dir.0, opts).unwrap();
        db.put(&b"a"[..], &b"1"[..]).unwrap();
        db.put(&b"b"[..], &b"2"[..]).unwrap();
        let m = db.metrics();
        // Sequential callers never coalesce: one leader round (and one
        // fsync) per write, exactly like the serial path.
        assert_eq!(m.wal_fsyncs, 2);
        assert_eq!(m.group_commits, 2);
        assert_eq!(m.group_commit_batches, 2);
        assert_eq!(db.get(b"a").unwrap().unwrap(), &b"1"[..]);
        assert_eq!(db.get(b"b").unwrap().unwrap(), &b"2"[..]);
    }

    #[test]
    fn group_commit_coalesces_concurrent_writers() {
        let dir = TempDir::new("group-conc");
        let opts = Options {
            sync_wal: true,
            group_commit: true,
            ..Options::default()
        };
        let db = std::sync::Arc::new(KvStore::open(&dir.0, opts).unwrap());
        let mut handles = Vec::new();
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    db.put(format!("t{t}-k{i}"), format!("v{i}")).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let m = db.metrics();
        assert_eq!(m.group_commit_batches, 400);
        assert!(m.group_commits >= 1 && m.group_commits <= 400);
        // One fsync per leader round — never more than one per batch.
        assert_eq!(m.wal_fsyncs, m.group_commits);
        assert_eq!(m.puts, 400);
        for t in 0..8 {
            for i in 0..50 {
                let key = format!("t{t}-k{i}");
                assert_eq!(
                    db.get(key.as_bytes()).unwrap().unwrap(),
                    format!("v{i}"),
                    "{key} lost"
                );
            }
        }
    }

    /// Crash-recovery property for group commit: after a torn tail (a
    /// record that was being appended when the process died, never
    /// acknowledged), replay yields exactly the acknowledged writes.
    fn group_commit_crash_recovery(sync_wal: bool, tag: &str) {
        let dir = TempDir::new(tag);
        let opts = Options {
            sync_wal,
            group_commit: true,
            ..Options::default()
        };
        {
            let db = std::sync::Arc::new(KvStore::open(&dir.0, opts.clone()).unwrap());
            let mut handles = Vec::new();
            for t in 0..4 {
                let db = db.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..25 {
                        db.put(format!("t{t}-k{i}"), format!("v{i}")).unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            // Simulate the crash mid-append: frame a valid record for a
            // batch that was never acknowledged, chop its tail, and append
            // it to the live WAL by hand.
            let wal_file = std::fs::read_dir(&dir.0)
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "wal"))
                .max()
                .unwrap();
            let mut unacked = WriteBatch::new();
            unacked.put(&b"torn-key"[..], &b"never-acked"[..]);
            let payload = unacked.encode();
            let mut frame = Vec::new();
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            let crc = crate::crc32::crc32(&frame);
            let mut record = Vec::new();
            record.extend_from_slice(&crc.to_le_bytes());
            record.extend_from_slice(&frame);
            record.truncate(record.len() - 3); // torn tail
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&wal_file)
                .unwrap();
            f.write_all(&record).unwrap();
            // `db` dropped without any shutdown: the "crash".
        }
        let db = KvStore::open(&dir.0, opts).unwrap();
        for t in 0..4 {
            for i in 0..25 {
                let key = format!("t{t}-k{i}");
                assert_eq!(
                    db.get(key.as_bytes()).unwrap().unwrap(),
                    format!("v{i}"),
                    "acknowledged write {key} lost"
                );
            }
        }
        assert!(
            db.get(b"torn-key").unwrap().is_none(),
            "unacknowledged torn write must not replay"
        );
        db.put(&b"post-crash"[..], &b"ok"[..]).unwrap();
        assert_eq!(db.get(b"post-crash").unwrap().unwrap(), &b"ok"[..]);
    }

    #[test]
    fn group_commit_crash_recovery_sync() {
        group_commit_crash_recovery(true, "group-crash-sync");
    }

    #[test]
    fn group_commit_crash_recovery_nosync() {
        group_commit_crash_recovery(false, "group-crash-nosync");
    }

    #[test]
    fn reads_and_writes_proceed_during_compaction() {
        let dir = TempDir::new("compact-concurrent");
        let mut opts = Options::small_for_tests();
        opts.compaction_trigger = 0; // manual compaction only
        let db = std::sync::Arc::new(KvStore::open(&dir.0, opts).unwrap());
        for round in 0..6 {
            for i in 0..200 {
                db.put(format!("key{i:04}"), format!("round{round}"))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        assert!(db.table_count() >= 6);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for i in (0..200).step_by(17) {
                        let k = format!("key{i:04}");
                        assert!(
                            db.get(k.as_bytes()).unwrap().is_some(),
                            "{k} vanished mid-compaction"
                        );
                        reads += 1;
                    }
                }
                reads
            })
        };
        let writer = {
            let db = db.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    db.put(format!("new-{i:06}"), &b"x"[..]).unwrap();
                    i += 1;
                }
                i
            })
        };
        db.compact().unwrap();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let reads = reader.join().unwrap();
        let writes = writer.join().unwrap();
        assert!(reads > 0);
        // Every key written during the merge survives the table swap.
        for i in 0..writes {
            let k = format!("new-{i:06}");
            assert!(
                db.get(k.as_bytes()).unwrap().is_some(),
                "{k} lost in compaction swap"
            );
        }
        for i in 0..200 {
            let k = format!("key{i:04}");
            assert_eq!(db.get(k.as_bytes()).unwrap().unwrap(), &b"round5"[..]);
        }
    }

    #[test]
    fn open_discards_orphan_wal_from_crashed_rotation() {
        let dir = TempDir::new("orphan-wal");
        {
            let db = open(&dir);
            db.put(&b"live"[..], &b"1"[..]).unwrap();
        }
        // A crash between allocating a WAL number and writing the manifest
        // leaves an unreferenced file at `next`. Fabricate garbage there;
        // the next open must discard it rather than refuse or replay it.
        let manifest = std::fs::read_to_string(dir.0.join("MANIFEST")).unwrap();
        let next: u64 = manifest
            .lines()
            .find_map(|l| l.strip_prefix("next "))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        std::fs::write(dir.0.join(format!("{next:06}.wal")), b"garbage orphan").unwrap();
        let db = open(&dir);
        assert_eq!(db.get(b"live").unwrap().unwrap(), &b"1"[..]);
        db.put(&b"after"[..], &b"2"[..]).unwrap();
        assert_eq!(db.get(b"after").unwrap().unwrap(), &b"2"[..]);
    }

    #[test]
    fn write_many_matches_sequential_writes() {
        // The coalesced path must leave the store (and its WAL bytes)
        // exactly as N sequential writes would — only the fsync count may
        // differ.
        let batches = || -> Vec<WriteBatch> {
            (0..5)
                .map(|i| {
                    let mut b = WriteBatch::new();
                    b.put(format!("k{i}"), format!("v{i}"));
                    if i > 0 {
                        b.delete(format!("k{}", i - 1));
                    }
                    b
                })
                .collect()
        };
        let seq_dir = TempDir::new("wm-seq");
        let many_dir = TempDir::new("wm-many");
        let opts = || Options {
            sync_wal: true,
            ..Options::small_for_tests()
        };
        {
            let db = KvStore::open(&seq_dir.0, opts()).unwrap();
            for b in batches() {
                db.write(b).unwrap();
            }
        }
        {
            let db = KvStore::open(&many_dir.0, opts()).unwrap();
            db.write_many(batches()).unwrap();
            let m = db.metrics();
            assert_eq!(m.wal_fsyncs, 1, "one fsync covers the whole backlog");
            assert_eq!(m.group_commits, 1);
            assert_eq!(m.group_commit_batches, 5);
        }
        let wal_bytes = |dir: &TempDir| {
            let mut names: Vec<_> = std::fs::read_dir(&dir.0)
                .unwrap()
                .map(|e| e.unwrap().path())
                .filter(|p| p.extension().is_some_and(|e| e == "wal"))
                .collect();
            names.sort();
            names
                .iter()
                .flat_map(|p| std::fs::read(p).unwrap())
                .collect::<Vec<u8>>()
        };
        let (seq_wal, many_wal) = (wal_bytes(&seq_dir), wal_bytes(&many_dir));
        assert!(!seq_wal.is_empty(), "sequential WAL must not be empty");
        assert_eq!(
            seq_wal, many_wal,
            "write_many must log byte-identical WAL frames"
        );
        // Reopen the coalesced store: every batch replays.
        let db = KvStore::open(&many_dir.0, opts()).unwrap();
        assert_eq!(db.get(b"k4").unwrap().unwrap(), &b"v4"[..]);
        assert!(db.get(b"k3").unwrap().is_none(), "delete in later batch");
    }

    #[test]
    fn write_many_handles_empty_and_singleton() {
        let dir = TempDir::new("wm-edge");
        let db = open(&dir);
        db.write_many(Vec::new()).unwrap();
        db.write_many(vec![WriteBatch::new()]).unwrap();
        let mut b = WriteBatch::new();
        b.put(&b"solo"[..], &b"v"[..]);
        db.write_many(vec![WriteBatch::new(), b]).unwrap();
        assert_eq!(db.get(b"solo").unwrap().unwrap(), &b"v"[..]);
        // A singleton degrades to the plain write path: no group metrics.
        assert_eq!(db.metrics().group_commits, 0);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let dir = TempDir::new("concurrent");
        let db = std::sync::Arc::new(KvStore::open(&dir.0, Options::default()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    let key = format!("t{t}-k{i}");
                    db.put(key.clone(), format!("v{i}")).unwrap();
                    assert_eq!(db.get(key.as_bytes()).unwrap().unwrap(), format!("v{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4 {
            for i in 0..250 {
                let key = format!("t{t}-k{i}");
                assert!(db.get(key.as_bytes()).unwrap().is_some(), "{key} missing");
            }
        }
    }
}
