//! The [`KvStore`] facade: durability, flushing, compaction and reads.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/MANIFEST          current file set, rewritten atomically
//! <dir>/NNNNNN.sst        immutable sorted tables (higher N = newer)
//! <dir>/NNNNNN.wal        write-ahead log for the active memtable
//! ```
//!
//! The manifest is a small text file: `next <n>`, `wal <n>` and one
//! `sst <n>` line per live table, oldest first. It is replaced with a
//! write-to-temp-then-rename so a crash can never leave a half-written
//! manifest; the WAL covers everything newer than the manifest.

use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use fabric_telemetry::Telemetry;
use parking_lot::RwLock;

use crate::batch::{BatchOp, WriteBatch};
use crate::error::{Error, Result};
use crate::iter::{EntrySource, MergeIter, VecSource};
use crate::memtable::{MemTable, Slot};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::options::Options;
use crate::sstable::{SsEntry, SsTableReader, SsTableWriter};
use crate::wal::{replay, Wal};

#[derive(Debug)]
struct Inner {
    memtable: MemTable,
    /// Live tables, oldest first (later entries shadow earlier ones).
    tables: Vec<Arc<SsTableReader>>,
    /// File numbers matching `tables` (for manifest rewrites).
    table_nums: Vec<u64>,
    wal: Wal,
    wal_num: u64,
    next_file: u64,
}

/// An embedded, ordered, persistent key-value store.
///
/// Thread-safe: reads take a shared lock, writes an exclusive one. All keys
/// and values are arbitrary byte strings; iteration order is lexicographic
/// on the raw bytes.
pub struct KvStore {
    dir: PathBuf,
    options: Options,
    inner: RwLock<Inner>,
    metrics: Metrics,
    tel: Telemetry,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore").field("dir", &self.dir).finish()
    }
}

fn sst_path(dir: &Path, num: u64) -> PathBuf {
    dir.join(format!("{num:06}.sst"))
}

fn wal_path(dir: &Path, num: u64) -> PathBuf {
    dir.join(format!("{num:06}.wal"))
}

impl KvStore {
    /// Open (or create) a store in `dir`.
    pub fn open(dir: impl Into<PathBuf>, options: Options) -> Result<Self> {
        Self::open_with_telemetry(dir, options, Telemetry::disabled())
    }

    /// Open (or create) a store in `dir`, recording spans and counters
    /// into `tel` whenever that handle is enabled. The handle is shared:
    /// the ledger passes the same one to every store it owns so a single
    /// `enable()` lights up the whole stack.
    pub fn open_with_telemetry(
        dir: impl Into<PathBuf>,
        options: Options,
        tel: Telemetry,
    ) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("creating store dir {}", dir.display()), e))?;
        let manifest_path = dir.join("MANIFEST");
        let (mut next_file, wal_num, table_nums) = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => Self::parse_manifest(&manifest_path, &text)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (1, 0, Vec::new()),
            Err(e) => return Err(Error::io("reading manifest".to_string(), e)),
        };
        let mut tables = Vec::with_capacity(table_nums.len());
        for &num in &table_nums {
            tables.push(SsTableReader::open(sst_path(&dir, num))?);
        }
        // Replay the WAL (if any) into a fresh memtable, then continue
        // appending to a new WAL so replay is idempotent across crashes
        // during open.
        let mut memtable = MemTable::new();
        let old_wal = wal_path(&dir, wal_num);
        for record in replay(&old_wal)? {
            let batch = WriteBatch::decode(&record)?;
            Self::apply_to_memtable(&mut memtable, batch);
        }
        let new_wal_num = next_file;
        next_file += 1;
        let mut wal = Wal::create(wal_path(&dir, new_wal_num), options.sync_wal)?;
        // Re-log replayed entries so the old WAL can be dropped.
        if !memtable.is_empty() {
            let mut batch = WriteBatch::new();
            for (k, slot) in memtable.iter() {
                match slot {
                    Slot::Value(v) => batch.put(k.clone(), v.clone()),
                    Slot::Tombstone => batch.delete(k.clone()),
                };
            }
            wal.append(&batch.encode())?;
        }
        let store = KvStore {
            dir: dir.clone(),
            options,
            inner: RwLock::new(Inner {
                memtable,
                tables,
                table_nums,
                wal,
                wal_num: new_wal_num,
                next_file,
            }),
            metrics: Metrics::default(),
            tel,
        };
        store.write_manifest(&store.inner.read())?;
        if old_wal.exists() && old_wal != wal_path(&dir, new_wal_num) {
            let _ = std::fs::remove_file(old_wal);
        }
        Ok(store)
    }

    fn parse_manifest(path: &Path, text: &str) -> Result<(u64, u64, Vec<u64>)> {
        let mut next_file = 1u64;
        let mut wal_num = 0u64;
        let mut table_nums = Vec::new();
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let (Some(kind), Some(num)) = (parts.next(), parts.next()) else {
                continue;
            };
            let num: u64 = num
                .parse()
                .map_err(|_| Error::corruption(path, format!("bad manifest line: {line}")))?;
            match kind {
                "next" => next_file = num,
                "wal" => wal_num = num,
                "sst" => table_nums.push(num),
                other => {
                    return Err(Error::corruption(
                        path,
                        format!("unknown manifest entry: {other}"),
                    ))
                }
            }
        }
        Ok((next_file, wal_num, table_nums))
    }

    fn write_manifest(&self, inner: &Inner) -> Result<()> {
        let mut text = format!("next {}\nwal {}\n", inner.next_file, inner.wal_num);
        for num in &inner.table_nums {
            text.push_str(&format!("sst {num}\n"));
        }
        let tmp = self.dir.join("MANIFEST.tmp");
        let final_path = self.dir.join("MANIFEST");
        std::fs::write(&tmp, text)
            .and_then(|_| std::fs::rename(&tmp, &final_path))
            .map_err(|e| Error::io("writing manifest".to_string(), e))
    }

    fn apply_to_memtable(memtable: &mut MemTable, batch: WriteBatch) {
        for op in batch.into_ops() {
            match op {
                BatchOp::Put { key, value } => memtable.put(key, value),
                BatchOp::Delete { key } => memtable.delete(key),
            }
        }
    }

    /// Insert or overwrite a single key.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key.into(), value.into());
        self.write(batch)
    }

    /// Delete a single key (idempotent).
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key.into());
        self.write(batch)
    }

    /// Apply a batch atomically: logged as one WAL record, applied to the
    /// memtable under one lock.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let puts = batch
            .iter()
            .filter(|op| matches!(op, BatchOp::Put { .. }))
            .count();
        let dels = batch.len() - puts;
        let mut inner = self.inner.write();
        let bytes = {
            let mut span = self.tel.span("kv.wal.append");
            let bytes = inner.wal.append(&batch.encode())?;
            span.record("bytes", bytes);
            bytes
        };
        Metrics::add(&self.metrics.bytes_wal, bytes);
        if self.options.sync_wal {
            Metrics::incr(&self.metrics.wal_fsyncs);
            self.tel.count("kv.wal.fsyncs", 1);
        }
        Metrics::add(&self.metrics.puts, puts as u64);
        Metrics::add(&self.metrics.deletes, dels as u64);
        Self::apply_to_memtable(&mut inner.memtable, batch);
        if inner.memtable.approx_bytes() >= self.options.memtable_max_bytes {
            self.flush_locked(&mut inner)?;
            if self.options.compaction_trigger > 0
                && inner.tables.len() >= self.options.compaction_trigger
            {
                self.compact_locked(&mut inner)?;
            }
        }
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        Metrics::incr(&self.metrics.gets);
        let inner = self.inner.read();
        if let Some(slot) = inner.memtable.get(key) {
            return Ok(slot.as_value().cloned());
        }
        for table in inner.tables.iter().rev() {
            if table.definitely_absent(key) {
                Metrics::incr(&self.metrics.bloom_negatives);
                self.tel.count("kv.bloom.negatives", 1);
                continue;
            }
            Metrics::incr(&self.metrics.sstable_point_reads);
            let _span = self.tel.span("kv.sstable.read");
            if let Some(slot) = table.get(key)? {
                return Ok(slot.as_value().cloned());
            }
            // The bloom filter (and key-range check) said "maybe", yet the
            // table had no entry: a false positive we paid a data read for.
            Metrics::incr(&self.metrics.bloom_false_positives);
            self.tel.count("kv.bloom.false_positives", 1);
        }
        Ok(None)
    }

    /// Iterate live entries with keys in `[start, end)`.
    ///
    /// The iterator sees a snapshot of the memtable taken now plus the
    /// current set of SSTables; writes performed after this call are not
    /// reflected.
    pub fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<RangeIter> {
        Metrics::incr(&self.metrics.range_scans);
        // An inverted or empty range is a no-op, not a panic (BTreeMap's
        // `range` would panic on start > end).
        let inverted = match (&start, &end) {
            (Bound::Included(s) | Bound::Excluded(s), Bound::Included(e)) => s > e,
            (Bound::Included(s), Bound::Excluded(e)) => s >= e,
            (Bound::Excluded(s), Bound::Excluded(e)) => s >= e,
            _ => false,
        };
        if inverted {
            return Ok(RangeIter {
                merge: MergeIter::new(Vec::new())?,
                start: Bound::Unbounded,
                end: Bound::Unbounded,
                done: true,
            });
        }
        let inner = self.inner.read();
        let mut sources: Vec<Box<dyn EntrySource + Send>> = Vec::new();
        // Memtable snapshot is the newest source.
        let mem_entries: Vec<SsEntry> = inner
            .memtable
            .range(start, Bound::Unbounded)
            .map(|(k, slot)| SsEntry {
                key: k.clone(),
                slot: slot.clone(),
            })
            .collect();
        sources.push(Box::new(VecSource::new(mem_entries)));
        for table in inner.tables.iter().rev() {
            let iter = match start {
                Bound::Included(k) | Bound::Excluded(k) => table.seek(k)?,
                Bound::Unbounded => table.iter()?,
            };
            sources.push(Box::new(iter));
        }
        let start_owned = match start {
            Bound::Included(k) => Bound::Included(Bytes::copy_from_slice(k)),
            Bound::Excluded(k) => Bound::Excluded(Bytes::copy_from_slice(k)),
            Bound::Unbounded => Bound::Unbounded,
        };
        let end_owned = match end {
            Bound::Included(k) => Bound::Included(Bytes::copy_from_slice(k)),
            Bound::Excluded(k) => Bound::Excluded(Bytes::copy_from_slice(k)),
            Bound::Unbounded => Bound::Unbounded,
        };
        Ok(RangeIter {
            merge: MergeIter::new(sources)?,
            start: start_owned,
            end: end_owned,
            done: false,
        })
    }

    /// Iterate live entries whose key starts with `prefix`.
    pub fn prefix(&self, prefix: &[u8]) -> Result<RangeIter> {
        let end = prefix_end(prefix);
        match &end {
            Some(end) => self.range(Bound::Included(prefix), Bound::Excluded(end)),
            None => self.range(Bound::Included(prefix), Bound::Unbounded),
        }
    }

    /// Force the memtable to an SSTable regardless of size.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.write();
        self.flush_locked(&mut inner)
    }

    fn flush_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.memtable.is_empty() {
            return Ok(());
        }
        let mut span = self.tel.span("kv.memtable.flush");
        let num = inner.next_file;
        inner.next_file += 1;
        let path = sst_path(&self.dir, num);
        let mut writer = SsTableWriter::create(
            &path,
            self.options.sparse_index_interval,
            self.options.bloom_bits_per_key,
        )?;
        for (key, slot) in inner.memtable.iter() {
            writer.add(key, slot)?;
        }
        let bytes = writer.finish()?;
        span.record("bytes", bytes);
        Metrics::add(&self.metrics.bytes_flushed, bytes);
        Metrics::incr(&self.metrics.flushes);
        inner.tables.push(SsTableReader::open(&path)?);
        inner.table_nums.push(num);
        inner.memtable = MemTable::new();
        // Rotate the WAL: everything it contained is now durable in the sst.
        let old_wal = wal_path(&self.dir, inner.wal_num);
        let new_wal_num = inner.next_file;
        inner.next_file += 1;
        inner.wal = Wal::create(wal_path(&self.dir, new_wal_num), self.options.sync_wal)?;
        inner.wal_num = new_wal_num;
        self.write_manifest(inner)?;
        let _ = std::fs::remove_file(old_wal);
        Ok(())
    }

    /// Merge every SSTable into one, dropping shadowed versions and
    /// tombstones (safe: a full merge leaves nothing older underneath).
    pub fn compact(&self) -> Result<()> {
        let mut inner = self.inner.write();
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> Result<()> {
        if inner.tables.len() <= 1 {
            return Ok(());
        }
        let mut span = self.tel.span("kv.compaction");
        // Input size: every live table is read in full during the merge.
        let bytes_read: u64 = inner
            .table_nums
            .iter()
            .filter_map(|&n| std::fs::metadata(sst_path(&self.dir, n)).ok())
            .map(|m| m.len())
            .sum();
        Metrics::add(&self.metrics.compaction_bytes_read, bytes_read);
        span.record("bytes_read", bytes_read);
        let num = inner.next_file;
        inner.next_file += 1;
        let path = sst_path(&self.dir, num);
        let mut writer = SsTableWriter::create(
            &path,
            self.options.sparse_index_interval,
            self.options.bloom_bits_per_key,
        )?;
        {
            // Newest-first sources; exclude the memtable (it stays live).
            let sources: Vec<Box<dyn EntrySource + Send>> = inner
                .tables
                .iter()
                .rev()
                .map(|t| t.iter().map(|i| Box::new(i) as Box<dyn EntrySource + Send>))
                .collect::<Result<_>>()?;
            let mut merge = MergeIter::new(sources)?;
            while let Some((key, value)) = merge.next_live()? {
                writer.add(&key, &Slot::Value(value))?;
            }
        }
        let bytes = writer.finish()?;
        span.record("bytes_written", bytes);
        Metrics::add(&self.metrics.bytes_flushed, bytes);
        Metrics::add(&self.metrics.compaction_bytes_written, bytes);
        Metrics::incr(&self.metrics.compactions);
        let old_nums = std::mem::take(&mut inner.table_nums);
        inner.tables = vec![SsTableReader::open(&path)?];
        inner.table_nums = vec![num];
        self.write_manifest(inner)?;
        for old in old_nums {
            let _ = std::fs::remove_file(sst_path(&self.dir, old));
        }
        Ok(())
    }

    /// Write a consistent checkpoint of the store into `dest` (which must
    /// not already contain a store). The checkpoint is a fully openable
    /// copy: the memtable is flushed first, then the live SSTables and a
    /// fresh manifest are copied under the write lock, so no concurrent
    /// writer can interleave.
    pub fn checkpoint(&self, dest: impl Into<PathBuf>) -> Result<()> {
        let dest = dest.into();
        std::fs::create_dir_all(&dest)
            .map_err(|e| Error::io(format!("creating checkpoint dir {}", dest.display()), e))?;
        if dest.join("MANIFEST").exists() {
            return Err(Error::InvalidArgument(format!(
                "checkpoint destination {} already holds a store",
                dest.display()
            )));
        }
        let mut inner = self.inner.write();
        self.flush_locked(&mut inner)?;
        let mut text = format!("next {}\nwal 0\n", inner.next_file);
        for (num, _table) in inner.table_nums.iter().zip(&inner.tables) {
            let name = format!("{num:06}.sst");
            std::fs::copy(sst_path(&self.dir, *num), dest.join(&name))
                .map_err(|e| Error::io(format!("copying {name} to checkpoint"), e))?;
            text.push_str(&format!("sst {num}\n"));
        }
        let tmp = dest.join("MANIFEST.tmp");
        std::fs::write(&tmp, text)
            .and_then(|_| std::fs::rename(&tmp, dest.join("MANIFEST")))
            .map_err(|e| Error::io("writing checkpoint manifest".to_string(), e))?;
        Ok(())
    }

    /// Number of live SSTables (diagnostics / tests).
    pub fn table_count(&self) -> usize {
        self.inner.read().tables.len()
    }

    /// Point-in-time occupancy numbers for live-metrics surfaces
    /// (`/metrics` gauges): SSTable count, bytes appended to the current
    /// WAL, and memtable entries/bytes. One shared read lock, no I/O.
    pub fn storage_stats(&self) -> StorageStats {
        let inner = self.inner.read();
        StorageStats {
            sstables: inner.tables.len() as u64,
            wal_bytes: inner.wal.bytes_written(),
            memtable_entries: inner.memtable.len() as u64,
            memtable_bytes: inner.memtable.approx_bytes() as u64,
        }
    }

    /// Snapshot of the operation counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The telemetry handle this store records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Point-in-time storage occupancy (see [`KvStore::storage_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Live SSTables backing the store.
    pub sstables: u64,
    /// Bytes appended to the current write-ahead log.
    pub wal_bytes: u64,
    /// Entries (values + tombstones) in the active memtable.
    pub memtable_entries: u64,
    /// Approximate bytes held by the active memtable.
    pub memtable_bytes: u64,
}

/// Smallest byte string strictly greater than every string with `prefix`.
/// `None` when the prefix is all `0xFF` (no upper bound exists).
pub fn prefix_end(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(end);
        }
        end.pop();
    }
    None
}

/// Snapshot iterator over a key range; yields live `(key, value)` pairs in
/// ascending key order.
pub struct RangeIter {
    merge: MergeIter,
    start: Bound<Bytes>,
    end: Bound<Bytes>,
    done: bool,
}

impl RangeIter {
    fn within_start(&self, key: &[u8]) -> bool {
        match &self.start {
            Bound::Included(s) => key >= &s[..],
            Bound::Excluded(s) => key > &s[..],
            Bound::Unbounded => true,
        }
    }

    fn within_end(&self, key: &[u8]) -> bool {
        match &self.end {
            Bound::Included(e) => key <= &e[..],
            Bound::Excluded(e) => key < &e[..],
            Bound::Unbounded => true,
        }
    }

    /// Next pair, or `None` at the end of the range.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        if self.done {
            return Ok(None);
        }
        while let Some((key, value)) = self.merge.next_live()? {
            if !self.within_start(&key) {
                continue; // sstable seek may land slightly before start
            }
            if !self.within_end(&key) {
                self.done = true;
                return Ok(None);
            }
            return Ok(Some((key, value)));
        }
        self.done = true;
        Ok(None)
    }

    /// Drain the iterator into a vector (convenience for tests/queries).
    pub fn collect_all(mut self) -> Result<Vec<(Bytes, Bytes)>> {
        let mut out = Vec::new();
        while let Some(pair) = self.next()? {
            out.push(pair);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "kvstore-test-{}-{tag}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn open(dir: &TempDir) -> KvStore {
        KvStore::open(&dir.0, Options::small_for_tests()).unwrap()
    }

    #[test]
    fn put_get_delete() {
        let dir = TempDir::new("pgd");
        let db = open(&dir);
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        assert_eq!(db.get(b"k").unwrap().unwrap(), &b"v"[..]);
        db.delete(&b"k"[..]).unwrap();
        assert!(db.get(b"k").unwrap().is_none());
        assert!(db.get(b"never").unwrap().is_none());
    }

    #[test]
    fn survives_reopen_via_wal() {
        let dir = TempDir::new("wal-reopen");
        {
            let db = open(&dir);
            db.put(&b"persist"[..], &b"me"[..]).unwrap();
        }
        let db = open(&dir);
        assert_eq!(db.get(b"persist").unwrap().unwrap(), &b"me"[..]);
    }

    #[test]
    fn survives_reopen_via_sstables() {
        let dir = TempDir::new("sst-reopen");
        {
            let db = open(&dir);
            for i in 0..200 {
                db.put(format!("key{i:04}"), format!("val{i}")).unwrap();
            }
            db.flush().unwrap();
        }
        let db = open(&dir);
        assert_eq!(db.get(b"key0123").unwrap().unwrap(), &b"val123"[..]);
        assert!(db.table_count() >= 1);
    }

    #[test]
    fn storage_stats_tracks_occupancy() {
        let dir = TempDir::new("storage-stats");
        let db = open(&dir);
        assert_eq!(db.storage_stats(), StorageStats::default());
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        let s = db.storage_stats();
        assert_eq!(s.memtable_entries, 1);
        assert!(s.memtable_bytes > 0);
        assert!(s.wal_bytes > 0);
        assert_eq!(s.sstables, 0);
        db.flush().unwrap();
        let s = db.storage_stats();
        assert_eq!(s.memtable_entries, 0);
        assert_eq!(s.sstables, 1);
    }

    #[test]
    fn flush_triggers_automatically() {
        let dir = TempDir::new("autoflush");
        let db = open(&dir); // memtable_max_bytes = 1024
        for i in 0..100 {
            db.put(format!("key-{i:05}"), "x".repeat(50)).unwrap();
        }
        assert!(db.metrics().flushes > 0, "expected automatic flushes");
        for i in 0..100 {
            let k = format!("key-{i:05}");
            assert_eq!(db.get(k.as_bytes()).unwrap().unwrap(), "x".repeat(50));
        }
    }

    #[test]
    fn compaction_reduces_table_count_and_preserves_data() {
        let dir = TempDir::new("compact");
        let db = open(&dir);
        for round in 0..5 {
            for i in 0..20 {
                db.put(format!("key{i:03}"), format!("round{round}"))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact().unwrap();
        assert_eq!(db.table_count(), 1);
        for i in 0..20 {
            let k = format!("key{i:03}");
            assert_eq!(db.get(k.as_bytes()).unwrap().unwrap(), &b"round4"[..]);
        }
    }

    #[test]
    fn compaction_drops_tombstones() {
        let dir = TempDir::new("compact-tomb");
        let db = open(&dir);
        db.put(&b"dead"[..], &b"v"[..]).unwrap();
        db.flush().unwrap();
        db.delete(&b"dead"[..]).unwrap();
        db.put(&b"live"[..], &b"v"[..]).unwrap();
        db.flush().unwrap();
        db.compact().unwrap();
        assert!(db.get(b"dead").unwrap().is_none());
        assert_eq!(db.get(b"live").unwrap().unwrap(), &b"v"[..]);
        // After compaction the single table should hold exactly one entry.
        assert_eq!(db.table_count(), 1);
    }

    #[test]
    fn range_scan_merges_all_levels() {
        let dir = TempDir::new("range");
        let db = open(&dir);
        db.put(&b"a"[..], &b"old"[..]).unwrap();
        db.put(&b"c"[..], &b"1"[..]).unwrap();
        db.flush().unwrap();
        db.put(&b"a"[..], &b"new"[..]).unwrap(); // shadows sstable version
        db.put(&b"b"[..], &b"2"[..]).unwrap(); // memtable only
        let got = db
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect_all()
            .unwrap();
        let got: Vec<(String, String)> = got
            .into_iter()
            .map(|(k, v)| {
                (
                    String::from_utf8(k.to_vec()).unwrap(),
                    String::from_utf8(v.to_vec()).unwrap(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".into(), "new".into()),
                ("b".into(), "2".into()),
                ("c".into(), "1".into())
            ]
        );
    }

    #[test]
    fn range_scan_respects_bounds() {
        let dir = TempDir::new("range-bounds");
        let db = open(&dir);
        for k in ["a", "b", "c", "d", "e"] {
            db.put(k.as_bytes().to_vec(), &b"v"[..]).unwrap();
        }
        let got = db
            .range(Bound::Excluded(&b"a"[..]), Bound::Included(&b"d"[..]))
            .unwrap()
            .collect_all()
            .unwrap();
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| &k[..]).collect();
        assert_eq!(keys, vec![b"b", b"c", b"d"]);
    }

    #[test]
    fn range_scan_skips_deleted() {
        let dir = TempDir::new("range-del");
        let db = open(&dir);
        db.put(&b"a"[..], &b"1"[..]).unwrap();
        db.put(&b"b"[..], &b"2"[..]).unwrap();
        db.flush().unwrap();
        db.delete(&b"a"[..]).unwrap();
        let got = db
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].0[..], b"b");
    }

    #[test]
    fn prefix_scan() {
        let dir = TempDir::new("prefix");
        let db = open(&dir);
        for k in ["app:1", "app:2", "apple", "b:1"] {
            db.put(k.as_bytes().to_vec(), &b"v"[..]).unwrap();
        }
        let got = db.prefix(b"app:").unwrap().collect_all().unwrap();
        assert_eq!(got.len(), 2);
        let got = db.prefix(b"app").unwrap().collect_all().unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn prefix_end_edge_cases() {
        assert_eq!(prefix_end(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_end(b"ab\xff"), Some(b"ac".to_vec()));
        assert_eq!(prefix_end(b"\xff\xff"), None);
        assert_eq!(prefix_end(b""), None);
    }

    #[test]
    fn atomic_batch_applies_all_or_nothing() {
        let dir = TempDir::new("batch");
        let db = open(&dir);
        db.put(&b"x"[..], &b"old"[..]).unwrap();
        let mut batch = WriteBatch::new();
        batch
            .put(&b"x"[..], &b"new"[..])
            .put(&b"y"[..], &b"1"[..])
            .delete(&b"x"[..]);
        db.write(batch).unwrap();
        // Ops apply in order: final state of x is deleted.
        assert!(db.get(b"x").unwrap().is_none());
        assert_eq!(db.get(b"y").unwrap().unwrap(), &b"1"[..]);
    }

    #[test]
    fn reopen_after_flush_and_more_writes() {
        let dir = TempDir::new("mixed-reopen");
        {
            let db = open(&dir);
            db.put(&b"in-sst"[..], &b"1"[..]).unwrap();
            db.flush().unwrap();
            db.put(&b"in-wal"[..], &b"2"[..]).unwrap();
        }
        let db = open(&dir);
        assert_eq!(db.get(b"in-sst").unwrap().unwrap(), &b"1"[..]);
        assert_eq!(db.get(b"in-wal").unwrap().unwrap(), &b"2"[..]);
    }

    #[test]
    fn delete_of_flushed_key_survives_reopen() {
        let dir = TempDir::new("tomb-reopen");
        {
            let db = open(&dir);
            db.put(&b"k"[..], &b"v"[..]).unwrap();
            db.flush().unwrap();
            db.delete(&b"k"[..]).unwrap();
        }
        let db = open(&dir);
        assert!(db.get(b"k").unwrap().is_none());
    }

    #[test]
    fn empty_batch_is_noop() {
        let dir = TempDir::new("empty-batch");
        let db = open(&dir);
        db.write(WriteBatch::new()).unwrap();
        assert_eq!(db.metrics().puts, 0);
    }

    #[test]
    fn metrics_track_operations() {
        let dir = TempDir::new("metrics");
        let db = open(&dir);
        db.put(&b"a"[..], &b"1"[..]).unwrap();
        db.get(b"a").unwrap();
        db.get(b"missing").unwrap();
        db.delete(&b"a"[..]).unwrap();
        let m = db.metrics();
        assert_eq!(m.puts, 1);
        assert_eq!(m.gets, 2);
        assert_eq!(m.deletes, 1);
        assert!(m.bytes_wal > 0);
    }

    #[test]
    fn bloom_false_positives_are_counted() {
        let dir = TempDir::new("bloom-fp");
        // Blooms disabled: every in-range probe of a missing key is a
        // deterministic "maybe" that misses — exactly the false-positive
        // accounting path.
        let mut opts = Options::small_for_tests();
        opts.bloom_bits_per_key = 0;
        let db = KvStore::open(&dir.0, opts).unwrap();
        db.put(&b"aaa"[..], &b"1"[..]).unwrap();
        db.put(&b"zzz"[..], &b"2"[..]).unwrap();
        db.flush().unwrap();
        db.get(b"mmm").unwrap(); // inside [aaa, zzz], not present
        let m = db.metrics();
        assert_eq!(m.bloom_false_positives, 1);
        assert_eq!(m.sstable_point_reads, 1);
        db.get(b"aaa").unwrap(); // present: a true positive, not counted
        assert_eq!(db.metrics().bloom_false_positives, 1);
    }

    #[test]
    fn wal_fsyncs_are_counted_when_sync_enabled() {
        let dir = TempDir::new("wal-fsync");
        let mut opts = Options::small_for_tests();
        opts.sync_wal = true;
        let db = KvStore::open(&dir.0, opts).unwrap();
        db.put(&b"a"[..], &b"1"[..]).unwrap();
        db.put(&b"b"[..], &b"2"[..]).unwrap();
        assert_eq!(db.metrics().wal_fsyncs, 2);

        let dir2 = TempDir::new("wal-nosync");
        let db2 = open(&dir2); // sync_wal = false
        db2.put(&b"a"[..], &b"1"[..]).unwrap();
        assert_eq!(db2.metrics().wal_fsyncs, 0);
    }

    #[test]
    fn compaction_byte_counters_track_inputs_and_outputs() {
        let dir = TempDir::new("compact-bytes");
        let db = open(&dir);
        for round in 0..3 {
            for i in 0..20 {
                db.put(format!("key{i:03}"), format!("round{round}"))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        assert_eq!(db.metrics().compaction_bytes_read, 0);
        db.compact().unwrap();
        let m = db.metrics();
        assert!(m.compaction_bytes_read > 0, "inputs were read");
        assert!(
            m.compaction_bytes_written > 0,
            "an output table was written"
        );
        // Shadowed versions are dropped, so the output is smaller than the
        // three overlapping inputs combined.
        assert!(m.compaction_bytes_written < m.compaction_bytes_read);
    }

    #[test]
    fn telemetry_spans_cover_write_flush_compact() {
        let dir = TempDir::new("telemetry");
        let tel = fabric_telemetry::Telemetry::enabled();
        let db =
            KvStore::open_with_telemetry(&dir.0, Options::small_for_tests(), tel.clone()).unwrap();
        for round in 0..2 {
            for i in 0..40 {
                db.put(
                    format!("key{i:03}"),
                    format!("round{round}-{}", "x".repeat(20)),
                )
                .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact().unwrap();
        db.get(b"key001").unwrap();
        let spans = tel.drain_spans();
        let names: std::collections::HashSet<&str> = spans.iter().map(|s| s.name).collect();
        for expected in [
            "kv.wal.append",
            "kv.memtable.flush",
            "kv.compaction",
            "kv.sstable.read",
        ] {
            assert!(names.contains(expected), "missing span {expected}");
        }
        // Auto-compaction may fire during the writes too, so compare the
        // sum over every compaction span against the cumulative counters.
        let read: u64 = spans
            .iter()
            .filter(|s| s.name == "kv.compaction")
            .filter_map(|s| s.metric("bytes_read"))
            .sum();
        let written: u64 = spans
            .iter()
            .filter(|s| s.name == "kv.compaction")
            .filter_map(|s| s.metric("bytes_written"))
            .sum();
        assert_eq!(read, db.metrics().compaction_bytes_read);
        assert_eq!(written, db.metrics().compaction_bytes_written);
    }

    #[test]
    fn disabled_telemetry_records_nothing_by_default() {
        let dir = TempDir::new("telemetry-off");
        let db = open(&dir);
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        db.flush().unwrap();
        assert!(!db.telemetry().is_enabled());
        assert!(db.telemetry().drain_spans().is_empty());
    }

    #[test]
    fn checkpoint_is_openable_and_frozen() {
        let dir = TempDir::new("ckpt-src");
        let dest = TempDir::new("ckpt-dst");
        let ckpt_dir = dest.0.join("snap");
        let db = open(&dir);
        for i in 0..50 {
            db.put(format!("key{i:03}"), format!("v{i}")).unwrap();
        }
        db.flush().unwrap();
        db.put(&b"unflushed"[..], &b"in-memtable"[..]).unwrap();
        db.checkpoint(&ckpt_dir).unwrap();
        // Mutate the original afterwards.
        db.put(&b"key000"[..], &b"MUTATED"[..]).unwrap();
        db.delete(&b"key001"[..]).unwrap();
        // The checkpoint preserves the moment-of-checkpoint state,
        // including what was only in the memtable.
        let snap = KvStore::open(&ckpt_dir, Options::small_for_tests()).unwrap();
        assert_eq!(snap.get(b"key000").unwrap().unwrap(), &b"v0"[..]);
        assert_eq!(snap.get(b"key001").unwrap().unwrap(), &b"v1"[..]);
        assert_eq!(
            snap.get(b"unflushed").unwrap().unwrap(),
            &b"in-memtable"[..]
        );
        // And the original kept its mutations.
        assert_eq!(db.get(b"key000").unwrap().unwrap(), &b"MUTATED"[..]);
    }

    #[test]
    fn checkpoint_refuses_existing_store() {
        let dir = TempDir::new("ckpt-refuse");
        let db = open(&dir);
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        let dest = dir.0.join("snap");
        db.checkpoint(&dest).unwrap();
        assert!(
            db.checkpoint(&dest).is_err(),
            "second checkpoint must refuse"
        );
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let dir = TempDir::new("concurrent");
        let db = std::sync::Arc::new(KvStore::open(&dir.0, Options::default()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    let key = format!("t{t}-k{i}");
                    db.put(key.clone(), format!("v{i}")).unwrap();
                    assert_eq!(db.get(key.as_bytes()).unwrap().unwrap(), format!("v{i}"));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4 {
            for i in 0..250 {
                let key = format!("t{t}-k{i}");
                assert!(db.get(key.as_bytes()).unwrap().is_some(), "{key} missing");
            }
        }
    }
}
