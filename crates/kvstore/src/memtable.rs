//! In-memory sorted write buffer.

use std::collections::BTreeMap;
use std::ops::Bound;

use bytes::Bytes;

/// A value slot: either a live value or a tombstone shadowing older data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Slot {
    /// A live value.
    Value(Bytes),
    /// A deletion marker. Must be retained until compaction proves no older
    /// version of the key exists anywhere below.
    Tombstone,
}

impl Slot {
    /// The live value, if any.
    pub fn as_value(&self) -> Option<&Bytes> {
        match self {
            Slot::Value(v) => Some(v),
            Slot::Tombstone => None,
        }
    }

    /// `true` for tombstones.
    pub fn is_tombstone(&self) -> bool {
        matches!(self, Slot::Tombstone)
    }
}

/// Sorted in-memory buffer of the most recent writes.
///
/// Later writes to the same key replace earlier ones (the store's visible
/// semantics are last-write-wins; historical versions live in the ledger
/// layer above, not here).
#[derive(Debug, Default)]
pub struct MemTable {
    entries: BTreeMap<Bytes, Slot>,
    approx_bytes: usize,
}

/// Fixed per-entry overhead charged in addition to key/value bytes.
const ENTRY_OVERHEAD: usize = 32;

impl MemTable {
    /// Create an empty memtable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or overwrite `key`.
    pub fn put(&mut self, key: Bytes, value: Bytes) {
        self.charge(&key, value.len());
        self.entries.insert(key, Slot::Value(value));
    }

    /// Write a tombstone for `key`.
    pub fn delete(&mut self, key: Bytes) {
        self.charge(&key, 0);
        self.entries.insert(key, Slot::Tombstone);
    }

    fn charge(&mut self, key: &Bytes, value_len: usize) {
        let new_cost = key.len() + value_len + ENTRY_OVERHEAD;
        let old_cost = self
            .entries
            .get(key)
            .map(|slot| key.len() + slot.as_value().map_or(0, Bytes::len) + ENTRY_OVERHEAD)
            .unwrap_or(0);
        self.approx_bytes = self.approx_bytes + new_cost - old_cost;
    }

    /// Look up `key`. `Some(Slot::Tombstone)` means "definitely deleted here";
    /// `None` means "not present at this level, consult older data".
    pub fn get(&self, key: &[u8]) -> Option<&Slot> {
        self.entries.get(key)
    }

    /// Number of distinct keys (including tombstoned ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate heap footprint used for flush triggering.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterate entries within `[start, end)` bounds in key order.
    pub fn range<'a>(
        &'a self,
        start: Bound<&[u8]>,
        end: Bound<&[u8]>,
    ) -> impl Iterator<Item = (&'a Bytes, &'a Slot)> + 'a {
        let map_bound = |b: Bound<&[u8]>| match b {
            Bound::Included(k) => Bound::Included(Bytes::copy_from_slice(k)),
            Bound::Excluded(k) => Bound::Excluded(Bytes::copy_from_slice(k)),
            Bound::Unbounded => Bound::Unbounded,
        };
        self.entries.range((map_bound(start), map_bound(end)))
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Slot)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn put_get_overwrite() {
        let mut mt = MemTable::new();
        mt.put(b("k"), b("v1"));
        mt.put(b("k"), b("v2"));
        assert_eq!(mt.get(b"k").unwrap().as_value().unwrap(), &b("v2"));
        assert_eq!(mt.len(), 1);
    }

    #[test]
    fn delete_leaves_tombstone() {
        let mut mt = MemTable::new();
        mt.put(b("k"), b("v"));
        mt.delete(b("k"));
        assert!(mt.get(b"k").unwrap().is_tombstone());
        assert!(mt.get(b"absent").is_none());
    }

    #[test]
    fn size_accounting_grows_and_stabilises() {
        let mut mt = MemTable::new();
        assert_eq!(mt.approx_bytes(), 0);
        mt.put(b("key"), b("value"));
        let after_one = mt.approx_bytes();
        assert!(after_one >= 8);
        // Overwriting with the same-size value should not grow the estimate.
        mt.put(b("key"), b("eulav"));
        assert_eq!(mt.approx_bytes(), after_one);
        // Overwriting with a larger value grows it by exactly the delta.
        mt.put(b("key"), b("a much larger value"));
        assert_eq!(
            mt.approx_bytes(),
            after_one + "a much larger value".len() - 5
        );
    }

    #[test]
    fn size_accounting_for_tombstone_overwrite() {
        let mut mt = MemTable::new();
        mt.put(b("key"), b("0123456789"));
        let with_value = mt.approx_bytes();
        mt.delete(b("key"));
        assert_eq!(mt.approx_bytes(), with_value - 10);
    }

    #[test]
    fn range_respects_bounds() {
        let mut mt = MemTable::new();
        for k in ["a", "b", "c", "d"] {
            mt.put(b(k), b("v"));
        }
        let keys: Vec<_> = mt
            .range(Bound::Included(b"b"), Bound::Excluded(b"d"))
            .map(|(k, _)| k.clone())
            .collect();
        assert_eq!(keys, vec![b("b"), b("c")]);
    }

    #[test]
    fn iter_is_sorted() {
        let mut mt = MemTable::new();
        for k in ["zeta", "alpha", "mid"] {
            mt.put(b(k), b("v"));
        }
        let keys: Vec<_> = mt.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("alpha"), b("mid"), b("zeta")]);
    }
}
