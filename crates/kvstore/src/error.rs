//! Error types for the key-value store.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by [`crate::KvStore`] operations.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O operation failed.
    Io {
        /// What the store was doing when the failure occurred.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// Persistent data failed a checksum or structural validation.
    Corruption {
        /// File in which the corruption was detected.
        file: PathBuf,
        /// Human-readable description of what failed to validate.
        detail: String,
    },
    /// The caller passed an argument the store cannot honour.
    InvalidArgument(String),
    /// The store has been closed and can no longer serve requests.
    Closed,
}

impl Error {
    pub(crate) fn io(context: impl Into<String>, source: io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    pub(crate) fn corruption(file: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        Error::Corruption {
            file: file.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io { context, source } => write!(f, "i/o error while {context}: {source}"),
            Error::Corruption { file, detail } => {
                write!(f, "corruption in {}: {detail}", file.display())
            }
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::Closed => write!(f, "store is closed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io_includes_context() {
        let err = Error::io("writing wal", io::Error::other("disk full"));
        let msg = err.to_string();
        assert!(msg.contains("writing wal"), "{msg}");
        assert!(msg.contains("disk full"), "{msg}");
    }

    #[test]
    fn display_corruption_includes_file() {
        let err = Error::corruption("/tmp/000001.sst", "bad magic");
        let msg = err.to_string();
        assert!(msg.contains("000001.sst"), "{msg}");
        assert!(msg.contains("bad magic"), "{msg}");
    }

    #[test]
    fn error_source_is_preserved_for_io() {
        let err = Error::io("x", io::Error::other("inner"));
        assert!(std::error::Error::source(&err).is_some());
        let err = Error::InvalidArgument("x".into());
        assert!(std::error::Error::source(&err).is_none());
    }
}
