//! # fabric-kvstore
//!
//! An embedded, ordered, persistent key-value store in the LevelDB family,
//! built from scratch for the `temporal-fabric` workspace. It plays the role
//! LevelDB plays inside a Hyperledger Fabric peer: the **state database**
//! (current state of every key), the **history index** and the **block
//! location index** are all hosted on instances of this store.
//!
//! ## Architecture
//!
//! * Writes go to a CRC-framed [write-ahead log](wal) and a sorted in-memory
//!   [`memtable`].
//! * When the memtable exceeds [`Options::memtable_max_bytes`] it is flushed
//!   to an immutable [SSTable](sstable) with a sparse index, a bloom filter
//!   and per-region checksums.
//! * Reads consult the memtable, then SSTables newest-first; bloom filters
//!   and min/max key fences prune tables that cannot contain the key.
//! * Range scans [merge](iter) all levels, newest version wins.
//! * A full-merge [compaction](store::KvStore::compact) folds all tables
//!   into one, dropping shadowed versions and tombstones.
//!
//! ## Example
//!
//! ```
//! use fabric_kvstore::{KvStore, Options};
//!
//! let dir = std::env::temp_dir().join(format!("kv-doc-{}", std::process::id()));
//! let db = KvStore::open(&dir, Options::default())?;
//! db.put(&b"ship:1"[..], &b"container-9"[..])?;
//! db.put(&b"ship:2"[..], &b"container-4"[..])?;
//! assert_eq!(db.get(b"ship:1")?.unwrap(), &b"container-9"[..]);
//!
//! let mut iter = db.prefix(b"ship:")?;
//! let mut n = 0;
//! while let Some((_k, _v)) = iter.next()? {
//!     n += 1;
//! }
//! assert_eq!(n, 2);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), fabric_kvstore::Error>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod batch;
pub mod bloom;
pub mod crc32;
pub mod engine;
pub mod error;
pub mod iter;
pub mod memtable;
pub mod metrics;
pub mod options;
pub mod sstable;
pub mod store;
pub mod vlog;
pub mod wal;

pub use batch::{BatchOp, WriteBatch};
pub use engine::{
    detect_backend, open_engine, EngineIter, SharedEngine, StorageEngine, ENGINE_MARKER,
};
pub use error::{Error, Result};
pub use memtable::Slot;
pub use metrics::MetricsSnapshot;
pub use options::{Backend, Options};
pub use store::{prefix_end, KvStore, RangeIter, StorageStats};
pub use vlog::{LogRangeIter, LogStore};
