//! Merged iteration across the memtable and SSTables.
//!
//! Sources are ordered by *precedence*: index 0 is the newest (the memtable
//! snapshot), higher indices are progressively older SSTables. When several
//! sources yield the same key, the lowest-precedence-index version wins and
//! the older ones are skipped — this is how overwrites and tombstones shadow
//! older data without any sequence numbers in the file format.

use bytes::Bytes;

use crate::error::Result;
use crate::memtable::Slot;
use crate::sstable::{SsEntry, SsTableIter};

/// Anything that yields `(key, slot)` entries in strictly ascending key
/// order.
pub trait EntrySource {
    /// Next entry or `None` when exhausted.
    fn next_entry(&mut self) -> Result<Option<SsEntry>>;
}

impl EntrySource for SsTableIter {
    fn next_entry(&mut self) -> Result<Option<SsEntry>> {
        SsTableIter::next_entry(self)
    }
}

/// A source backed by an in-memory, already-sorted vector (used for
/// memtable snapshots).
#[derive(Debug)]
pub struct VecSource {
    entries: std::vec::IntoIter<SsEntry>,
}

impl VecSource {
    /// Wrap `entries`, which must already be sorted by key ascending.
    pub fn new(entries: Vec<SsEntry>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].key < w[1].key));
        VecSource {
            entries: entries.into_iter(),
        }
    }
}

impl EntrySource for VecSource {
    fn next_entry(&mut self) -> Result<Option<SsEntry>> {
        Ok(self.entries.next())
    }
}

/// K-way merge over precedence-ordered sources.
///
/// Yields each key at most once (the newest version), *including*
/// tombstones — compaction needs to see them. User-facing iterators filter
/// tombstones via [`MergeIter::next_live`].
pub struct MergeIter {
    /// `heads[i]` is the peeked next entry of source `i`.
    heads: Vec<Option<SsEntry>>,
    sources: Vec<Box<dyn EntrySource + Send>>,
}

impl MergeIter {
    /// Build a merge over `sources`, newest first.
    pub fn new(sources: Vec<Box<dyn EntrySource + Send>>) -> Result<Self> {
        let mut iter = MergeIter {
            heads: Vec::with_capacity(sources.len()),
            sources,
        };
        for i in 0..iter.sources.len() {
            let head = iter.sources[i].next_entry()?;
            iter.heads.push(head);
        }
        Ok(iter)
    }

    /// Next (newest-version) entry, tombstones included.
    pub fn next_merged(&mut self) -> Result<Option<SsEntry>> {
        // Find the smallest key among heads; ties resolved by lowest index.
        let mut winner: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            let Some(entry) = head else { continue };
            match winner {
                None => winner = Some(i),
                Some(w) => {
                    if entry.key < self.heads[w].as_ref().unwrap().key {
                        winner = Some(i);
                    }
                }
            }
        }
        let Some(w) = winner else { return Ok(None) };
        let entry = self.heads[w].take().unwrap();
        // Advance the winning source and every source holding the same key.
        self.heads[w] = self.sources[w].next_entry()?;
        for i in 0..self.heads.len() {
            while let Some(h) = &self.heads[i] {
                if h.key == entry.key {
                    self.heads[i] = self.sources[i].next_entry()?;
                } else {
                    break;
                }
            }
        }
        Ok(Some(entry))
    }

    /// Next live entry: skips tombstones.
    pub fn next_live(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        while let Some(entry) = self.next_merged()? {
            if let Slot::Value(v) = entry.slot {
                return Ok(Some((entry.key, v)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(entries: &[(&str, Option<&str>)]) -> Box<dyn EntrySource + Send> {
        Box::new(VecSource::new(
            entries
                .iter()
                .map(|(k, v)| SsEntry {
                    key: Bytes::copy_from_slice(k.as_bytes()),
                    slot: match v {
                        Some(v) => Slot::Value(Bytes::copy_from_slice(v.as_bytes())),
                        None => Slot::Tombstone,
                    },
                })
                .collect(),
        ))
    }

    fn collect_live(mut m: MergeIter) -> Vec<(String, String)> {
        let mut out = Vec::new();
        while let Some((k, v)) = m.next_live().unwrap() {
            out.push((
                String::from_utf8(k.to_vec()).unwrap(),
                String::from_utf8(v.to_vec()).unwrap(),
            ));
        }
        out
    }

    #[test]
    fn merges_disjoint_sources_in_order() {
        let m = MergeIter::new(vec![
            src(&[("b", Some("2")), ("d", Some("4"))]),
            src(&[("a", Some("1")), ("c", Some("3"))]),
        ])
        .unwrap();
        let got = collect_live(m);
        assert_eq!(
            got,
            vec![
                ("a".into(), "1".into()),
                ("b".into(), "2".into()),
                ("c".into(), "3".into()),
                ("d".into(), "4".into())
            ]
        );
    }

    #[test]
    fn newer_source_shadows_older() {
        let m =
            MergeIter::new(vec![src(&[("k", Some("new"))]), src(&[("k", Some("old"))])]).unwrap();
        assert_eq!(collect_live(m), vec![("k".into(), "new".into())]);
    }

    #[test]
    fn tombstone_shadows_older_value() {
        let m = MergeIter::new(vec![
            src(&[("k", None)]),
            src(&[("k", Some("old")), ("l", Some("live"))]),
        ])
        .unwrap();
        assert_eq!(collect_live(m), vec![("l".into(), "live".into())]);
    }

    #[test]
    fn next_merged_exposes_tombstones() {
        let mut m = MergeIter::new(vec![src(&[("k", None)])]).unwrap();
        let e = m.next_merged().unwrap().unwrap();
        assert!(e.slot.is_tombstone());
        assert!(m.next_merged().unwrap().is_none());
    }

    #[test]
    fn triple_source_same_key() {
        let m = MergeIter::new(vec![
            src(&[("k", Some("v2"))]),
            src(&[("k", Some("v1"))]),
            src(&[("k", Some("v0")), ("z", Some("zz"))]),
        ])
        .unwrap();
        assert_eq!(
            collect_live(m),
            vec![("k".into(), "v2".into()), ("z".into(), "zz".into())]
        );
    }

    #[test]
    fn empty_sources_yield_nothing() {
        let m = MergeIter::new(vec![src(&[]), src(&[])]).unwrap();
        assert!(collect_live(m).is_empty());
    }
}
