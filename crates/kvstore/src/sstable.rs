//! Sorted string tables: the immutable on-disk segment format.
//!
//! File layout (all offsets absolute, regions contiguous):
//!
//! ```text
//! [data region]    entry*: tag u8, klen uvarint, key, (vlen uvarint, value)?
//! [sparse index]   entry*: klen uvarint, key, data_offset uvarint
//! [bloom filter]   see `bloom` module encoding
//! [meta region]    min_key, max_key (uvarint-prefixed), entry_count uvarint
//! [footer, 72 B]   data_len u64 | index_off u64 | index_len u64 |
//!                  bloom_off u64 | bloom_len u64 | meta_off u64 |
//!                  meta_len u64 | data_crc u32 | tail_crc u32 | magic u64
//! ```
//!
//! `tail_crc` covers index+bloom+meta and is verified when the table is
//! opened (those regions are read eagerly). `data_crc` covers the data
//! region and is verified on demand by [`SsTableReader::verify`] — per-read
//! validation would double I/O on the hot path for no benefit at this scale.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;

use crate::bloom::BloomFilter;
use crate::crc32::{crc32, crc32_update};
use crate::error::{Error, Result};
use crate::memtable::Slot;

const MAGIC: u64 = 0x7355_7374_6232_3031; // "sUstb201"
const FOOTER_LEN: usize = 72;
const TAG_VALUE: u8 = 1;
const TAG_TOMBSTONE: u8 = 2;

fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn get_uvarint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Streaming uvarint read from a buffered reader.
fn read_uvarint(r: &mut impl Read) -> std::io::Result<Option<u64>> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof && first => return Ok(None),
            Err(e) => return Err(e),
        }
        first = false;
        if shift >= 64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "overlong varint",
            ));
        }
        v |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(v));
        }
        shift += 7;
    }
}

/// Builds an SSTable from entries added in strictly ascending key order.
#[derive(Debug)]
pub struct SsTableWriter {
    path: PathBuf,
    file: File,
    data_buf: Vec<u8>,
    index: Vec<u8>,
    keys: Vec<Bytes>,
    last_key: Option<Bytes>,
    min_key: Option<Bytes>,
    entry_count: u64,
    sparse_interval: usize,
    bloom_bits_per_key: usize,
    data_crc_state: u32,
    data_written: u64,
}

impl SsTableWriter {
    /// Start writing a table at `path` (truncates any existing file).
    pub fn create(
        path: impl Into<PathBuf>,
        sparse_interval: usize,
        bloom_bits_per_key: usize,
    ) -> Result<Self> {
        let path = path.into();
        let file = File::create(&path)
            .map_err(|e| Error::io(format!("creating sstable {}", path.display()), e))?;
        Ok(SsTableWriter {
            path,
            file,
            data_buf: Vec::with_capacity(64 << 10),
            index: Vec::new(),
            keys: Vec::new(),
            last_key: None,
            min_key: None,
            entry_count: 0,
            sparse_interval: sparse_interval.max(1),
            bloom_bits_per_key,
            data_crc_state: 0xFFFF_FFFF,
            data_written: 0,
        })
    }

    /// Append one entry. Keys must arrive in strictly ascending order.
    pub fn add(&mut self, key: &[u8], slot: &Slot) -> Result<()> {
        if let Some(last) = &self.last_key {
            if key <= &last[..] {
                return Err(Error::InvalidArgument(format!(
                    "sstable keys out of order: {:?} after {:?}",
                    String::from_utf8_lossy(key),
                    String::from_utf8_lossy(last)
                )));
            }
        }
        let offset = self.data_written + self.data_buf.len() as u64;
        if (self.entry_count as usize).is_multiple_of(self.sparse_interval) {
            put_uvarint(&mut self.index, key.len() as u64);
            self.index.extend_from_slice(key);
            put_uvarint(&mut self.index, offset);
        }
        match slot {
            Slot::Value(v) => {
                self.data_buf.push(TAG_VALUE);
                put_uvarint(&mut self.data_buf, key.len() as u64);
                self.data_buf.extend_from_slice(key);
                put_uvarint(&mut self.data_buf, v.len() as u64);
                self.data_buf.extend_from_slice(v);
            }
            Slot::Tombstone => {
                self.data_buf.push(TAG_TOMBSTONE);
                put_uvarint(&mut self.data_buf, key.len() as u64);
                self.data_buf.extend_from_slice(key);
            }
        }
        let key = Bytes::copy_from_slice(key);
        if self.min_key.is_none() {
            self.min_key = Some(key.clone());
        }
        self.keys.push(key.clone());
        self.last_key = Some(key);
        self.entry_count += 1;
        if self.data_buf.len() >= (1 << 20) {
            self.flush_data()?;
        }
        Ok(())
    }

    fn flush_data(&mut self) -> Result<()> {
        self.data_crc_state = crc32_update(self.data_crc_state, &self.data_buf);
        self.file
            .write_all(&self.data_buf)
            .map_err(|e| Error::io(format!("writing sstable {}", self.path.display()), e))?;
        self.data_written += self.data_buf.len() as u64;
        self.data_buf.clear();
        Ok(())
    }

    /// Number of entries added so far.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Finalise the table: write index, bloom, meta, footer, fsync.
    /// Returns the total file size in bytes.
    pub fn finish(mut self) -> Result<u64> {
        self.flush_data()?;
        let data_len = self.data_written;
        let data_crc = self.data_crc_state ^ 0xFFFF_FFFF;

        let bloom = BloomFilter::build(&self.keys, self.bloom_bits_per_key);
        let mut bloom_buf = Vec::with_capacity(bloom.encoded_len());
        bloom.encode_into(&mut bloom_buf);

        let mut meta = Vec::new();
        let min_key = self.min_key.clone().unwrap_or_default();
        let max_key = self.last_key.clone().unwrap_or_default();
        put_uvarint(&mut meta, min_key.len() as u64);
        meta.extend_from_slice(&min_key);
        put_uvarint(&mut meta, max_key.len() as u64);
        meta.extend_from_slice(&max_key);
        put_uvarint(&mut meta, self.entry_count);

        let index_off = data_len;
        let index_len = self.index.len() as u64;
        let bloom_off = index_off + index_len;
        let bloom_len = bloom_buf.len() as u64;
        let meta_off = bloom_off + bloom_len;
        let meta_len = meta.len() as u64;

        let mut tail = Vec::with_capacity((index_len + bloom_len + meta_len) as usize);
        tail.extend_from_slice(&self.index);
        tail.extend_from_slice(&bloom_buf);
        tail.extend_from_slice(&meta);
        let tail_crc = crc32(&tail);

        let mut footer = Vec::with_capacity(FOOTER_LEN);
        for v in [
            data_len, index_off, index_len, bloom_off, bloom_len, meta_off, meta_len,
        ] {
            footer.extend_from_slice(&v.to_le_bytes());
        }
        footer.extend_from_slice(&data_crc.to_le_bytes());
        footer.extend_from_slice(&tail_crc.to_le_bytes());
        footer.extend_from_slice(&MAGIC.to_le_bytes());
        debug_assert_eq!(footer.len(), FOOTER_LEN);

        let ctx = || format!("finishing sstable {}", self.path.display());
        self.file
            .write_all(&tail)
            .and_then(|_| self.file.write_all(&footer))
            .and_then(|_| self.file.sync_data())
            .map_err(|e| Error::io(ctx(), e))?;
        Ok(meta_off + meta_len + FOOTER_LEN as u64)
    }
}

/// One parsed sparse-index entry.
#[derive(Debug, Clone)]
struct IndexEntry {
    key: Bytes,
    offset: u64,
}

/// A decoded data-region entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsEntry {
    /// Entry key.
    pub key: Bytes,
    /// Value or tombstone.
    pub slot: Slot,
}

/// An open, immutable SSTable.
///
/// Cheap to share: wrap in `Arc` (the store does). Point reads use
/// positioned reads on the file descriptor; range scans stream through a
/// dedicated buffered reader.
#[derive(Debug)]
pub struct SsTableReader {
    path: PathBuf,
    file: File,
    data_len: u64,
    data_crc: u32,
    index: Vec<IndexEntry>,
    bloom: BloomFilter,
    min_key: Bytes,
    max_key: Bytes,
    entry_count: u64,
}

impl SsTableReader {
    /// Open and validate the table at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<Arc<Self>> {
        let path = path.into();
        let file = File::open(&path)
            .map_err(|e| Error::io(format!("opening sstable {}", path.display()), e))?;
        let file_len = file
            .metadata()
            .map_err(|e| Error::io(format!("stat sstable {}", path.display()), e))?
            .len();
        if file_len < FOOTER_LEN as u64 {
            return Err(Error::corruption(&path, "file shorter than footer"));
        }
        let mut footer = [0u8; FOOTER_LEN];
        file.read_exact_at(&mut footer, file_len - FOOTER_LEN as u64)
            .map_err(|e| Error::io(format!("reading footer of {}", path.display()), e))?;
        let u64_at = |i: usize| u64::from_le_bytes(footer[i * 8..i * 8 + 8].try_into().unwrap());
        let data_len = u64_at(0);
        let index_off = u64_at(1);
        let index_len = u64_at(2);
        let bloom_off = u64_at(3);
        let bloom_len = u64_at(4);
        let meta_off = u64_at(5);
        let meta_len = u64_at(6);
        let data_crc = u32::from_le_bytes(footer[56..60].try_into().unwrap());
        let tail_crc = u32::from_le_bytes(footer[60..64].try_into().unwrap());
        let magic = u64::from_le_bytes(footer[64..72].try_into().unwrap());
        if magic != MAGIC {
            return Err(Error::corruption(&path, "bad magic"));
        }
        let tail_len = index_len + bloom_len + meta_len;
        if index_off != data_len
            || bloom_off != index_off + index_len
            || meta_off != bloom_off + bloom_len
            || meta_off + meta_len + FOOTER_LEN as u64 != file_len
        {
            return Err(Error::corruption(&path, "inconsistent region offsets"));
        }
        let mut tail = vec![0u8; tail_len as usize];
        file.read_exact_at(&mut tail, index_off)
            .map_err(|e| Error::io(format!("reading tail of {}", path.display()), e))?;
        if crc32(&tail) != tail_crc {
            return Err(Error::corruption(&path, "tail checksum mismatch"));
        }
        // Parse sparse index.
        let index_bytes = &tail[..index_len as usize];
        let mut index = Vec::new();
        let mut pos = 0usize;
        while pos < index_bytes.len() {
            let klen = get_uvarint(index_bytes, &mut pos)
                .ok_or_else(|| Error::corruption(&path, "bad index key len"))?
                as usize;
            let key = index_bytes
                .get(pos..pos + klen)
                .ok_or_else(|| Error::corruption(&path, "truncated index key"))?;
            pos += klen;
            let offset = get_uvarint(index_bytes, &mut pos)
                .ok_or_else(|| Error::corruption(&path, "bad index offset"))?;
            index.push(IndexEntry {
                key: Bytes::copy_from_slice(key),
                offset,
            });
        }
        // Parse bloom.
        let bloom_bytes = &tail[index_len as usize..(index_len + bloom_len) as usize];
        let bloom = BloomFilter::decode(bloom_bytes)
            .ok_or_else(|| Error::corruption(&path, "bad bloom region"))?;
        // Parse meta.
        let meta_bytes = &tail[(index_len + bloom_len) as usize..];
        let mut pos = 0usize;
        let read_key = |pos: &mut usize| -> Result<Bytes> {
            let len = get_uvarint(meta_bytes, pos)
                .ok_or_else(|| Error::corruption(&path, "bad meta key len"))?
                as usize;
            let key = meta_bytes
                .get(*pos..*pos + len)
                .ok_or_else(|| Error::corruption(&path, "truncated meta key"))?;
            *pos += len;
            Ok(Bytes::copy_from_slice(key))
        };
        let min_key = read_key(&mut pos)?;
        let max_key = read_key(&mut pos)?;
        let entry_count = get_uvarint(meta_bytes, &mut pos)
            .ok_or_else(|| Error::corruption(&path, "bad meta count"))?;

        Ok(Arc::new(SsTableReader {
            path,
            file,
            data_len,
            data_crc,
            index,
            bloom,
            min_key,
            max_key,
            entry_count,
        }))
    }

    /// Path of the table file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of entries in the table.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Smallest key in the table (empty for an empty table).
    pub fn min_key(&self) -> &[u8] {
        &self.min_key
    }

    /// Largest key in the table (empty for an empty table).
    pub fn max_key(&self) -> &[u8] {
        &self.max_key
    }

    /// `true` when `key` is outside `[min_key, max_key]` or rejected by the
    /// bloom filter — i.e. a point read can skip this table.
    pub fn definitely_absent(&self, key: &[u8]) -> bool {
        if self.entry_count == 0 || key < &self.min_key[..] || key > &self.max_key[..] {
            return true;
        }
        !self.bloom.may_contain(key)
    }

    /// Offset of the sparse-index segment that could contain `key`.
    fn segment_start(&self, key: &[u8]) -> u64 {
        // Greatest index entry with key <= target.
        match self.index.binary_search_by(|e| e.key[..].cmp(key)) {
            Ok(i) => self.index[i].offset,
            Err(0) => 0,
            Err(i) => self.index[i - 1].offset,
        }
    }

    /// Point lookup. Returns `None` when the key is not in this table.
    pub fn get(&self, key: &[u8]) -> Result<Option<Slot>> {
        if self.definitely_absent(key) {
            return Ok(None);
        }
        let start = self.segment_start(key);
        let mut iter = self.scan_from(start)?;
        while let Some(entry) = iter.next_entry()? {
            match entry.key[..].cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Ok(Some(entry.slot)),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Stream entries starting at absolute data offset `offset`.
    pub fn scan_from(&self, offset: u64) -> Result<SsTableIter> {
        let file = File::open(&self.path)
            .map_err(|e| Error::io(format!("re-opening sstable {}", self.path.display()), e))?;
        let mut reader = BufReader::with_capacity(64 << 10, file);
        reader
            .seek(SeekFrom::Start(offset))
            .map_err(|e| Error::io(format!("seeking sstable {}", self.path.display()), e))?;
        Ok(SsTableIter {
            path: self.path.clone(),
            reader,
            pos: offset,
            data_len: self.data_len,
        })
    }

    /// Stream all entries in key order.
    pub fn iter(&self) -> Result<SsTableIter> {
        self.scan_from(0)
    }

    /// Stream entries with key `>= start`, using the sparse index to skip
    /// ahead. The caller must still discard leading entries `< start`
    /// (the iterator begins at a segment boundary).
    pub fn seek(&self, start: &[u8]) -> Result<SsTableIter> {
        self.scan_from(self.segment_start(start))
    }

    /// Recompute the data-region checksum and compare with the footer.
    pub fn verify(&self) -> Result<()> {
        let mut remaining = self.data_len;
        let mut offset = 0u64;
        let mut buf = vec![0u8; 256 << 10];
        let mut state = 0xFFFF_FFFFu32;
        while remaining > 0 {
            let n = remaining.min(buf.len() as u64) as usize;
            self.file
                .read_exact_at(&mut buf[..n], offset)
                .map_err(|e| Error::io(format!("verifying {}", self.path.display()), e))?;
            state = crc32_update(state, &buf[..n]);
            offset += n as u64;
            remaining -= n as u64;
        }
        if state ^ 0xFFFF_FFFF != self.data_crc {
            return Err(Error::corruption(&self.path, "data checksum mismatch"));
        }
        Ok(())
    }
}

/// Streaming cursor over an SSTable's data region.
#[derive(Debug)]
pub struct SsTableIter {
    path: PathBuf,
    reader: BufReader<File>,
    pos: u64,
    data_len: u64,
}

impl SsTableIter {
    /// Decode the next entry, or `None` at end of data.
    pub fn next_entry(&mut self) -> Result<Option<SsEntry>> {
        if self.pos >= self.data_len {
            return Ok(None);
        }
        let corrupt = |d: &str| Error::corruption(self.path.clone(), d.to_string());
        let mut tag = [0u8; 1];
        self.reader
            .read_exact(&mut tag)
            .map_err(|_| corrupt("truncated entry tag"))?;
        self.pos += 1;
        let klen = read_uvarint(&mut self.reader)
            .map_err(|_| corrupt("bad key varint"))?
            .ok_or_else(|| corrupt("truncated key len"))?;
        self.pos += uvarint_len(klen);
        let mut key = vec![0u8; klen as usize];
        self.reader
            .read_exact(&mut key)
            .map_err(|_| corrupt("truncated key"))?;
        self.pos += klen;
        let slot = match tag[0] {
            TAG_VALUE => {
                let vlen = read_uvarint(&mut self.reader)
                    .map_err(|_| corrupt("bad value varint"))?
                    .ok_or_else(|| corrupt("truncated value len"))?;
                self.pos += uvarint_len(vlen);
                let mut value = vec![0u8; vlen as usize];
                self.reader
                    .read_exact(&mut value)
                    .map_err(|_| corrupt("truncated value"))?;
                self.pos += vlen;
                Slot::Value(Bytes::from(value))
            }
            TAG_TOMBSTONE => Slot::Tombstone,
            _ => return Err(corrupt("unknown entry tag")),
        };
        Ok(Some(SsEntry {
            key: Bytes::from(key),
            slot,
        }))
    }
}

fn uvarint_len(v: u64) -> u64 {
    match v {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0x0FFF_FFFF => 4,
        _ => {
            let bits = 64 - v.leading_zeros() as u64;
            bits.div_ceil(7)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "sst-test-{}-{tag}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
        fn file(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn build_table(path: &Path, entries: &[(&str, Option<&str>)]) -> Arc<SsTableReader> {
        let mut w = SsTableWriter::create(path, 4, 10).unwrap();
        for (k, v) in entries {
            let slot = match v {
                Some(v) => Slot::Value(Bytes::copy_from_slice(v.as_bytes())),
                None => Slot::Tombstone,
            };
            w.add(k.as_bytes(), &slot).unwrap();
        }
        w.finish().unwrap();
        SsTableReader::open(path).unwrap()
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = TempDir::new("roundtrip");
        let entries: Vec<(String, String)> = (0..100)
            .map(|i| (format!("key-{i:04}"), format!("value-{i}")))
            .collect();
        let refs: Vec<(&str, Option<&str>)> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), Some(v.as_str())))
            .collect();
        let t = build_table(&dir.file("a.sst"), &refs);
        assert_eq!(t.entry_count(), 100);
        assert_eq!(t.min_key(), b"key-0000");
        assert_eq!(t.max_key(), b"key-0099");
        for (k, v) in &entries {
            let got = t.get(k.as_bytes()).unwrap().unwrap();
            assert_eq!(got.as_value().unwrap(), v.as_bytes());
        }
        assert!(t.get(b"absent").unwrap().is_none());
        assert!(t.get(b"key-0050x").unwrap().is_none());
        t.verify().unwrap();
    }

    #[test]
    fn tombstones_roundtrip() {
        let dir = TempDir::new("tomb");
        let t = build_table(
            &dir.file("t.sst"),
            &[("a", Some("1")), ("b", None), ("c", Some("3"))],
        );
        assert!(t.get(b"b").unwrap().unwrap().is_tombstone());
        assert_eq!(t.get(b"a").unwrap().unwrap().as_value().unwrap(), &b"1"[..]);
    }

    #[test]
    fn iter_returns_all_in_order() {
        let dir = TempDir::new("iter");
        let t = build_table(
            &dir.file("i.sst"),
            &[("a", Some("1")), ("m", None), ("z", Some("26"))],
        );
        let mut it = t.iter().unwrap();
        let mut keys = Vec::new();
        while let Some(e) = it.next_entry().unwrap() {
            keys.push(e.key);
        }
        assert_eq!(keys, vec![&b"a"[..], &b"m"[..], &b"z"[..]]);
    }

    #[test]
    fn seek_lands_at_or_before_target() {
        let dir = TempDir::new("seek");
        let entries: Vec<(String, String)> = (0..50)
            .map(|i| (format!("k{i:03}"), format!("{i}")))
            .collect();
        let refs: Vec<(&str, Option<&str>)> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), Some(v.as_str())))
            .collect();
        let t = build_table(&dir.file("s.sst"), &refs);
        let mut it = t.seek(b"k025").unwrap();
        let mut found = Vec::new();
        while let Some(e) = it.next_entry().unwrap() {
            if e.key[..] >= b"k025"[..] {
                found.push(e.key);
            }
        }
        assert_eq!(found.len(), 25);
        assert_eq!(&found[0][..], b"k025");
    }

    #[test]
    fn out_of_order_add_rejected() {
        let dir = TempDir::new("order");
        let mut w = SsTableWriter::create(dir.file("o.sst"), 4, 10).unwrap();
        w.add(b"b", &Slot::Value(Bytes::from_static(b"1"))).unwrap();
        assert!(w.add(b"a", &Slot::Value(Bytes::from_static(b"2"))).is_err());
        assert!(w.add(b"b", &Slot::Value(Bytes::from_static(b"2"))).is_err());
    }

    #[test]
    fn empty_table_roundtrip() {
        let dir = TempDir::new("empty");
        let w = SsTableWriter::create(dir.file("e.sst"), 4, 10).unwrap();
        w.finish().unwrap();
        let t = SsTableReader::open(dir.file("e.sst")).unwrap();
        assert_eq!(t.entry_count(), 0);
        assert!(t.get(b"anything").unwrap().is_none());
        let mut it = t.iter().unwrap();
        assert!(it.next_entry().unwrap().is_none());
    }

    #[test]
    fn corrupted_tail_detected_at_open() {
        let dir = TempDir::new("corrupt-tail");
        let path = dir.file("c.sst");
        build_table(&path, &[("a", Some("1")), ("b", Some("2"))]);
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte in the index region (right after the small data region).
        let n = data.len();
        data[n - FOOTER_LEN - 2] ^= 0x55;
        std::fs::write(&path, &data).unwrap();
        match SsTableReader::open(&path) {
            Err(Error::Corruption { .. }) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_data_detected_by_verify() {
        let dir = TempDir::new("corrupt-data");
        let path = dir.file("d.sst");
        build_table(&path, &[("aaa", Some("111")), ("bbb", Some("222"))]);
        let mut data = std::fs::read(&path).unwrap();
        data[2] ^= 0x01; // inside data region
        std::fs::write(&path, &data).unwrap();
        // Tail is intact so open succeeds...
        let t = SsTableReader::open(&path).unwrap();
        // ...but full verification catches the flip.
        assert!(matches!(t.verify(), Err(Error::Corruption { .. })));
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = TempDir::new("magic");
        let path = dir.file("m.sst");
        build_table(&path, &[("a", Some("1"))]);
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(
            SsTableReader::open(&path),
            Err(Error::Corruption { .. })
        ));
    }

    #[test]
    fn truncated_file_rejected() {
        let dir = TempDir::new("trunc");
        let path = dir.file("t.sst");
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(
            SsTableReader::open(&path),
            Err(Error::Corruption { .. })
        ));
    }

    #[test]
    fn large_values_cross_internal_flush_boundary() {
        let dir = TempDir::new("large");
        let path = dir.file("big.sst");
        let mut w = SsTableWriter::create(&path, 16, 10).unwrap();
        let big = "x".repeat(300_000);
        for i in 0..8 {
            let key = format!("key{i}");
            w.add(
                key.as_bytes(),
                &Slot::Value(Bytes::copy_from_slice(big.as_bytes())),
            )
            .unwrap();
        }
        w.finish().unwrap();
        let t = SsTableReader::open(&path).unwrap();
        t.verify().unwrap();
        let got = t.get(b"key5").unwrap().unwrap();
        assert_eq!(got.as_value().unwrap().len(), 300_000);
    }

    #[test]
    fn uvarint_len_matches_encoding() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            1 << 21,
            1 << 28,
            1 << 35,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(buf.len() as u64, uvarint_len(v), "v={v}");
        }
    }
}
