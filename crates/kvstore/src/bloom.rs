//! Bloom filters for SSTable point-read short-circuiting.
//!
//! Uses the standard Kirsch–Mitzenmacher double-hashing scheme: two 64-bit
//! hashes `h1`, `h2` derive `k` probe positions `h1 + i·h2`. The hash is a
//! self-contained FNV-1a variant with avalanche finalisation — no external
//! crates.

/// 64-bit FNV-1a with a murmur-style finaliser for better bit diffusion.
#[inline]
pub(crate) fn hash64(data: &[u8], seed: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // fmix64 from MurmurHash3.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// An immutable bloom filter over a set of byte-string keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u8>,
    num_hashes: u32,
}

impl BloomFilter {
    /// Build a filter sized for `keys.len()` keys at `bits_per_key` bits each.
    ///
    /// `bits_per_key == 0` produces an empty filter for which
    /// [`BloomFilter::may_contain`] always answers `true` (i.e. the filter is
    /// disabled but never wrong).
    pub fn build<K: AsRef<[u8]>>(keys: &[K], bits_per_key: usize) -> Self {
        if bits_per_key == 0 || keys.is_empty() {
            return BloomFilter {
                bits: Vec::new(),
                num_hashes: 0,
            };
        }
        // k = ln2 * bits_per_key is the optimal hash count; clamp to [1, 30].
        let num_hashes = ((bits_per_key as f64) * 0.69) as u32;
        let num_hashes = num_hashes.clamp(1, 30);
        let nbits = (keys.len() * bits_per_key).max(64);
        let nbytes = nbits.div_ceil(8);
        let nbits = nbytes * 8;
        let mut bits = vec![0u8; nbytes];
        for key in keys {
            let h1 = hash64(key.as_ref(), 0xA5A5_5A5A);
            let h2 = hash64(key.as_ref(), 0x5151_1515) | 1;
            let mut h = h1;
            for _ in 0..num_hashes {
                let pos = (h % nbits as u64) as usize;
                bits[pos / 8] |= 1 << (pos % 8);
                h = h.wrapping_add(h2);
            }
        }
        BloomFilter { bits, num_hashes }
    }

    /// Returns `false` only when `key` is definitely absent.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.bits.is_empty() {
            return true;
        }
        let nbits = self.bits.len() * 8;
        let h1 = hash64(key, 0xA5A5_5A5A);
        let h2 = hash64(key, 0x5151_1515) | 1;
        let mut h = h1;
        for _ in 0..self.num_hashes {
            let pos = (h % nbits as u64) as usize;
            if self.bits[pos / 8] & (1 << (pos % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(h2);
        }
        true
    }

    /// Serialise to `out`: `[num_hashes: u32 LE][bit bytes…]`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.num_hashes.to_le_bytes());
        out.extend_from_slice(&self.bits);
    }

    /// Inverse of [`BloomFilter::encode_into`]. `data` must be the exact
    /// encoded region.
    pub fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < 4 {
            return None;
        }
        let num_hashes = u32::from_le_bytes(data[..4].try_into().ok()?);
        if num_hashes > 30 {
            return None;
        }
        Some(BloomFilter {
            bits: data[4..].to_vec(),
            num_hashes,
        })
    }

    /// Approximate serialised size in bytes.
    pub fn encoded_len(&self) -> usize {
        4 + self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key-{i:05}").into_bytes()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let ks = keys(1000);
        let f = BloomFilter::build(&ks, 10);
        for k in &ks {
            assert!(f.may_contain(k), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let ks = keys(1000);
        let f = BloomFilter::build(&ks, 10);
        let mut fp = 0usize;
        let probes = 10_000;
        for i in 0..probes {
            if f.may_contain(format!("absent-{i}").as_bytes()) {
                fp += 1;
            }
        }
        // 10 bits/key gives ~1% theoretically; allow generous slack.
        assert!(
            fp < probes / 20,
            "false positive rate too high: {fp}/{probes}"
        );
    }

    #[test]
    fn disabled_filter_always_positive() {
        let ks = keys(10);
        let f = BloomFilter::build(&ks, 0);
        assert!(f.may_contain(b"anything"));
        assert_eq!(f.encoded_len(), 4);
    }

    #[test]
    fn empty_key_set_always_positive() {
        let f = BloomFilter::build::<&[u8]>(&[], 10);
        assert!(f.may_contain(b"anything"));
    }

    #[test]
    fn roundtrip_encoding() {
        let ks = keys(100);
        let f = BloomFilter::build(&ks, 8);
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        assert_eq!(buf.len(), f.encoded_len());
        let g = BloomFilter::decode(&buf).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(BloomFilter::decode(&[1, 2]).is_none());
        assert!(BloomFilter::decode(&[255, 255, 255, 255, 0]).is_none());
    }

    #[test]
    fn hash64_differs_by_seed() {
        let a = hash64(b"hello", 1);
        let b = hash64(b"hello", 2);
        assert_ne!(a, b);
    }
}
