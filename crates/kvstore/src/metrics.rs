//! Lightweight operation counters.
//!
//! Every counter is a relaxed atomic: metrics must never contend with the
//! data path. Snapshots are taken with [`Metrics::snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal counter set shared by all store components.
#[derive(Debug, Default)]
pub struct Metrics {
    pub(crate) gets: AtomicU64,
    pub(crate) puts: AtomicU64,
    pub(crate) deletes: AtomicU64,
    pub(crate) range_scans: AtomicU64,
    pub(crate) bloom_negatives: AtomicU64,
    pub(crate) sstable_point_reads: AtomicU64,
    pub(crate) bytes_flushed: AtomicU64,
    pub(crate) bytes_wal: AtomicU64,
    pub(crate) flushes: AtomicU64,
    pub(crate) compactions: AtomicU64,
}

impl Metrics {
    #[inline]
    pub(crate) fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture a point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            range_scans: self.range_scans.load(Ordering::Relaxed),
            bloom_negatives: self.bloom_negatives.load(Ordering::Relaxed),
            sstable_point_reads: self.sstable_point_reads.load(Ordering::Relaxed),
            bytes_flushed: self.bytes_flushed.load(Ordering::Relaxed),
            bytes_wal: self.bytes_wal.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of store counters; cheap to copy and compare.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Point lookups served.
    pub gets: u64,
    /// Keys written (including batch writes).
    pub puts: u64,
    /// Tombstones written.
    pub deletes: u64,
    /// Range iterators constructed.
    pub range_scans: u64,
    /// Point reads short-circuited by a bloom filter.
    pub bloom_negatives: u64,
    /// Point reads that had to consult an SSTable's data region.
    pub sstable_point_reads: u64,
    /// Bytes written to SSTables by flushes and compactions.
    pub bytes_flushed: u64,
    /// Bytes appended to the write-ahead log.
    pub bytes_wal: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let m = Metrics::default();
        Metrics::incr(&m.gets);
        Metrics::incr(&m.gets);
        Metrics::add(&m.bytes_wal, 128);
        let snap = m.snapshot();
        assert_eq!(snap.gets, 2);
        assert_eq!(snap.bytes_wal, 128);
        assert_eq!(snap.puts, 0);
    }
}
