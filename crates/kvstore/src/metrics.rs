//! Lightweight operation counters.
//!
//! Every counter is a relaxed atomic: metrics must never contend with the
//! data path. Snapshots are taken with [`Metrics::snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal counter set shared by all store components.
#[derive(Debug, Default)]
pub struct Metrics {
    pub(crate) gets: AtomicU64,
    pub(crate) puts: AtomicU64,
    pub(crate) deletes: AtomicU64,
    pub(crate) range_scans: AtomicU64,
    pub(crate) bloom_negatives: AtomicU64,
    pub(crate) bloom_false_positives: AtomicU64,
    pub(crate) sstable_point_reads: AtomicU64,
    pub(crate) bytes_flushed: AtomicU64,
    pub(crate) bytes_wal: AtomicU64,
    pub(crate) wal_fsyncs: AtomicU64,
    pub(crate) group_commits: AtomicU64,
    pub(crate) group_commit_batches: AtomicU64,
    pub(crate) flushes: AtomicU64,
    pub(crate) compactions: AtomicU64,
    pub(crate) compaction_bytes_read: AtomicU64,
    pub(crate) compaction_bytes_written: AtomicU64,
}

impl Metrics {
    #[inline]
    pub(crate) fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Capture a point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            range_scans: self.range_scans.load(Ordering::Relaxed),
            bloom_negatives: self.bloom_negatives.load(Ordering::Relaxed),
            bloom_false_positives: self.bloom_false_positives.load(Ordering::Relaxed),
            sstable_point_reads: self.sstable_point_reads.load(Ordering::Relaxed),
            bytes_flushed: self.bytes_flushed.load(Ordering::Relaxed),
            bytes_wal: self.bytes_wal.load(Ordering::Relaxed),
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            group_commit_batches: self.group_commit_batches.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            compaction_bytes_read: self.compaction_bytes_read.load(Ordering::Relaxed),
            compaction_bytes_written: self.compaction_bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of store counters; cheap to copy and compare.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Point lookups served.
    pub gets: u64,
    /// Keys written (including batch writes).
    pub puts: u64,
    /// Tombstones written.
    pub deletes: u64,
    /// Range iterators constructed.
    pub range_scans: u64,
    /// Point reads short-circuited by a bloom filter.
    pub bloom_negatives: u64,
    /// Bloom probes that said "maybe" but the SSTable had no entry.
    pub bloom_false_positives: u64,
    /// Point reads that had to consult an SSTable's data region.
    pub sstable_point_reads: u64,
    /// Bytes written to SSTables by flushes and compactions.
    pub bytes_flushed: u64,
    /// Bytes appended to the write-ahead log.
    pub bytes_wal: u64,
    /// WAL appends that forced an fsync (`Options::sync_wal`).
    pub wal_fsyncs: u64,
    /// Leader rounds executed by the group-commit path
    /// (`Options::group_commit`).
    pub group_commits: u64,
    /// Write batches processed by the group-commit path. The coalescing
    /// ratio is `group_commit_batches / group_commits`.
    pub group_commit_batches: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// SSTable bytes read as compaction input.
    pub compaction_bytes_read: u64,
    /// SSTable bytes produced as compaction output.
    pub compaction_bytes_written: u64,
}

impl MetricsSnapshot {
    /// Per-field difference against an `earlier` snapshot (saturating, so
    /// a reset store never yields garbage).
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            gets: self.gets.saturating_sub(earlier.gets),
            puts: self.puts.saturating_sub(earlier.puts),
            deletes: self.deletes.saturating_sub(earlier.deletes),
            range_scans: self.range_scans.saturating_sub(earlier.range_scans),
            bloom_negatives: self.bloom_negatives.saturating_sub(earlier.bloom_negatives),
            bloom_false_positives: self
                .bloom_false_positives
                .saturating_sub(earlier.bloom_false_positives),
            sstable_point_reads: self
                .sstable_point_reads
                .saturating_sub(earlier.sstable_point_reads),
            bytes_flushed: self.bytes_flushed.saturating_sub(earlier.bytes_flushed),
            bytes_wal: self.bytes_wal.saturating_sub(earlier.bytes_wal),
            wal_fsyncs: self.wal_fsyncs.saturating_sub(earlier.wal_fsyncs),
            group_commits: self.group_commits.saturating_sub(earlier.group_commits),
            group_commit_batches: self
                .group_commit_batches
                .saturating_sub(earlier.group_commit_batches),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            compactions: self.compactions.saturating_sub(earlier.compactions),
            compaction_bytes_read: self
                .compaction_bytes_read
                .saturating_sub(earlier.compaction_bytes_read),
            compaction_bytes_written: self
                .compaction_bytes_written
                .saturating_sub(earlier.compaction_bytes_written),
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "gets {}  puts {}  deletes {}  range_scans {}",
            self.gets, self.puts, self.deletes, self.range_scans
        )?;
        writeln!(
            f,
            "bloom_negatives {}  bloom_false_positives {}  sstable_point_reads {}",
            self.bloom_negatives, self.bloom_false_positives, self.sstable_point_reads
        )?;
        writeln!(
            f,
            "bytes_wal {}  wal_fsyncs {}  group_commits {}  group_commit_batches {}  bytes_flushed {}  flushes {}",
            self.bytes_wal,
            self.wal_fsyncs,
            self.group_commits,
            self.group_commit_batches,
            self.bytes_flushed,
            self.flushes
        )?;
        write!(
            f,
            "compactions {}  compaction_bytes_read {}  compaction_bytes_written {}",
            self.compactions, self.compaction_bytes_read, self.compaction_bytes_written
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshot() {
        let m = Metrics::default();
        Metrics::incr(&m.gets);
        Metrics::incr(&m.gets);
        Metrics::add(&m.bytes_wal, 128);
        let snap = m.snapshot();
        assert_eq!(snap.gets, 2);
        assert_eq!(snap.bytes_wal, 128);
        assert_eq!(snap.puts, 0);
    }

    #[test]
    fn diff_subtracts_fieldwise_and_saturates() {
        let m = Metrics::default();
        Metrics::incr(&m.gets);
        let earlier = m.snapshot();
        Metrics::incr(&m.gets);
        Metrics::incr(&m.wal_fsyncs);
        Metrics::add(&m.compaction_bytes_read, 512);
        let d = m.snapshot().diff(&earlier);
        assert_eq!(d.gets, 1);
        assert_eq!(d.wal_fsyncs, 1);
        assert_eq!(d.compaction_bytes_read, 512);
        // Saturation: diffing the other way round yields zero, not wrap.
        assert_eq!(earlier.diff(&m.snapshot()).gets, 0);
    }

    #[test]
    fn display_mentions_every_counter_family() {
        let text = MetricsSnapshot::default().to_string();
        for field in [
            "gets",
            "bloom_false_positives",
            "wal_fsyncs",
            "group_commits",
            "group_commit_batches",
            "compaction_bytes_read",
            "compaction_bytes_written",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }
}
