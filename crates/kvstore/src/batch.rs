//! Atomic write batches.
//!
//! A [`WriteBatch`] groups puts and deletes that must become visible
//! together. The batch encoding doubles as the WAL record payload, so one
//! framing layer (the WAL's) provides atomicity: either the whole batch
//! replays or none of it does.

use bytes::Bytes;

use crate::error::{Error, Result};

/// A single operation inside a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or overwrite `key` with `value`.
    Put {
        /// Key to write.
        key: Bytes,
        /// Value to associate.
        value: Bytes,
    },
    /// Remove `key` (writes a tombstone).
    Delete {
        /// Key to remove.
        key: Bytes,
    },
}

impl BatchOp {
    /// The key this operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            BatchOp::Put { key, .. } | BatchOp::Delete { key } => key,
        }
    }
}

/// An ordered collection of operations applied atomically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<BatchOp>,
}

pub(crate) const TAG_PUT: u8 = 1;
pub(crate) const TAG_DELETE: u8 = 2;

pub(crate) fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn get_uvarint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

impl WriteBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a put.
    pub fn put(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> &mut Self {
        self.ops.push(BatchOp::Put {
            key: key.into(),
            value: value.into(),
        });
        self
    }

    /// Queue a delete.
    pub fn delete(&mut self, key: impl Into<Bytes>) -> &mut Self {
        self.ops.push(BatchOp::Delete { key: key.into() });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate over queued operations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &BatchOp> {
        self.ops.iter()
    }

    /// Consume the batch, yielding its operations.
    pub fn into_ops(self) -> Vec<BatchOp> {
        self.ops
    }

    /// Serialise: `[count][tag key_len key (val_len val)?]*` with uvarints.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.ops.len() * 16);
        put_uvarint(&mut out, self.ops.len() as u64);
        for op in &self.ops {
            match op {
                BatchOp::Put { key, value } => {
                    out.push(TAG_PUT);
                    put_uvarint(&mut out, key.len() as u64);
                    out.extend_from_slice(key);
                    put_uvarint(&mut out, value.len() as u64);
                    out.extend_from_slice(value);
                }
                BatchOp::Delete { key } => {
                    out.push(TAG_DELETE);
                    put_uvarint(&mut out, key.len() as u64);
                    out.extend_from_slice(key);
                }
            }
        }
        out
    }

    /// Inverse of [`WriteBatch::encode`]. Fails on truncated or malformed
    /// input; trailing bytes after the declared count are rejected.
    pub fn decode(data: &[u8]) -> Result<Self> {
        let bad = |d: &str| Error::InvalidArgument(format!("malformed batch encoding: {d}"));
        let mut pos = 0usize;
        let count = get_uvarint(data, &mut pos).ok_or_else(|| bad("missing count"))?;
        let mut ops = Vec::with_capacity(count.min(1 << 20) as usize);
        for _ in 0..count {
            let tag = *data.get(pos).ok_or_else(|| bad("missing tag"))?;
            pos += 1;
            let klen = get_uvarint(data, &mut pos).ok_or_else(|| bad("missing key len"))? as usize;
            let key = data
                .get(pos..pos + klen)
                .ok_or_else(|| bad("truncated key"))?;
            pos += klen;
            match tag {
                TAG_PUT => {
                    let vlen = get_uvarint(data, &mut pos)
                        .ok_or_else(|| bad("missing value len"))?
                        as usize;
                    let value = data
                        .get(pos..pos + vlen)
                        .ok_or_else(|| bad("truncated value"))?;
                    pos += vlen;
                    ops.push(BatchOp::Put {
                        key: Bytes::copy_from_slice(key),
                        value: Bytes::copy_from_slice(value),
                    });
                }
                TAG_DELETE => ops.push(BatchOp::Delete {
                    key: Bytes::copy_from_slice(key),
                }),
                other => return Err(bad(&format!("unknown tag {other}"))),
            }
        }
        if pos != data.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(WriteBatch { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_batch() {
        let mut b = WriteBatch::new();
        b.put(&b"alpha"[..], &b"1"[..])
            .delete(&b"beta"[..])
            .put(&b"gamma"[..], &b""[..]);
        let enc = b.encode();
        let dec = WriteBatch::decode(&enc).unwrap();
        assert_eq!(b, dec);
    }

    #[test]
    fn roundtrip_empty_batch() {
        let b = WriteBatch::new();
        assert!(b.is_empty());
        let dec = WriteBatch::decode(&b.encode()).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut b = WriteBatch::new();
        b.put(&b"key"[..], &b"value"[..]);
        let enc = b.encode();
        for cut in 1..enc.len() {
            assert!(
                WriteBatch::decode(&enc[..cut]).is_err(),
                "truncation at {cut} not detected"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut b = WriteBatch::new();
        b.put(&b"k"[..], &b"v"[..]);
        let mut enc = b.encode();
        enc.push(0xEE);
        assert!(WriteBatch::decode(&enc).is_err());
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        // count=1, tag=9, klen=1, key=b"x"
        let data = [1u8, 9, 1, b'x'];
        assert!(WriteBatch::decode(&data).is_err());
    }

    #[test]
    fn varint_roundtrip_large_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        // 11 continuation bytes exceeds the 64-bit shift budget.
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert_eq!(get_uvarint(&buf, &mut pos), None);
    }

    #[test]
    fn op_key_accessor() {
        let mut b = WriteBatch::new();
        b.put(&b"a"[..], &b"1"[..]).delete(&b"b"[..]);
        let keys: Vec<&[u8]> = b.iter().map(|o| o.key()).collect();
        assert_eq!(keys, vec![&b"a"[..], &b"b"[..]]);
    }
}
