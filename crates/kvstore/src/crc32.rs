//! CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320), table-driven.
//!
//! Shared by the WAL and SSTable formats here and re-used by the ledger
//! crate's block framing. Implemented in-repo to keep the dependency set to
//! the approved list.

/// Lazily-built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update: feed successive chunks, starting from
/// `0xFFFF_FFFF`, and XOR the final state with `0xFFFF_FFFF`.
pub fn crc32_update(state: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = state;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"hello world, this is a streaming crc test";
        let whole = crc32(data);
        let mut st = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            st = crc32_update(st, chunk);
        }
        assert_eq!(st ^ 0xFFFF_FFFF, whole);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"some payload bytes".to_vec();
        let before = crc32(&data);
        data[5] ^= 0x10;
        assert_ne!(before, crc32(&data));
    }
}
