//! Write-ahead log.
//!
//! Record framing on disk:
//!
//! ```text
//! [crc32: u32 LE] [len: u32 LE] [payload: len bytes]
//! ```
//!
//! where the CRC covers `len || payload`. Replay stops at the first record
//! that is truncated or fails its checksum — a torn tail from a crash is
//! discarded rather than treated as corruption, matching LevelDB semantics.
//! A checksum failure *followed by more valid data* would indicate real
//! corruption, but distinguishing the two is not worth the complexity at
//! this scale; the conservative stop-at-first-bad-record rule never replays
//! garbage.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::error::{Error, Result};

/// Append-only log writer.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    sync: bool,
    bytes_written: u64,
}

impl Wal {
    /// Create a new log at `path`. Refuses to open an existing file: a log
    /// that is silently truncated loses every record it held, so the caller
    /// must decide explicitly — replay it, or remove it as a known orphan —
    /// before a `Wal` can be created at that path.
    pub fn create(path: impl Into<PathBuf>, sync: bool) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::AlreadyExists {
                    Error::InvalidArgument(format!(
                        "wal {} already exists; replay or remove it before creating",
                        path.display()
                    ))
                } else {
                    Error::io(format!("creating wal {}", path.display()), e)
                }
            })?;
        Ok(Wal {
            path,
            writer: BufWriter::new(file),
            sync,
            bytes_written: 0,
        })
    }

    /// Append one record and flush it to the OS (and to disk when `sync`).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let len = u32::try_from(payload.len())
            .map_err(|_| Error::InvalidArgument("wal record exceeds 4 GiB".into()))?;
        let mut crc_input = Vec::with_capacity(4 + payload.len());
        crc_input.extend_from_slice(&len.to_le_bytes());
        crc_input.extend_from_slice(payload);
        let crc = crc32(&crc_input);
        let ctx = || format!("appending to wal {}", self.path.display());
        self.writer
            .write_all(&crc.to_le_bytes())
            .and_then(|_| self.writer.write_all(&crc_input))
            .map_err(|e| Error::io(ctx(), e))?;
        self.writer.flush().map_err(|e| Error::io(ctx(), e))?;
        if self.sync {
            self.writer
                .get_ref()
                .sync_data()
                .map_err(|e| Error::io(ctx(), e))?;
        }
        let written = 8 + payload.len() as u64;
        self.bytes_written += written;
        Ok(written)
    }

    /// Append several records, flushing (and syncing, when `sync`) **once**
    /// for the whole group — the group-commit primitive. Equivalent to one
    /// [`Wal::append`] per payload from a replay point of view, but pays a
    /// single fsync instead of one per record.
    pub fn append_group(&mut self, payloads: &[Vec<u8>]) -> Result<u64> {
        let ctx = || format!("appending to wal {}", self.path.display());
        let mut written = 0u64;
        for payload in payloads {
            let len = u32::try_from(payload.len())
                .map_err(|_| Error::InvalidArgument("wal record exceeds 4 GiB".into()))?;
            let mut crc_input = Vec::with_capacity(4 + payload.len());
            crc_input.extend_from_slice(&len.to_le_bytes());
            crc_input.extend_from_slice(payload);
            let crc = crc32(&crc_input);
            self.writer
                .write_all(&crc.to_le_bytes())
                .and_then(|_| self.writer.write_all(&crc_input))
                .map_err(|e| Error::io(ctx(), e))?;
            written += 8 + payload.len() as u64;
        }
        self.writer.flush().map_err(|e| Error::io(ctx(), e))?;
        if self.sync {
            self.writer
                .get_ref()
                .sync_data()
                .map_err(|e| Error::io(ctx(), e))?;
        }
        self.bytes_written += written;
        Ok(written)
    }

    /// Total bytes appended since creation.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durably flush buffered records.
    pub fn sync(&mut self) -> Result<()> {
        self.writer
            .flush()
            .and_then(|_| self.writer.get_ref().sync_data())
            .map_err(|e| Error::io(format!("syncing wal {}", self.path.display()), e))
    }
}

/// Read every intact record from the log at `path`.
///
/// Returns the record payloads in append order. A truncated or checksum-
/// failing tail is silently dropped (see module docs).
pub fn replay(path: &Path) -> Result<Vec<Vec<u8>>> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(Error::io(format!("opening wal {}", path.display()), e)),
    };
    let mut data = Vec::new();
    file.read_to_end(&mut data)
        .map_err(|e| Error::io(format!("reading wal {}", path.display()), e))?;

    let mut records = Vec::new();
    let mut pos = 0usize;
    while data.len() - pos >= 8 {
        let crc_stored = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let Some(frame) = data.get(pos + 4..pos + 8 + len) else {
            break; // torn tail
        };
        if crc32(frame) != crc_stored {
            break; // torn or corrupt tail
        }
        records.push(frame[4..].to_vec());
        pos += 8 + len;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> tempdir::TempDir {
        tempdir::TempDir::new()
    }

    /// Minimal temp-dir helper so the crate keeps zero dev-deps beyond the
    /// approved list.
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TempDir(PathBuf);
        static N: AtomicU64 = AtomicU64::new(0);

        impl TempDir {
            pub fn new() -> Self {
                let n = N.fetch_add(1, Ordering::Relaxed);
                let p = std::env::temp_dir().join(format!("kvwal-test-{}-{n}", std::process::id()));
                std::fs::create_dir_all(&p).unwrap();
                TempDir(p)
            }
            pub fn path(&self) -> &Path {
                &self.0
            }
        }
        impl Drop for TempDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn append_then_replay() {
        let dir = tmpdir();
        let path = dir.path().join("000001.wal");
        let mut wal = Wal::create(&path, false).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"").unwrap();
        wal.append(b"third record").unwrap();
        drop(wal);
        let records = replay(&path).unwrap();
        assert_eq!(
            records,
            vec![b"first".to_vec(), b"".to_vec(), b"third record".to_vec()]
        );
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let dir = tmpdir();
        let records = replay(&dir.path().join("nope.wal")).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let dir = tmpdir();
        let path = dir.path().join("torn.wal");
        let mut wal = Wal::create(&path, false).unwrap();
        wal.append(b"keep me").unwrap();
        wal.append(b"lose me").unwrap();
        drop(wal);
        // Chop 3 bytes off the end: second record becomes torn.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records, vec![b"keep me".to_vec()]);
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let dir = tmpdir();
        let path = dir.path().join("corrupt.wal");
        let mut wal = Wal::create(&path, false).unwrap();
        wal.append(b"good").unwrap();
        wal.append(b"bad!").unwrap();
        drop(wal);
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 2] ^= 0xFF; // flip a payload byte of the last record
        std::fs::write(&path, &data).unwrap();
        let records = replay(&path).unwrap();
        assert_eq!(records, vec![b"good".to_vec()]);
    }

    #[test]
    fn create_refuses_existing_path() {
        let dir = tmpdir();
        let path = dir.path().join("reuse.wal");
        let mut wal = Wal::create(&path, false).unwrap();
        wal.append(b"precious").unwrap();
        drop(wal);
        // A second create must NOT truncate the log out from under us.
        let err = Wal::create(&path, false).unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
        assert_eq!(replay(&path).unwrap(), vec![b"precious".to_vec()]);
        // After the caller explicitly removes the orphan, create succeeds.
        std::fs::remove_file(&path).unwrap();
        Wal::create(&path, false).unwrap();
    }

    #[test]
    fn append_group_is_replay_equivalent_to_appends() {
        let dir = tmpdir();
        let grouped = dir.path().join("grouped.wal");
        let single = dir.path().join("single.wal");
        let records: Vec<Vec<u8>> = vec![b"one".to_vec(), b"".to_vec(), b"three".to_vec()];
        let mut wal = Wal::create(&grouped, true).unwrap();
        let group_bytes = wal.append_group(&records).unwrap();
        drop(wal);
        let mut wal = Wal::create(&single, true).unwrap();
        let mut single_bytes = 0;
        for r in &records {
            single_bytes += wal.append(r).unwrap();
        }
        drop(wal);
        assert_eq!(group_bytes, single_bytes);
        assert_eq!(replay(&grouped).unwrap(), records);
        assert_eq!(
            std::fs::read(&grouped).unwrap(),
            std::fs::read(&single).unwrap()
        );
    }

    #[test]
    fn bytes_written_tracks_framing() {
        let dir = tmpdir();
        let mut wal = Wal::create(dir.path().join("b.wal"), false).unwrap();
        let n = wal.append(b"12345").unwrap();
        assert_eq!(n, 13); // 8 header + 5 payload
        assert_eq!(wal.bytes_written(), 13);
    }

    #[test]
    fn sync_mode_writes_are_replayable() {
        let dir = tmpdir();
        let path = dir.path().join("sync.wal");
        let mut wal = Wal::create(&path, true).unwrap();
        wal.append(b"durable").unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(replay(&path).unwrap(), vec![b"durable".to_vec()]);
    }
}
