//! Tunable options controlling store behaviour.

/// Which storage-engine implementation backs a store directory.
///
/// Selected through [`Options::backend`] and resolved by
/// [`crate::open_engine`]: directories created by the value-log engine carry
/// an `ENGINE` marker file and are auto-detected on reopen; LSM directories
/// keep the original marker-free layout, so pre-existing stores keep opening
/// bit-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Backend {
    /// Resolve from the on-disk marker, falling back to [`Backend::Lsm`]
    /// for unmarked (or fresh) directories.
    #[default]
    Auto,
    /// The LSM engine ([`crate::KvStore`]): WAL + memtable + SSTables.
    Lsm,
    /// The bitcask-style value-log engine ([`crate::LogStore`]):
    /// append-only data files + in-memory offset index.
    Log,
}

impl Backend {
    /// Numeric encoding used for the `kv.backend` gauge: 0 = lsm, 1 = log.
    /// `Auto` never survives engine resolution, but encodes as -1 for
    /// completeness.
    pub fn as_gauge(self) -> i64 {
        match self {
            Backend::Auto => -1,
            Backend::Lsm => 0,
            Backend::Log => 1,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Auto => "auto",
            Backend::Lsm => "lsm",
            Backend::Log => "log",
        })
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Backend::Auto),
            "lsm" => Ok(Backend::Lsm),
            "log" => Ok(Backend::Log),
            other => Err(format!(
                "unknown backend {other:?} (expected lsm, log or auto)"
            )),
        }
    }
}

/// Configuration for a [`crate::KvStore`].
///
/// The defaults are sized for the ledger workloads in this workspace:
/// small values, many keys, frequent range scans.
#[derive(Debug, Clone)]
pub struct Options {
    /// Flush the memtable to an SSTable once its approximate in-memory
    /// footprint exceeds this many bytes.
    pub memtable_max_bytes: usize,
    /// `fsync` the write-ahead log after every write batch. Turning this off
    /// trades durability of the most recent writes for throughput; the store
    /// remains crash-consistent either way (torn tails are discarded).
    pub sync_wal: bool,
    /// One sparse-index entry is emitted for every `sparse_index_interval`
    /// entries written to an SSTable.
    pub sparse_index_interval: usize,
    /// Bits per key for SSTable bloom filters. Zero disables blooms.
    pub bloom_bits_per_key: usize,
    /// Trigger a full merge compaction when the number of live SSTables
    /// reaches this count. Zero disables automatic compaction.
    pub compaction_trigger: usize,
    /// Coalesce concurrent [`crate::KvStore::write`] callers into one WAL
    /// append + fsync (leader/follower group commit). Sequential callers
    /// behave exactly as without it; the win is for many writer threads
    /// with `sync_wal` on, where N writers pay one fsync instead of N.
    pub group_commit: bool,
    /// Which engine implementation to open (see [`Backend`]). Ignored by the
    /// concrete constructors (`KvStore::open` is always LSM); consulted by
    /// [`crate::open_engine`].
    pub backend: Backend,
    /// Value-log engine only: rotate the active data file once it exceeds
    /// this many bytes.
    pub log_file_max_bytes: u64,
    /// Value-log engine only: trigger a merge compaction once the estimated
    /// bytes of dead entries (overwritten or deleted) across sealed data
    /// files reaches this threshold. Zero disables automatic compaction.
    pub log_compaction_bytes: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            memtable_max_bytes: 4 << 20,
            sync_wal: false,
            sparse_index_interval: 16,
            bloom_bits_per_key: 10,
            compaction_trigger: 8,
            group_commit: false,
            backend: Backend::Auto,
            log_file_max_bytes: 16 << 20,
            log_compaction_bytes: 8 << 20,
        }
    }
}

impl Options {
    /// Options tuned for unit tests: tiny memtable so flush/compaction paths
    /// are exercised with little data.
    pub fn small_for_tests() -> Self {
        Options {
            memtable_max_bytes: 1024,
            sync_wal: false,
            sparse_index_interval: 4,
            bloom_bits_per_key: 10,
            compaction_trigger: 4,
            group_commit: false,
            backend: Backend::Auto,
            log_file_max_bytes: 2048,
            log_compaction_bytes: 4096,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = Options::default();
        assert!(o.memtable_max_bytes > 0);
        assert!(o.sparse_index_interval > 0);
        assert!(o.compaction_trigger > 1);
    }

    #[test]
    fn test_options_are_tiny() {
        let o = Options::small_for_tests();
        assert!(o.memtable_max_bytes <= 4096);
        assert!(o.log_file_max_bytes <= 4096);
        assert!(o.log_compaction_bytes <= 8192);
    }

    #[test]
    fn backend_parses_and_displays() {
        for (text, want) in [
            ("auto", Backend::Auto),
            ("lsm", Backend::Lsm),
            ("log", Backend::Log),
        ] {
            let parsed: Backend = text.parse().unwrap();
            assert_eq!(parsed, want);
            assert_eq!(parsed.to_string(), text);
        }
        assert!("leveldb".parse::<Backend>().is_err());
        assert_eq!(Backend::default(), Backend::Auto);
    }

    #[test]
    fn backend_gauge_encoding_is_stable() {
        assert_eq!(Backend::Lsm.as_gauge(), 0);
        assert_eq!(Backend::Log.as_gauge(), 1);
    }
}
