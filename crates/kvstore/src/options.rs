//! Tunable options controlling store behaviour.

/// Configuration for a [`crate::KvStore`].
///
/// The defaults are sized for the ledger workloads in this workspace:
/// small values, many keys, frequent range scans.
#[derive(Debug, Clone)]
pub struct Options {
    /// Flush the memtable to an SSTable once its approximate in-memory
    /// footprint exceeds this many bytes.
    pub memtable_max_bytes: usize,
    /// `fsync` the write-ahead log after every write batch. Turning this off
    /// trades durability of the most recent writes for throughput; the store
    /// remains crash-consistent either way (torn tails are discarded).
    pub sync_wal: bool,
    /// One sparse-index entry is emitted for every `sparse_index_interval`
    /// entries written to an SSTable.
    pub sparse_index_interval: usize,
    /// Bits per key for SSTable bloom filters. Zero disables blooms.
    pub bloom_bits_per_key: usize,
    /// Trigger a full merge compaction when the number of live SSTables
    /// reaches this count. Zero disables automatic compaction.
    pub compaction_trigger: usize,
    /// Coalesce concurrent [`crate::KvStore::write`] callers into one WAL
    /// append + fsync (leader/follower group commit). Sequential callers
    /// behave exactly as without it; the win is for many writer threads
    /// with `sync_wal` on, where N writers pay one fsync instead of N.
    pub group_commit: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            memtable_max_bytes: 4 << 20,
            sync_wal: false,
            sparse_index_interval: 16,
            bloom_bits_per_key: 10,
            compaction_trigger: 8,
            group_commit: false,
        }
    }
}

impl Options {
    /// Options tuned for unit tests: tiny memtable so flush/compaction paths
    /// are exercised with little data.
    pub fn small_for_tests() -> Self {
        Options {
            memtable_max_bytes: 1024,
            sync_wal: false,
            sparse_index_interval: 4,
            bloom_bits_per_key: 10,
            compaction_trigger: 4,
            group_commit: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = Options::default();
        assert!(o.memtable_max_bytes > 0);
        assert!(o.sparse_index_interval > 0);
        assert!(o.compaction_trigger > 1);
    }

    #[test]
    fn test_options_are_tiny() {
        let o = Options::small_for_tests();
        assert!(o.memtable_max_bytes <= 4096);
    }
}
