//! The pluggable storage-engine boundary.
//!
//! Everything above this crate — the ledger indexes, the state database, the
//! CLI — talks to storage through the [`StorageEngine`] trait, so the
//! concrete engine is a deployment choice rather than a compile-time one.
//! Two implementations ship today:
//!
//! * [`crate::KvStore`] — the LSM (WAL + memtable + SSTables), the default.
//! * [`crate::LogStore`] — a bitcask-style value log (append-only data
//!   files with an in-memory offset index), which trades range-scan
//!   locality for strictly sequential writes and cheap garbage collection
//!   of overwritten values.
//!
//! [`open_engine`] resolves which implementation owns a directory. Value-log
//! directories carry an `ENGINE` marker file; LSM directories deliberately
//! do **not**, so every store created before this boundary existed keeps its
//! byte-identical on-disk layout and auto-detects as LSM.

use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use fabric_telemetry::Telemetry;

use crate::batch::WriteBatch;
use crate::error::{Error, Result};
use crate::metrics::MetricsSnapshot;
use crate::options::{Backend, Options};
use crate::store::{KvStore, RangeIter, StorageStats};
use crate::vlog::{LogRangeIter, LogStore};

/// Name of the backend marker file written into value-log directories.
pub const ENGINE_MARKER: &str = "ENGINE";

/// A shared, dynamically dispatched storage engine.
pub type SharedEngine = Arc<dyn StorageEngine>;

/// A snapshot iterator handed out by a [`StorageEngine`]: live
/// `(key, value)` pairs in ascending key order.
pub trait EngineIter: Send {
    /// Advance and return the next pair, or `None` when exhausted.
    ///
    /// Deliberately shaped like `Iterator::next` but fallible; the trait
    /// stays object-safe and callers handle I/O errors per step.
    #[allow(clippy::should_implement_trait)]
    fn next(&mut self) -> Result<Option<(Bytes, Bytes)>>;

    /// Drain the iterator into a vector (tests / small scans).
    fn collect_all(&mut self) -> Result<Vec<(Bytes, Bytes)>> {
        let mut out = Vec::new();
        while let Some(kv) = self.next()? {
            out.push(kv);
        }
        Ok(out)
    }
}

impl EngineIter for RangeIter {
    fn next(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        RangeIter::next(self)
    }
}

impl EngineIter for LogRangeIter {
    fn next(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        LogRangeIter::next(self)
    }
}

/// The full storage surface the upper layers use. Object-safe so engines can
/// be swapped at runtime (`Arc<dyn StorageEngine>`).
pub trait StorageEngine: Send + Sync + std::fmt::Debug {
    /// Which implementation this is.
    fn backend(&self) -> Backend;

    /// Insert or overwrite one key.
    fn put(&self, key: Bytes, value: Bytes) -> Result<()>;

    /// Remove one key.
    fn delete(&self, key: Bytes) -> Result<()>;

    /// Apply a batch atomically: either every operation replays after a
    /// crash or none does.
    fn write(&self, batch: WriteBatch) -> Result<()>;

    /// Apply several independently atomic batches with one append + at most
    /// one fsync (cross-batch group commit).
    fn write_many(&self, batches: Vec<WriteBatch>) -> Result<()>;

    /// Point lookup.
    fn get(&self, key: &[u8]) -> Result<Option<Bytes>>;

    /// Snapshot scan over a key range in ascending order. An inverted range
    /// yields an empty iterator.
    fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<Box<dyn EngineIter>>;

    /// Snapshot scan over every key starting with `prefix`.
    fn prefix(&self, prefix: &[u8]) -> Result<Box<dyn EngineIter>>;

    /// Force buffered writes down to durable storage.
    fn flush(&self) -> Result<()>;

    /// Run a full merge compaction, reclaiming dead entries.
    fn compact(&self) -> Result<()>;

    /// Write a point-in-time copy of the store into `dest`, which must not
    /// already hold a store. The copy opens as a normal store.
    fn checkpoint(&self, dest: &Path) -> Result<()>;

    /// Point-in-time occupancy numbers for live-metrics surfaces.
    fn storage_stats(&self) -> StorageStats;

    /// Snapshot of the operation counters.
    fn metrics(&self) -> MetricsSnapshot;

    /// The telemetry handle this store records into.
    fn telemetry(&self) -> &Telemetry;

    /// Directory this store lives in.
    fn dir(&self) -> &Path;
}

impl StorageEngine for KvStore {
    fn backend(&self) -> Backend {
        Backend::Lsm
    }

    fn put(&self, key: Bytes, value: Bytes) -> Result<()> {
        KvStore::put(self, key, value)
    }

    fn delete(&self, key: Bytes) -> Result<()> {
        KvStore::delete(self, key)
    }

    fn write(&self, batch: WriteBatch) -> Result<()> {
        KvStore::write(self, batch)
    }

    fn write_many(&self, batches: Vec<WriteBatch>) -> Result<()> {
        KvStore::write_many(self, batches)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        KvStore::get(self, key)
    }

    fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<Box<dyn EngineIter>> {
        Ok(Box::new(KvStore::range(self, start, end)?))
    }

    fn prefix(&self, prefix: &[u8]) -> Result<Box<dyn EngineIter>> {
        Ok(Box::new(KvStore::prefix(self, prefix)?))
    }

    fn flush(&self) -> Result<()> {
        KvStore::flush(self)
    }

    fn compact(&self) -> Result<()> {
        KvStore::compact(self)
    }

    fn checkpoint(&self, dest: &Path) -> Result<()> {
        KvStore::checkpoint(self, dest)
    }

    fn storage_stats(&self) -> StorageStats {
        KvStore::storage_stats(self)
    }

    fn metrics(&self) -> MetricsSnapshot {
        KvStore::metrics(self)
    }

    fn telemetry(&self) -> &Telemetry {
        KvStore::telemetry(self)
    }

    fn dir(&self) -> &Path {
        KvStore::dir(self)
    }
}

impl StorageEngine for LogStore {
    fn backend(&self) -> Backend {
        Backend::Log
    }

    fn put(&self, key: Bytes, value: Bytes) -> Result<()> {
        LogStore::put(self, key, value)
    }

    fn delete(&self, key: Bytes) -> Result<()> {
        LogStore::delete(self, key)
    }

    fn write(&self, batch: WriteBatch) -> Result<()> {
        LogStore::write(self, batch)
    }

    fn write_many(&self, batches: Vec<WriteBatch>) -> Result<()> {
        LogStore::write_many(self, batches)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        LogStore::get(self, key)
    }

    fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<Box<dyn EngineIter>> {
        Ok(Box::new(LogStore::range(self, start, end)?))
    }

    fn prefix(&self, prefix: &[u8]) -> Result<Box<dyn EngineIter>> {
        Ok(Box::new(LogStore::prefix(self, prefix)?))
    }

    fn flush(&self) -> Result<()> {
        LogStore::flush(self)
    }

    fn compact(&self) -> Result<()> {
        LogStore::compact(self)
    }

    fn checkpoint(&self, dest: &Path) -> Result<()> {
        LogStore::checkpoint(self, dest)
    }

    fn storage_stats(&self) -> StorageStats {
        LogStore::storage_stats(self)
    }

    fn metrics(&self) -> MetricsSnapshot {
        LogStore::metrics(self)
    }

    fn telemetry(&self) -> &Telemetry {
        LogStore::telemetry(self)
    }

    fn dir(&self) -> &Path {
        LogStore::dir(self)
    }
}

/// Read the backend marker in `dir`, if one is present. `Ok(None)` means the
/// directory is unmarked (an LSM store, or not a store at all).
pub fn detect_backend(dir: &Path) -> Result<Option<Backend>> {
    let marker = dir.join(ENGINE_MARKER);
    match std::fs::read_to_string(&marker) {
        Ok(text) => match text.trim() {
            "lsm" => Ok(Some(Backend::Lsm)),
            "log" => Ok(Some(Backend::Log)),
            other => Err(Error::corruption(
                &marker,
                format!("unknown backend marker {other:?}"),
            )),
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(Error::io(
            format!("reading backend marker {}", marker.display()),
            e,
        )),
    }
}

/// Open the engine that owns `dir`, creating it if needed.
///
/// Resolution rules:
///
/// * A marked directory always opens as its marked backend; asking for the
///   other backend explicitly is an error rather than a silent reformat.
/// * An unmarked directory resolves [`Backend::Auto`] to LSM — this is what
///   keeps pre-boundary stores opening unchanged.
/// * An unmarked directory that already holds an LSM store (has a
///   `MANIFEST`) refuses to open as `log`.
pub fn open_engine(
    dir: impl Into<PathBuf>,
    options: Options,
    tel: Telemetry,
) -> Result<SharedEngine> {
    let dir = dir.into();
    let marked = detect_backend(&dir)?;
    let resolved = match (marked, options.backend) {
        (Some(found), Backend::Auto) => found,
        (Some(found), requested) if requested == found => found,
        (Some(found), requested) => {
            return Err(Error::InvalidArgument(format!(
                "store at {} uses the {found} backend; cannot open it as {requested}",
                dir.display()
            )))
        }
        (None, Backend::Auto) => Backend::Lsm,
        (None, Backend::Log) if dir.join("MANIFEST").exists() => {
            return Err(Error::InvalidArgument(format!(
                "store at {} holds an lsm store; cannot open it as log",
                dir.display()
            )))
        }
        (None, requested) => requested,
    };
    Ok(match resolved {
        Backend::Log => Arc::new(LogStore::open_with_telemetry(dir, options, tel)?),
        _ => Arc::new(KvStore::open_with_telemetry(dir, options, tel)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "engine-{name}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn opts(backend: Backend) -> Options {
        Options {
            backend,
            ..Options::small_for_tests()
        }
    }

    #[test]
    fn auto_resolves_fresh_dir_to_lsm() {
        let dir = TempDir::new("auto-lsm");
        let db = open_engine(&dir.0, opts(Backend::Auto), Telemetry::disabled()).unwrap();
        assert_eq!(db.backend(), Backend::Lsm);
        // The LSM layout stays marker-free: pre-boundary stores must keep
        // their exact on-disk shape.
        assert!(!dir.0.join(ENGINE_MARKER).exists());
        assert!(dir.0.join("MANIFEST").exists());
    }

    #[test]
    fn log_dirs_are_marked_and_autodetected() {
        let dir = TempDir::new("auto-log");
        {
            let db = open_engine(&dir.0, opts(Backend::Log), Telemetry::disabled()).unwrap();
            db.put(Bytes::from_static(b"k"), Bytes::from_static(b"v"))
                .unwrap();
            assert_eq!(db.backend(), Backend::Log);
        }
        assert_eq!(detect_backend(&dir.0).unwrap(), Some(Backend::Log));
        let db = open_engine(&dir.0, opts(Backend::Auto), Telemetry::disabled()).unwrap();
        assert_eq!(db.backend(), Backend::Log);
        assert_eq!(db.get(b"k").unwrap().unwrap(), &b"v"[..]);
    }

    #[test]
    fn backend_mismatch_is_rejected() {
        let dir = TempDir::new("mismatch");
        drop(open_engine(&dir.0, opts(Backend::Log), Telemetry::disabled()).unwrap());
        let err = open_engine(&dir.0, opts(Backend::Lsm), Telemetry::disabled()).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn unmarked_lsm_dir_refuses_log_backend() {
        let dir = TempDir::new("unmarked");
        drop(open_engine(&dir.0, opts(Backend::Lsm), Telemetry::disabled()).unwrap());
        let err = open_engine(&dir.0, opts(Backend::Log), Telemetry::disabled()).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn garbage_marker_is_corruption() {
        let dir = TempDir::new("garbage-marker");
        std::fs::create_dir_all(&dir.0).unwrap();
        std::fs::write(dir.0.join(ENGINE_MARKER), "riak\n").unwrap();
        let err = open_engine(&dir.0, opts(Backend::Auto), Telemetry::disabled()).unwrap_err();
        assert!(matches!(err, Error::Corruption { .. }), "{err}");
    }

    #[test]
    fn trait_surface_matches_concrete_store() {
        let dir = TempDir::new("surface");
        let db = open_engine(&dir.0, opts(Backend::Auto), Telemetry::disabled()).unwrap();
        db.put(Bytes::from_static(b"a"), Bytes::from_static(b"1"))
            .unwrap();
        let mut batch = WriteBatch::new();
        batch.put(&b"b"[..], &b"2"[..]).delete(&b"a"[..]);
        db.write(batch).unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
        let mut iter = db.range(Bound::Unbounded, Bound::Unbounded).unwrap();
        let all = iter.collect_all().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(&all[0].0[..], b"b");
        assert_eq!(db.storage_stats().backend, Backend::Lsm);
        assert!(db.metrics().puts >= 2);
        assert_eq!(db.dir(), &dir.0);
    }
}
