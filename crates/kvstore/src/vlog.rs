//! The [`LogStore`]: a bitcask-style value-log storage engine.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/ENGINE            backend marker ("log"), written once at creation
//! <dir>/NNNNNN.vlog       append-only data files (higher N = newer)
//! <dir>/NNNNNN.vmerge     in-flight compaction output (removed on open)
//! ```
//!
//! Every write batch is appended to the active data file as one CRC-framed
//! record using the WAL framing (`[crc32][len][payload]`, payload = the
//! [`WriteBatch`] encoding), so the batch is atomic: either every operation
//! replays after a crash or none does. The entire key set lives in an
//! in-memory map `key → (file, offset, len)` rebuilt on open by scanning the
//! data files in file-number order; reads are one `pread` against the named
//! file. A torn tail — a crash mid-append — is truncated on recovery exactly
//! like the LSM's write-ahead log; a damaged record *followed by newer data*
//! is reported as corruption instead.
//!
//! Overwritten and deleted entries leave dead bytes behind. Each file tracks
//! an estimate of its dead bytes; once the total crosses
//! [`Options::log_compaction_bytes`] a merge compaction rewrites every live
//! entry into fresh output files and deletes the old ones. The merge runs
//! without the writer lock (same three-phase shape as the LSM's compaction),
//! and readers stay safe throughout because every file's reader handle is an
//! `Arc<File>`: a file deleted mid-scan stays readable until the last handle
//! drops. Crash safety of the merge itself comes from ordering: outputs are
//! written under a `.vmerge` name, renamed into place, the directory is
//! fsynced, and only then are the inputs deleted — replaying an input *and*
//! the merge output that superseded it is idempotent.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Read;
use std::ops::Bound;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::Bytes;
use fabric_telemetry::Telemetry;
use parking_lot::{Mutex, RwLock};

use crate::batch::{get_uvarint, put_uvarint, WriteBatch, TAG_DELETE, TAG_PUT};
use crate::crc32::crc32;
use crate::engine::ENGINE_MARKER;
use crate::error::{Error, Result};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::options::{Backend, Options};
use crate::store::{prefix_end, StorageStats};
use crate::wal::Wal;

fn vlog_path(dir: &Path, num: u64) -> PathBuf {
    dir.join(format!("{num:06}.vlog"))
}

fn vmerge_path(dir: &Path, num: u64) -> PathBuf {
    dir.join(format!("{num:06}.vmerge"))
}

/// Where a key's current value lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ValueLoc {
    file_id: u64,
    /// Byte offset of the value within the file.
    offset: u64,
    /// Value length in bytes.
    len: u32,
    /// On-disk footprint of the whole entry (tag, key, value and their
    /// length prefixes) — the bytes that become dead when it is superseded.
    entry_bytes: u32,
}

/// One data file: a shared read handle plus occupancy accounting.
#[derive(Debug)]
struct DataFile {
    reader: Arc<File>,
    len: u64,
    dead_bytes: u64,
}

#[derive(Debug)]
struct VInner {
    index: BTreeMap<Bytes, ValueLoc>,
    files: BTreeMap<u64, DataFile>,
    active_id: u64,
    active: Wal,
    next_file: u64,
}

impl VInner {
    fn total_dead_bytes(&self) -> u64 {
        self.files.values().map(|f| f.dead_bytes).sum()
    }
}

/// A bitcask-style log-structured key-value store.
///
/// Same surface and thread-safety contract as [`crate::KvStore`]; selected
/// through [`crate::open_engine`] with [`Backend::Log`]. Strictly sequential
/// writes and O(1) point reads, at the cost of holding every key in memory
/// and losing range-scan locality (scans are index-ordered `pread`s).
pub struct LogStore {
    dir: PathBuf,
    options: Options,
    inner: RwLock<VInner>,
    metrics: Metrics,
    tel: Telemetry,
    /// Serializes merges so two compactions never race over one input set.
    compaction_gate: Mutex<()>,
}

impl std::fmt::Debug for LogStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogStore").field("dir", &self.dir).finish()
    }
}

/// One decoded operation inside a record payload, with enough position
/// information to index the value in place.
struct ParsedOp {
    key: Bytes,
    /// `Some((offset_in_payload, len))` for a put, `None` for a delete.
    value: Option<(u64, u32)>,
    /// Bytes this operation occupies inside the payload.
    op_bytes: u32,
}

/// Walk a record payload (the [`WriteBatch`] encoding) yielding each
/// operation with its in-payload value position.
fn parse_ops(payload: &[u8]) -> Option<Vec<ParsedOp>> {
    let mut pos = 0usize;
    let count = get_uvarint(payload, &mut pos)?;
    let mut ops = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        let op_start = pos;
        let tag = *payload.get(pos)?;
        pos += 1;
        let klen = get_uvarint(payload, &mut pos)? as usize;
        let key = payload.get(pos..pos + klen)?;
        pos += klen;
        let value = match tag {
            TAG_PUT => {
                let vlen = get_uvarint(payload, &mut pos)? as usize;
                let voff = pos as u64;
                payload.get(pos..pos + vlen)?;
                pos += vlen;
                Some((voff, vlen as u32))
            }
            TAG_DELETE => None,
            _ => return None,
        };
        ops.push(ParsedOp {
            key: Bytes::copy_from_slice(key),
            value,
            op_bytes: (pos - op_start) as u32,
        });
    }
    if pos != payload.len() {
        return None;
    }
    Some(ops)
}

/// Apply one record's operations to the index, charging superseded entries
/// to their file's dead-byte count. `payload_off` is the payload's byte
/// offset within file `file_id`.
fn apply_record(
    index: &mut BTreeMap<Bytes, ValueLoc>,
    files: &mut BTreeMap<u64, DataFile>,
    file_id: u64,
    payload_off: u64,
    ops: Vec<ParsedOp>,
) {
    let mut kill = |loc: ValueLoc| {
        if let Some(f) = files.get_mut(&loc.file_id) {
            f.dead_bytes += u64::from(loc.entry_bytes);
        }
    };
    for op in ops {
        match op.value {
            Some((voff, vlen)) => {
                let loc = ValueLoc {
                    file_id,
                    offset: payload_off + voff,
                    len: vlen,
                    entry_bytes: op.op_bytes,
                };
                if let Some(old) = index.insert(op.key, loc) {
                    kill(old);
                }
            }
            None => {
                if let Some(old) = index.remove(&op.key) {
                    kill(old);
                }
                // The tombstone itself is dead weight from the moment it is
                // written: a full merge drops tombstones entirely.
                kill(ValueLoc {
                    file_id,
                    offset: 0,
                    len: 0,
                    entry_bytes: op.op_bytes,
                });
            }
        }
    }
}

/// Result of scanning one data file on open.
struct FileScan {
    /// `(payload_offset, payload)` for every intact record, append order.
    records: Vec<(u64, Vec<u8>)>,
    /// Bytes covered by intact records; anything past this is a torn tail.
    valid_len: u64,
    /// `false` when bytes past `valid_len` exist (torn or corrupt tail).
    clean: bool,
}

/// Read every intact CRC-framed record from `path`, with offsets. Framing is
/// identical to the WAL's; this variant additionally reports where each
/// payload sits so the caller can index values in place.
fn scan_file(path: &Path) -> Result<FileScan> {
    let mut file = File::open(path)
        .map_err(|e| Error::io(format!("opening data file {}", path.display()), e))?;
    let mut data = Vec::new();
    file.read_to_end(&mut data)
        .map_err(|e| Error::io(format!("reading data file {}", path.display()), e))?;
    let mut records = Vec::new();
    let mut pos = 0usize;
    while data.len() - pos >= 8 {
        let crc_stored = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let len = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let Some(frame) = data.get(pos + 4..pos + 8 + len) else {
            break;
        };
        if crc32(frame) != crc_stored {
            break;
        }
        records.push((pos as u64 + 8, frame[4..].to_vec()));
        pos += 8 + len;
    }
    Ok(FileScan {
        records,
        valid_len: pos as u64,
        clean: pos == data.len(),
    })
}

fn open_reader(path: &Path) -> Result<Arc<File>> {
    File::open(path)
        .map(Arc::new)
        .map_err(|e| Error::io(format!("opening reader for {}", path.display()), e))
}

fn fsync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| Error::io(format!("syncing directory {}", dir.display()), e))
}

impl LogStore {
    /// Open (or create) a value-log store in `dir`.
    pub fn open(dir: impl Into<PathBuf>, options: Options) -> Result<Self> {
        Self::open_with_telemetry(dir, options, Telemetry::disabled())
    }

    /// Open (or create) a value-log store in `dir`, recording spans and
    /// counters into `tel` whenever that handle is enabled.
    pub fn open_with_telemetry(
        dir: impl Into<PathBuf>,
        options: Options,
        tel: Telemetry,
    ) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("creating store dir {}", dir.display()), e))?;
        // Mark the directory so reopen auto-detects the backend. Written
        // via rename so a crash can never leave a half-written marker.
        let marker = dir.join(ENGINE_MARKER);
        if !marker.exists() {
            let tmp = dir.join("ENGINE.tmp");
            std::fs::write(&tmp, "log\n")
                .and_then(|_| std::fs::rename(&tmp, &marker))
                .map_err(|e| Error::io("writing backend marker".to_string(), e))?;
        }
        // Collect data files; drop leftovers from an interrupted merge —
        // their inputs are still present, so nothing is lost.
        let mut ids = Vec::new();
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| Error::io(format!("listing store dir {}", dir.display()), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Error::io("listing store dir".to_string(), e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name.strip_suffix(".vmerge") {
                if stem.parse::<u64>().is_ok() {
                    let _ = std::fs::remove_file(entry.path());
                }
            } else if let Some(stem) = name.strip_suffix(".vlog") {
                if let Ok(id) = stem.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        // Scan oldest-first, rebuilding the index. A torn tail is legal only
        // when nothing newer exists: records are appended strictly in file-id
        // order, so damage *followed by* newer data is real corruption.
        let mut scans = Vec::with_capacity(ids.len());
        for &id in &ids {
            scans.push(scan_file(&vlog_path(&dir, id))?);
        }
        let last_data = scans.iter().rposition(|s| !s.records.is_empty());
        let mut index = BTreeMap::new();
        let mut files = BTreeMap::new();
        for (i, (&id, scan)) in ids.iter().zip(&scans).enumerate() {
            let path = vlog_path(&dir, id);
            if !scan.clean {
                if last_data.is_some_and(|last| i < last) {
                    return Err(Error::corruption(
                        &path,
                        "damaged record followed by newer data files",
                    ));
                }
                let file = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| {
                        Error::io(
                            format!("truncating torn tail of {name}", name = path.display()),
                            e,
                        )
                    })?;
                file.set_len(scan.valid_len)
                    .and_then(|_| file.sync_all())
                    .map_err(|e| {
                        Error::io(
                            format!("truncating torn tail of {name}", name = path.display()),
                            e,
                        )
                    })?;
            }
            if scan.records.is_empty() {
                // Nothing live can point here; reclaim the empty file.
                let _ = std::fs::remove_file(&path);
                continue;
            }
            files.insert(
                id,
                DataFile {
                    reader: open_reader(&path)?,
                    len: scan.valid_len,
                    dead_bytes: 0,
                },
            );
            for (payload_off, payload) in &scan.records {
                let ops = parse_ops(payload).ok_or_else(|| {
                    Error::corruption(&path, "checksummed record holds a malformed batch")
                })?;
                apply_record(&mut index, &mut files, id, *payload_off, ops);
            }
        }
        // Always start a fresh active file: sealed files are never appended
        // to again, which keeps the torn-tail rule simple.
        let active_id = ids.last().map_or(1, |last| last + 1);
        let active = Wal::create(vlog_path(&dir, active_id), options.sync_wal)?;
        files.insert(
            active_id,
            DataFile {
                reader: open_reader(active.path())?,
                len: 0,
                dead_bytes: 0,
            },
        );
        Ok(LogStore {
            inner: RwLock::new(VInner {
                index,
                files,
                active_id,
                active,
                next_file: active_id + 1,
            }),
            dir,
            options,
            metrics: Metrics::default(),
            tel,
            compaction_gate: Mutex::new(()),
        })
    }

    /// Insert or overwrite a single key.
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key.into(), value.into());
        self.write(batch)
    }

    /// Delete a single key (idempotent).
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key.into());
        self.write(batch)
    }

    /// Apply a batch atomically: one CRC-framed record, so either every
    /// operation replays after a crash or none does.
    pub fn write(&self, batch: WriteBatch) -> Result<()> {
        self.append_batches(&[batch])
    }

    /// Apply several independently atomic batches with one buffered append
    /// and at most one fsync — the cross-batch group-commit primitive. Each
    /// batch is its own record, so atomicity is per batch.
    pub fn write_many(&self, batches: Vec<WriteBatch>) -> Result<()> {
        if batches.len() > 1 {
            Metrics::incr(&self.metrics.group_commits);
            Metrics::add(&self.metrics.group_commit_batches, batches.len() as u64);
        }
        self.append_batches(&batches)
    }

    fn append_batches(&self, batches: &[WriteBatch]) -> Result<()> {
        let mut payloads = Vec::with_capacity(batches.len());
        for batch in batches {
            if batch.is_empty() {
                continue;
            }
            for op in batch.iter() {
                match op {
                    crate::batch::BatchOp::Put { .. } => Metrics::incr(&self.metrics.puts),
                    crate::batch::BatchOp::Delete { .. } => Metrics::incr(&self.metrics.deletes),
                }
            }
            payloads.push(batch.encode());
        }
        if payloads.is_empty() {
            return Ok(());
        }
        let dead_total;
        {
            let mut inner = self.inner.write();
            let base = inner.active.bytes_written();
            let mut span = self.tel.span("kv.vlog.append");
            let bytes = inner.active.append_group(&payloads)?;
            span.record("bytes", bytes);
            drop(span);
            Metrics::add(&self.metrics.bytes_wal, bytes);
            if self.options.sync_wal {
                Metrics::incr(&self.metrics.wal_fsyncs);
                self.tel.count("kv.wal.fsyncs", 1);
            }
            let inner = &mut *inner;
            let mut off = base;
            for payload in &payloads {
                let ops = parse_ops(payload).expect("just-encoded batch reparses");
                apply_record(
                    &mut inner.index,
                    &mut inner.files,
                    inner.active_id,
                    off + 8,
                    ops,
                );
                off += 8 + payload.len() as u64;
            }
            let active_len = inner.active.bytes_written();
            if let Some(f) = inner.files.get_mut(&inner.active_id) {
                f.len = active_len;
            }
            if active_len >= self.options.log_file_max_bytes {
                self.rotate_active(inner)?;
            }
            dead_total = inner.total_dead_bytes();
        }
        if self.options.log_compaction_bytes > 0 && dead_total >= self.options.log_compaction_bytes
        {
            self.maybe_compact()?;
        }
        Ok(())
    }

    /// Seal the active file and start a new one. Appends are flushed to the
    /// OS as they happen, so sealing is just a writer swap.
    fn rotate_active(&self, inner: &mut VInner) -> Result<()> {
        let id = inner.next_file;
        inner.next_file += 1;
        let active = Wal::create(vlog_path(&self.dir, id), self.options.sync_wal)?;
        inner.files.insert(
            id,
            DataFile {
                reader: open_reader(active.path())?,
                len: 0,
                dead_bytes: 0,
            },
        );
        inner.active = active;
        inner.active_id = id;
        Metrics::incr(&self.metrics.flushes);
        Ok(())
    }

    /// Point lookup: index probe under the shared lock, then one `pread`
    /// with the lock released (the `Arc<File>` keeps the file readable even
    /// if a compaction deletes it meanwhile).
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>> {
        Metrics::incr(&self.metrics.gets);
        let (loc, reader) = {
            let inner = self.inner.read();
            let Some(loc) = inner.index.get(key).copied() else {
                return Ok(None);
            };
            let reader = inner
                .files
                .get(&loc.file_id)
                .expect("index points at a live file")
                .reader
                .clone();
            (loc, reader)
        };
        read_value(&reader, loc).map(Some)
    }

    /// Iterate live entries with keys in `[start, end)`. The iterator sees a
    /// snapshot of the index taken now; writes performed after this call are
    /// not reflected, and a concurrent compaction cannot invalidate it.
    pub fn range(&self, start: Bound<&[u8]>, end: Bound<&[u8]>) -> Result<LogRangeIter> {
        Metrics::incr(&self.metrics.range_scans);
        // An inverted or empty range is a no-op, not a panic (BTreeMap's
        // `range` would panic on start > end).
        let inverted = match (&start, &end) {
            (Bound::Included(s) | Bound::Excluded(s), Bound::Included(e)) => s > e,
            (Bound::Included(s), Bound::Excluded(e)) => s >= e,
            (Bound::Excluded(s), Bound::Excluded(e)) => s >= e,
            _ => false,
        };
        if inverted {
            return Ok(LogRangeIter {
                entries: Vec::new().into_iter(),
            });
        }
        let inner = self.inner.read();
        let entries: Vec<(Bytes, ValueLoc, Arc<File>)> = inner
            .index
            .range::<[u8], _>((start, end))
            .map(|(k, loc)| {
                let reader = inner
                    .files
                    .get(&loc.file_id)
                    .expect("index points at a live file")
                    .reader
                    .clone();
                (k.clone(), *loc, reader)
            })
            .collect();
        Ok(LogRangeIter {
            entries: entries.into_iter(),
        })
    }

    /// Iterate live entries whose key starts with `prefix`.
    pub fn prefix(&self, prefix: &[u8]) -> Result<LogRangeIter> {
        let end = prefix_end(prefix);
        match &end {
            Some(end) => self.range(Bound::Included(prefix), Bound::Excluded(end)),
            None => self.range(Bound::Included(prefix), Bound::Unbounded),
        }
    }

    /// Durably flush the active data file.
    pub fn flush(&self) -> Result<()> {
        self.inner.write().active.sync()
    }

    /// Run a merge compaction: rewrite every live entry into fresh output
    /// files, then delete the inputs. Blocks until any in-flight compaction
    /// finishes first.
    pub fn compact(&self) -> Result<()> {
        let _gate = self.compaction_gate.lock();
        self.compact_gated()
    }

    /// Compact only if no other compaction is already running — the write
    /// path's trigger, so a burst of writers cannot queue up merges.
    fn maybe_compact(&self) -> Result<()> {
        match self.compaction_gate.try_lock() {
            Some(_gate) => self.compact_gated(),
            None => Ok(()),
        }
    }

    fn compact_gated(&self) -> Result<()> {
        let mut span = self.tel.span("kv.compaction");
        // Phase 1 (brief write lock): seal the active file, snapshot the
        // sealed set and the live entries pointing into it. Output file
        // numbers are reserved *below* the new active file so replay order
        // (file-id ascending) keeps merge output older than new writes.
        let (sealed_ids, snapshot, readers, out_base, out_reserve);
        {
            let mut inner = self.inner.write();
            let inner = &mut *inner;
            sealed_ids = inner
                .files
                .keys()
                .copied()
                .collect::<std::collections::BTreeSet<u64>>();
            let total_bytes: u64 = inner.files.values().map(|f| f.len).sum();
            out_reserve = total_bytes / self.options.log_file_max_bytes.max(1) + 2;
            out_base = inner.next_file;
            let active_id = out_base + out_reserve;
            inner.next_file = active_id + 1;
            let active = Wal::create(vlog_path(&self.dir, active_id), self.options.sync_wal)?;
            inner.files.insert(
                active_id,
                DataFile {
                    reader: open_reader(active.path())?,
                    len: 0,
                    dead_bytes: 0,
                },
            );
            inner.active = active;
            inner.active_id = active_id;
            snapshot = inner
                .index
                .iter()
                .filter(|(_, loc)| sealed_ids.contains(&loc.file_id))
                .map(|(k, loc)| (k.clone(), *loc))
                .collect::<Vec<_>>();
            readers = inner
                .files
                .iter()
                .filter(|(id, _)| sealed_ids.contains(*id))
                .map(|(id, f)| (*id, f.reader.clone()))
                .collect::<BTreeMap<u64, Arc<File>>>();
        }
        // Phase 2 (no lock): rewrite live entries into `.vmerge` outputs.
        // Batches of entries share one record to amortise framing.
        let mut bytes_read = 0u64;
        let mut bytes_written = 0u64;
        let mut new_locs: Vec<(Bytes, ValueLoc)> = Vec::with_capacity(snapshot.len());
        let mut out_ids: Vec<u64> = Vec::new();
        let mut out: Option<Wal> = None;
        let mut group: Vec<(Bytes, u64, u32, u32)> = Vec::new();
        let mut ops_buf: Vec<u8> = Vec::new();
        const GROUP_OPS: usize = 256;
        let mut flush_group = |out: &mut Option<Wal>,
                               group: &mut Vec<(Bytes, u64, u32, u32)>,
                               ops_buf: &mut Vec<u8>,
                               out_ids: &mut Vec<u64>,
                               bytes_written: &mut u64|
         -> Result<()> {
            if group.is_empty() {
                return Ok(());
            }
            let wal = match out {
                Some(w) => w,
                None => {
                    let id = out_base + out_ids.len() as u64;
                    debug_assert!(id < out_base + out_reserve);
                    out_ids.push(id);
                    out.insert(Wal::create(vmerge_path(&self.dir, id), false)?)
                }
            };
            let out_id = *out_ids.last().expect("output id just pushed");
            let mut payload = Vec::with_capacity(8 + ops_buf.len());
            put_uvarint(&mut payload, group.len() as u64);
            let header = payload.len() as u64;
            payload.extend_from_slice(ops_buf);
            let record_off = wal.bytes_written();
            *bytes_written += wal.append(&payload)?;
            for (key, voff, vlen, entry_bytes) in group.drain(..) {
                new_locs.push((
                    key,
                    ValueLoc {
                        file_id: out_id,
                        offset: record_off + 8 + header + voff,
                        len: vlen,
                        entry_bytes,
                    },
                ));
            }
            ops_buf.clear();
            if wal.bytes_written() >= self.options.log_file_max_bytes {
                wal.sync()?;
                *out = None;
            }
            Ok(())
        };
        for (key, loc) in &snapshot {
            let reader = &readers[&loc.file_id];
            let value = read_value(reader, *loc)?;
            bytes_read += u64::from(loc.len);
            let op_start = ops_buf.len();
            ops_buf.push(TAG_PUT);
            put_uvarint(&mut ops_buf, key.len() as u64);
            ops_buf.extend_from_slice(key);
            put_uvarint(&mut ops_buf, value.len() as u64);
            let voff = ops_buf.len() as u64;
            ops_buf.extend_from_slice(&value);
            group.push((
                key.clone(),
                voff,
                value.len() as u32,
                (ops_buf.len() - op_start) as u32,
            ));
            if group.len() >= GROUP_OPS {
                flush_group(
                    &mut out,
                    &mut group,
                    &mut ops_buf,
                    &mut out_ids,
                    &mut bytes_written,
                )?;
            }
        }
        flush_group(
            &mut out,
            &mut group,
            &mut ops_buf,
            &mut out_ids,
            &mut bytes_written,
        )?;
        if let Some(wal) = &mut out {
            wal.sync()?;
        }
        drop(out);
        // Phase 3 (brief write lock): publish outputs, retarget unchanged
        // index entries, drop the inputs. Rename-then-fsync-then-delete
        // ordering makes a crash at any point recoverable: inputs are only
        // removed once every output is durably in place, and replaying both
        // is idempotent.
        {
            let mut inner = self.inner.write();
            let inner = &mut *inner;
            let mut out_files = BTreeMap::new();
            for &id in &out_ids {
                let final_path = vlog_path(&self.dir, id);
                std::fs::rename(vmerge_path(&self.dir, id), &final_path)
                    .map_err(|e| Error::io("publishing compaction output".to_string(), e))?;
                let len = std::fs::metadata(&final_path)
                    .map_err(|e| Error::io("sizing compaction output".to_string(), e))?
                    .len();
                out_files.insert(
                    id,
                    DataFile {
                        reader: open_reader(&final_path)?,
                        len,
                        dead_bytes: 0,
                    },
                );
            }
            if !out_ids.is_empty() {
                fsync_dir(&self.dir)?;
            }
            inner.files.append(&mut out_files);
            for (key, new_loc) in new_locs {
                match inner.index.get(&key) {
                    // Untouched since the snapshot: point it at the merge copy.
                    Some(cur) if sealed_ids.contains(&cur.file_id) => {
                        inner.index.insert(key, new_loc);
                    }
                    // Overwritten or deleted during the merge: the copy we
                    // just wrote is already dead.
                    _ => {
                        if let Some(f) = inner.files.get_mut(&new_loc.file_id) {
                            f.dead_bytes += u64::from(new_loc.entry_bytes);
                        }
                    }
                }
            }
            for id in &sealed_ids {
                inner.files.remove(id);
                // Best-effort: a file that refuses to die replays before the
                // merge output and is shadowed by it, so it is only wasted
                // space, not wrong data.
                let _ = std::fs::remove_file(vlog_path(&self.dir, *id));
            }
        }
        Metrics::incr(&self.metrics.compactions);
        Metrics::add(&self.metrics.compaction_bytes_read, bytes_read);
        Metrics::add(&self.metrics.compaction_bytes_written, bytes_written);
        span.record("bytes_read", bytes_read);
        span.record("bytes_written", bytes_written);
        Ok(())
    }

    /// Write a consistent checkpoint of the store into `dest` (which must
    /// not already contain a store). Data files are copied under the write
    /// lock, so no concurrent writer can interleave; the copy opens as a
    /// normal value-log store.
    pub fn checkpoint(&self, dest: impl Into<PathBuf>) -> Result<()> {
        let dest = dest.into();
        std::fs::create_dir_all(&dest)
            .map_err(|e| Error::io(format!("creating checkpoint dir {}", dest.display()), e))?;
        if dest.join("MANIFEST").exists() || dest.join(ENGINE_MARKER).exists() {
            return Err(Error::InvalidArgument(format!(
                "checkpoint destination {} already holds a store",
                dest.display()
            )));
        }
        let mut inner = self.inner.write();
        inner.active.sync()?;
        for &id in inner.files.keys() {
            let name = format!("{id:06}.vlog");
            std::fs::copy(vlog_path(&self.dir, id), dest.join(&name))
                .map_err(|e| Error::io(format!("copying {name} to checkpoint"), e))?;
        }
        std::fs::write(dest.join(ENGINE_MARKER), "log\n")
            .map_err(|e| Error::io("writing checkpoint backend marker".to_string(), e))?;
        Ok(())
    }

    /// Point-in-time occupancy numbers for live-metrics surfaces: data-file
    /// count, active-file bytes and the dead-byte estimate compaction runs
    /// on. One shared read lock, no I/O.
    pub fn storage_stats(&self) -> StorageStats {
        let inner = self.inner.read();
        StorageStats {
            backend: Backend::Log,
            wal_bytes: inner.active.bytes_written(),
            data_files: inner.files.len() as u64,
            uncompacted_bytes: inner.total_dead_bytes(),
            compactions: self.metrics.snapshot().compactions,
            ..StorageStats::default()
        }
    }

    /// Snapshot of the operation counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The telemetry handle this store records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of data files on disk, sealed plus active (diagnostics/tests).
    pub fn data_file_count(&self) -> usize {
        self.inner.read().files.len()
    }

    /// Number of live keys (diagnostics/tests).
    pub fn key_count(&self) -> usize {
        self.inner.read().index.len()
    }
}

fn read_value(reader: &File, loc: ValueLoc) -> Result<Bytes> {
    if loc.len == 0 {
        return Ok(Bytes::new());
    }
    let mut buf = vec![0u8; loc.len as usize];
    reader
        .read_exact_at(&mut buf, loc.offset)
        .map_err(|e| Error::io(format!("reading value at offset {}", loc.offset), e))?;
    Ok(Bytes::from(buf))
}

/// Snapshot iterator over a key range of a [`LogStore`]; yields live
/// `(key, value)` pairs in ascending key order. Values are read lazily, one
/// `pread` per entry, against reader handles captured at snapshot time.
pub struct LogRangeIter {
    entries: std::vec::IntoIter<(Bytes, ValueLoc, Arc<File>)>,
}

impl LogRangeIter {
    /// Advance and return the next pair, or `None` when exhausted.
    ///
    /// Mirrors `RangeIter::next` on the LSM side: shaped like
    /// `Iterator::next` but fallible, so each step can surface I/O errors.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        match self.entries.next() {
            Some((key, loc, reader)) => Ok(Some((key, read_value(&reader, loc)?))),
            None => Ok(None),
        }
    }

    /// Drain the iterator into a vector (tests / small scans).
    pub fn collect_all(mut self) -> Result<Vec<(Bytes, Bytes)>> {
        let mut out = Vec::new();
        while let Some(kv) = self.next()? {
            out.push(kv);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "vlog-{name}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn opts() -> Options {
        Options {
            // Compact only on request so tests control the file set.
            log_compaction_bytes: 0,
            ..Options::small_for_tests()
        }
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let dir = TempDir::new("roundtrip");
        let db = LogStore::open(&dir.0, opts()).unwrap();
        db.put(&b"a"[..], &b"1"[..]).unwrap();
        db.put(&b"b"[..], &b""[..]).unwrap();
        assert_eq!(db.get(b"a").unwrap().unwrap(), &b"1"[..]);
        assert_eq!(db.get(b"b").unwrap().unwrap(), &b""[..]);
        assert_eq!(db.get(b"missing").unwrap(), None);
        db.put(&b"a"[..], &b"2"[..]).unwrap();
        assert_eq!(db.get(b"a").unwrap().unwrap(), &b"2"[..]);
        db.delete(&b"a"[..]).unwrap();
        assert_eq!(db.get(b"a").unwrap(), None);
    }

    #[test]
    fn batches_are_atomic_units() {
        let dir = TempDir::new("batch");
        let db = LogStore::open(&dir.0, opts()).unwrap();
        let mut b = WriteBatch::new();
        b.put(&b"x"[..], &b"1"[..])
            .delete(&b"x"[..])
            .put(&b"y"[..], &b"2"[..]);
        db.write(b).unwrap();
        assert_eq!(db.get(b"x").unwrap(), None);
        assert_eq!(db.get(b"y").unwrap().unwrap(), &b"2"[..]);
    }

    #[test]
    fn reopen_rebuilds_index_across_rotated_files() {
        let dir = TempDir::new("reopen");
        {
            let db = LogStore::open(&dir.0, opts()).unwrap();
            for i in 0..100 {
                db.put(format!("k{i:03}"), vec![b'v'; 64]).unwrap();
            }
            db.delete(&b"k000"[..]).unwrap();
            db.put(&b"k001"[..], &b"latest"[..]).unwrap();
            assert!(db.data_file_count() > 1, "rotation never happened");
        }
        let db = LogStore::open(&dir.0, opts()).unwrap();
        assert_eq!(db.get(b"k000").unwrap(), None);
        assert_eq!(db.get(b"k001").unwrap().unwrap(), &b"latest"[..]);
        assert_eq!(db.get(b"k099").unwrap().unwrap(), &vec![b'v'; 64][..]);
        assert_eq!(db.key_count(), 99);
    }

    #[test]
    fn range_and_prefix_scans() {
        let dir = TempDir::new("range");
        let db = LogStore::open(&dir.0, opts()).unwrap();
        for key in ["a:1", "a:2", "b:1", "c:1"] {
            db.put(key, key.to_uppercase()).unwrap();
        }
        let all = db
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(all.len(), 4);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        let a = db.prefix(b"a:").unwrap().collect_all().unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(&a[1].1[..], b"A:2");
        // Inverted range is empty, not a panic.
        let none = db
            .range(Bound::Included(&b"z"[..]), Bound::Excluded(&b"a"[..]))
            .unwrap()
            .collect_all()
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn torn_tail_recovers_to_last_whole_record() {
        let dir = TempDir::new("torn");
        {
            let db = LogStore::open(&dir.0, opts()).unwrap();
            db.put(&b"keep"[..], &b"me"[..]).unwrap();
            db.put(&b"lose"[..], &b"me"[..]).unwrap();
        }
        // Tear the last record of the newest data file.
        let newest = newest_vlog(&dir.0);
        let data = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &data[..data.len() - 3]).unwrap();
        let db = LogStore::open(&dir.0, opts()).unwrap();
        assert_eq!(db.get(b"keep").unwrap().unwrap(), &b"me"[..]);
        assert_eq!(db.get(b"lose").unwrap(), None);
    }

    #[test]
    fn damage_before_newer_data_is_corruption() {
        let dir = TempDir::new("midfile");
        {
            let db = LogStore::open(&dir.0, opts()).unwrap();
            for i in 0..100 {
                db.put(format!("k{i:03}"), vec![b'v'; 64]).unwrap();
            }
            assert!(db.data_file_count() > 2);
        }
        let oldest = oldest_vlog(&dir.0);
        let data = std::fs::read(&oldest).unwrap();
        std::fs::write(&oldest, &data[..data.len() - 3]).unwrap();
        let err = LogStore::open(&dir.0, opts()).unwrap_err();
        assert!(matches!(err, Error::Corruption { .. }), "{err}");
    }

    #[test]
    fn compaction_reclaims_dead_bytes_and_preserves_live_keys() {
        let dir = TempDir::new("compact");
        let db = LogStore::open(&dir.0, opts()).unwrap();
        // Overwrite a small key set many times: almost everything is dead.
        for round in 0..20 {
            for i in 0..10 {
                db.put(format!("k{i}"), format!("round-{round}-{i}").repeat(8))
                    .unwrap();
            }
        }
        db.delete(&b"k9"[..]).unwrap();
        let before = db.storage_stats();
        assert!(before.uncompacted_bytes > 0);
        let files_before = db.data_file_count();
        assert!(files_before > 2);
        db.compact().unwrap();
        let after = db.storage_stats();
        assert_eq!(after.uncompacted_bytes, 0);
        assert_eq!(after.compactions, 1);
        assert!(
            db.data_file_count() < files_before,
            "{} !< {files_before}",
            db.data_file_count()
        );
        for i in 0..9 {
            assert_eq!(
                db.get(format!("k{i}").as_bytes()).unwrap().unwrap(),
                format!("round-19-{i}").repeat(8).as_bytes()
            );
        }
        assert_eq!(db.get(b"k9").unwrap(), None);
        // Survives reopen: the merge output is a normal data file.
        drop(db);
        let db = LogStore::open(&dir.0, opts()).unwrap();
        assert_eq!(db.key_count(), 9);
        assert_eq!(
            db.get(b"k0").unwrap().unwrap(),
            "round-19-0".repeat(8).as_bytes()
        );
    }

    #[test]
    fn automatic_compaction_bounds_dead_bytes() {
        let dir = TempDir::new("auto-compact");
        let db = LogStore::open(
            &dir.0,
            Options {
                log_compaction_bytes: 4096,
                ..Options::small_for_tests()
            },
        )
        .unwrap();
        for round in 0..50 {
            db.put(&b"hot"[..], format!("{round}").repeat(64)).unwrap();
        }
        let stats = db.storage_stats();
        assert!(stats.compactions >= 1, "never auto-compacted: {stats:?}");
        // The threshold bounds the dead backlog (one write may overshoot).
        assert!(
            stats.uncompacted_bytes < 4096 + 1024,
            "dead bytes unbounded: {stats:?}"
        );
        assert_eq!(db.get(b"hot").unwrap().unwrap(), "49".repeat(64).as_bytes());
    }

    #[test]
    fn scans_survive_concurrent_compaction() {
        let dir = TempDir::new("scan-compact");
        let db = LogStore::open(&dir.0, opts()).unwrap();
        for i in 0..50 {
            db.put(format!("k{i:02}"), vec![b'x'; 100]).unwrap();
        }
        let iter = db.range(Bound::Unbounded, Bound::Unbounded).unwrap();
        // Invalidate everything the iterator points at.
        for i in 0..50 {
            db.put(format!("k{i:02}"), vec![b'y'; 100]).unwrap();
        }
        db.compact().unwrap();
        // The snapshot still reads the old values from deleted files.
        let all = iter.collect_all().unwrap();
        assert_eq!(all.len(), 50);
        assert!(all.iter().all(|(_, v)| v[..] == vec![b'x'; 100][..]));
    }

    #[test]
    fn write_many_coalesces_fsyncs() {
        let dir = TempDir::new("write-many");
        let db = LogStore::open(
            &dir.0,
            Options {
                sync_wal: true,
                log_compaction_bytes: 0,
                ..Options::small_for_tests()
            },
        )
        .unwrap();
        let batches: Vec<WriteBatch> = (0..8)
            .map(|i| {
                let mut b = WriteBatch::new();
                b.put(format!("k{i}"), format!("v{i}"));
                b
            })
            .collect();
        db.write_many(batches).unwrap();
        let m = db.metrics();
        assert_eq!(m.puts, 8);
        assert_eq!(m.wal_fsyncs, 1, "cross-batch group commit must coalesce");
        for i in 0..8 {
            assert_eq!(
                db.get(format!("k{i}").as_bytes()).unwrap().unwrap(),
                format!("v{i}").as_bytes()
            );
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let dir = TempDir::new("ckpt");
        let dest = TempDir::new("ckpt-dest");
        let db = LogStore::open(&dir.0, opts()).unwrap();
        for i in 0..30 {
            db.put(format!("k{i:02}"), format!("v{i}")).unwrap();
        }
        db.delete(&b"k00"[..]).unwrap();
        db.checkpoint(&dest.0).unwrap();
        // Destination already holding a store is refused.
        let err = db.checkpoint(&dest.0).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)), "{err}");
        // Source keeps writing; the checkpoint is frozen.
        db.put(&b"k01"[..], &b"newer"[..]).unwrap();
        let copy = LogStore::open(&dest.0, opts()).unwrap();
        assert_eq!(copy.get(b"k00").unwrap(), None);
        assert_eq!(copy.get(b"k01").unwrap().unwrap(), &b"v1"[..]);
        assert_eq!(copy.key_count(), 29);
    }

    #[test]
    fn stats_report_log_shape() {
        let dir = TempDir::new("stats");
        let db = LogStore::open(&dir.0, opts()).unwrap();
        db.put(&b"k"[..], &b"v"[..]).unwrap();
        db.put(&b"k"[..], &b"w"[..]).unwrap();
        let stats = db.storage_stats();
        assert_eq!(stats.backend, Backend::Log);
        assert!(stats.data_files >= 1);
        assert!(stats.wal_bytes > 0);
        assert!(stats.uncompacted_bytes > 0, "overwrite left no dead bytes");
        assert_eq!(stats.sstables, 0);
        assert_eq!(stats.memtable_entries, 0);
    }

    #[test]
    fn interrupted_merge_leftovers_are_discarded() {
        let dir = TempDir::new("vmerge");
        {
            let db = LogStore::open(&dir.0, opts()).unwrap();
            db.put(&b"k"[..], &b"v"[..]).unwrap();
        }
        std::fs::write(dir.0.join("000099.vmerge"), b"half-written").unwrap();
        let db = LogStore::open(&dir.0, opts()).unwrap();
        assert_eq!(db.get(b"k").unwrap().unwrap(), &b"v"[..]);
        assert!(!dir.0.join("000099.vmerge").exists());
    }

    fn newest_vlog(dir: &Path) -> PathBuf {
        vlogs(dir)
            .into_iter()
            .max()
            .map(|id| vlog_path(dir, id))
            .unwrap()
    }

    fn oldest_vlog(dir: &Path) -> PathBuf {
        vlogs(dir)
            .into_iter()
            .min()
            .map(|id| vlog_path(dir, id))
            .unwrap()
    }

    fn vlogs(dir: &Path) -> Vec<u64> {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| {
                e.unwrap()
                    .file_name()
                    .to_str()
                    .and_then(|n| n.strip_suffix(".vlog").map(str::to_string))
            })
            .map(|stem| stem.parse().unwrap())
            .collect()
    }
}
