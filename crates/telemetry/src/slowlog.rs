//! Slow-query log: JSONL records for anomalously slow root spans.
//!
//! When a *root* span (no parent — a whole `query.ferry`, a whole
//! `tqf.key`/`m1.key`/`m2.key` retrieval, a whole `ledger.commit`)
//! finishes slower than a configured threshold, the full span tree is
//! reassembled from the [flight recorder](crate::flight) and dumped as one
//! JSON line to a sink (a file, stderr, or an in-memory buffer in tests).
//!
//! The threshold is the max of an absolute floor and, optionally, a
//! p99-relative bound: with [`SlowLogConfig::p99_factor`] set, a span is
//! slow once its duration exceeds `factor × p99` of its own name's latency
//! histogram (ignored until [`SlowLogConfig::min_samples`] samples exist,
//! so cold starts don't spam the log). The absolute floor keeps
//! microsecond-scale spans out of the log even when they are relative
//! outliers.
//!
//! Each record carries the root's name/label/duration, the threshold that
//! fired, the reassembled span tree with per-span metrics (the metrics are
//! the I/O deltas the instrumentation attaches — blocks deserialized, GHFK
//! calls, records produced), and a monotone sequence number.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::export::json_escape;
use crate::histogram::HistogramSnapshot;
use crate::span::{SpanNode, SpanRecord};

/// When a root span is considered slow. See the module docs.
#[derive(Debug, Clone, Copy)]
pub struct SlowLogConfig {
    /// Absolute threshold in nanoseconds; a root span at least this slow
    /// is always logged. Also the floor under the p99-relative bound.
    pub threshold_ns: u64,
    /// Optional p99-relative bound: log when `dur > factor × p99(name)`.
    pub p99_factor: Option<f64>,
    /// Samples a span-name histogram needs before the p99 bound applies.
    pub min_samples: u64,
}

impl Default for SlowLogConfig {
    fn default() -> Self {
        SlowLogConfig {
            threshold_ns: 100_000_000, // 100ms
            p99_factor: None,
            min_samples: 32,
        }
    }
}

impl SlowLogConfig {
    /// Absolute-only config with a millisecond threshold.
    pub fn threshold_ms(ms: u64) -> Self {
        SlowLogConfig {
            threshold_ns: ms.saturating_mul(1_000_000),
            ..Self::default()
        }
    }

    /// The effective threshold for a span given its latency histogram:
    /// `max(threshold_ns, factor × p99)` once enough samples exist,
    /// otherwise just the absolute floor.
    pub fn effective_threshold(&self, hist: Option<&HistogramSnapshot>) -> u64 {
        match (self.p99_factor, hist) {
            (Some(factor), Some(h)) if h.count >= self.min_samples => {
                let relative = (h.p99() as f64 * factor) as u64;
                self.threshold_ns.max(relative)
            }
            _ => self.threshold_ns,
        }
    }
}

/// An installed slow-query log: config plus a line sink.
pub struct SlowLog {
    config: SlowLogConfig,
    sink: Mutex<Box<dyn Write + Send>>,
    records: AtomicU64,
}

impl std::fmt::Debug for SlowLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("config", &self.config)
            .field("records", &self.records_written())
            .finish()
    }
}

impl SlowLog {
    /// A slow log writing JSONL records to `sink`.
    pub fn new(config: SlowLogConfig, sink: Box<dyn Write + Send>) -> Self {
        SlowLog {
            config,
            sink: Mutex::new(sink),
            records: AtomicU64::new(0),
        }
    }

    /// The installed config.
    pub fn config(&self) -> &SlowLogConfig {
        &self.config
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Emit one record (the caller has already decided it is slow).
    pub fn log(&self, tree: &SpanNode, threshold_ns: u64) {
        let seq = self.records.fetch_add(1, Ordering::Relaxed);
        let line = render_slow_record(tree, threshold_ns, seq);
        let mut sink = self.sink.lock();
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }
}

/// One flat span as a JSON object (no children).
pub fn span_json(record: &SpanRecord) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"id\":{},\"trace\":{},\"thread\":{},\"name\":\"{}\"",
        record.id,
        record.trace,
        record.thread,
        json_escape(record.name)
    );
    if let Some(parent) = record.parent {
        let _ = write!(out, ",\"parent\":{parent}");
    }
    if let Some(label) = &record.label {
        let _ = write!(out, ",\"label\":\"{}\"", json_escape(label));
    }
    let _ = write!(
        out,
        ",\"start_ns\":{},\"dur_ns\":{}",
        record.start_ns, record.dur_ns
    );
    // Allocation charges from the counting allocator: omitted when all
    // zero (no allocator installed) so existing consumers see no change.
    if record.alloc_bytes > 0 || record.alloc_calls > 0 || record.peak_bytes > 0 {
        let _ = write!(
            out,
            ",\"alloc_bytes\":{},\"alloc_calls\":{},\"peak_bytes\":{}",
            record.alloc_bytes, record.alloc_calls, record.peak_bytes
        );
    }
    if !record.metrics.is_empty() {
        out.push_str(",\"metrics\":{");
        for (i, (m, v)) in record.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(m));
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// A span tree as nested JSON (`children` arrays).
pub fn tree_json(node: &SpanNode) -> String {
    let mut out = span_json(&node.record);
    if !node.children.is_empty() {
        out.pop(); // reopen the object
        out.push_str(",\"children\":[");
        for (i, child) in node.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&tree_json(child));
        }
        out.push_str("]}");
    }
    out
}

/// One slow-query JSONL record.
pub fn render_slow_record(tree: &SpanNode, threshold_ns: u64, seq: u64) -> String {
    use std::fmt::Write as _;
    let root = &tree.record;
    let mut out = String::from("{\"kind\":\"slow_query\"");
    let _ = write!(
        out,
        ",\"seq\":{seq},\"name\":\"{}\"",
        json_escape(root.name)
    );
    if let Some(label) = &root.label {
        let _ = write!(out, ",\"label\":\"{}\"", json_escape(label));
    }
    let _ = write!(
        out,
        ",\"trace\":{},\"dur_ns\":{},\"threshold_ns\":{threshold_ns},\"start_ns\":{},\"spans\":{}",
        root.trace,
        root.dur_ns,
        root.start_ns,
        count_spans(tree)
    );
    // Hoist the planner's decision (chosen engine + certified bounds) to
    // the top level so a slow query is attributable to a misprediction
    // without digging through the tree or re-running `tfq analyze`.
    if let Some(choice) = find_named(tree, "planner.choice") {
        out.push_str(",\"planner\":{");
        let mut first = true;
        if let Some(label) = &choice.label {
            let _ = write!(out, "\"engine\":\"{}\"", json_escape(label));
            first = false;
        }
        for (m, v) in &choice.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", json_escape(m));
        }
        out.push('}');
    }
    let _ = write!(out, ",\"tree\":{}", tree_json(tree));
    out.push('}');
    out
}

/// Depth-first search for the first span named `name` in the tree.
fn find_named<'a>(node: &'a SpanNode, name: &str) -> Option<&'a SpanRecord> {
    if node.record.name == name {
        return Some(&node.record);
    }
    node.children.iter().find_map(|c| find_named(c, name))
}

fn count_spans(node: &SpanNode) -> usize {
    1 + node.children.iter().map(count_spans).sum::<usize>()
}

/// An in-memory sink for tests: lines written through the returned writer
/// accumulate in the shared buffer.
pub fn memory_sink() -> (
    std::sync::Arc<Mutex<Vec<u8>>>,
    Box<dyn Write + Send + 'static>,
) {
    struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let buffer = std::sync::Arc::new(Mutex::new(Vec::new()));
    (buffer.clone(), Box::new(Shared(buffer)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &'static str, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            trace: 1,
            thread: 1,
            name,
            label: None,
            start_ns: id,
            dur_ns,
            metrics: Vec::new(),
            alloc_bytes: 0,
            alloc_calls: 0,
            peak_bytes: 0,
        }
    }

    #[test]
    fn alloc_fields_render_when_charged() {
        let mut r = rec(1, None, "query.ferry", 9_000);
        r.alloc_bytes = 123_456;
        r.alloc_calls = 42;
        r.peak_bytes = 65_536;
        let json = span_json(&r);
        assert!(
            json.contains("\"alloc_bytes\":123456,\"alloc_calls\":42,\"peak_bytes\":65536"),
            "{json}"
        );
        // All-zero records stay byte-compatible with the pre-accounting
        // format.
        assert!(
            !span_json(&rec(2, None, "q", 1)).contains("alloc"),
            "{json}"
        );
    }

    #[test]
    fn planner_choice_is_hoisted_to_top_level() {
        let root = rec(1, None, "tqf.key", 9_000);
        let mut choice = rec(2, Some(1), "planner.choice", 10);
        choice.label = Some("Auto→M1".into());
        choice.metrics.push(("tqf_blocks_hi", 40));
        choice.metrics.push(("m1_blocks_hi", 6));
        let tree = SpanNode {
            record: root,
            children: vec![SpanNode {
                record: choice,
                children: vec![],
            }],
        };
        let line = render_slow_record(&tree, 5_000, 0);
        assert!(
            line.contains(
                "\"planner\":{\"engine\":\"Auto→M1\",\"tqf_blocks_hi\":40,\"m1_blocks_hi\":6}"
            ),
            "{line}"
        );
    }

    #[test]
    fn absolute_threshold_without_histogram() {
        let cfg = SlowLogConfig::threshold_ms(5);
        assert_eq!(cfg.effective_threshold(None), 5_000_000);
    }

    #[test]
    fn p99_bound_waits_for_samples_and_respects_floor() {
        let cfg = SlowLogConfig {
            threshold_ns: 1_000,
            p99_factor: Some(2.0),
            min_samples: 4,
        };
        let h = crate::Histogram::new();
        h.record(1_000_000);
        assert_eq!(
            cfg.effective_threshold(Some(&h.snapshot())),
            1_000,
            "below min_samples only the floor applies"
        );
        for _ in 0..8 {
            h.record(1_000_000);
        }
        let snap = h.snapshot();
        let t = cfg.effective_threshold(Some(&snap));
        assert!(
            t >= 2 * snap.p99() - 2 && t > 1_000,
            "t={t} p99={}",
            snap.p99()
        );
    }

    #[test]
    fn record_json_has_tree_and_metrics() {
        let mut root = rec(1, None, "query.ferry", 9_000);
        root.label = Some("TQF".into());
        root.metrics.push(("blocks", 7));
        let child = rec(2, Some(1), "ghfk", 4_000);
        let tree = SpanNode {
            record: root,
            children: vec![SpanNode {
                record: child,
                children: vec![],
            }],
        };
        let line = render_slow_record(&tree, 5_000, 3);
        assert!(line.contains("\"kind\":\"slow_query\""));
        assert!(line.contains("\"seq\":3"));
        assert!(line.contains("\"name\":\"query.ferry\""));
        assert!(line.contains("\"label\":\"TQF\""));
        assert!(line.contains("\"threshold_ns\":5000"));
        assert!(line.contains("\"spans\":2"));
        assert!(line.contains("\"metrics\":{\"blocks\":7}"));
        assert!(line.contains("\"children\":[{\"id\":2"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn sink_accumulates_lines() {
        let (buffer, sink) = memory_sink();
        let log = SlowLog::new(SlowLogConfig::threshold_ms(1), sink);
        let tree = SpanNode {
            record: rec(1, None, "q", 2_000_000),
            children: vec![],
        };
        log.log(&tree, 1_000_000);
        log.log(&tree, 1_000_000);
        assert_eq!(log.records_written(), 2);
        let text = String::from_utf8(buffer.lock().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text
            .lines()
            .all(|l| l.starts_with("{\"kind\":\"slow_query\"")));
    }
}
