//! Backpressure probes for bounded queues.
//!
//! Every bounded channel in the stack — the pipelined-commit stage
//! channels, the parallel fan-out slots, the WAL group-commit queue — is
//! a place where the system absorbs, and eventually signals, overload. A
//! [`QueueProbe`] makes that visible on `/metrics` with four instruments
//! per queue:
//!
//! * `queue.<name>.depth` (gauge) — items currently buffered;
//! * `queue.<name>.send_wait_ns` (histogram) — how long producers block
//!   enqueueing (non-zero means the consumer is the bottleneck);
//! * `queue.<name>.drain_wait_ns` (histogram) — how long consumers block
//!   waiting for an item (non-zero means the producer is the bottleneck);
//! * `queue.<name>.items` (counter) — total items enqueued.
//!
//! Instrument handles are resolved once at probe construction, so the
//! per-operation cost is one relaxed atomic load (the enabled flag) when
//! telemetry is off, and two `Instant` reads plus a few relaxed atomics
//! when on. Depth is tracked only while telemetry is enabled; toggling
//! the flag mid-stream can therefore leave the gauge transiently skewed —
//! it re-centres once in-flight items drain.

use std::sync::Arc;
use std::time::Instant;

use crate::histogram::Histogram;
use crate::registry::{Counter, Gauge};
use crate::Telemetry;

/// Instruments one bounded queue. Cheap to clone (shared handles).
#[derive(Clone)]
pub struct QueueProbe {
    tel: Telemetry,
    depth: Arc<Gauge>,
    depth_name: Arc<str>,
    send_wait: Arc<Histogram>,
    drain_wait: Arc<Histogram>,
    items: Arc<Counter>,
}

impl QueueProbe {
    /// A probe for the queue named `queue` (instruments are registered as
    /// `queue.<queue>.*` in `tel`'s registry).
    pub fn new(tel: &Telemetry, queue: &str) -> Self {
        let reg = tel.registry();
        let depth_name = format!("queue.{queue}.depth");
        QueueProbe {
            tel: tel.clone(),
            depth: reg.gauge_owned(depth_name.clone()),
            depth_name: depth_name.into(),
            send_wait: reg.histogram_owned(format!("queue.{queue}.send_wait_ns")),
            drain_wait: reg.histogram_owned(format!("queue.{queue}.drain_wait_ns")),
            items: reg.counter_owned(format!("queue.{queue}.items")),
        }
    }

    /// Whether the probe records anything right now.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.tel.is_enabled()
    }

    /// Mirror the current depth onto the Chrome counter track, when track
    /// sampling is on (off by default — one relaxed load otherwise).
    #[inline]
    fn sample_depth(&self) {
        self.tel
            .record_track_point(&self.depth_name, self.depth.get());
    }

    /// Run a (possibly blocking) enqueue, recording the time it blocked
    /// and bumping depth. Depth is raised *before* the send so it counts
    /// producers blocked on a full queue and — because the matching
    /// decrement can only happen after the item became receivable — the
    /// gauge can never go negative under any producer/consumer
    /// interleaving. The closure's result passes through untouched; a
    /// failed send (closed channel) still counts — shutdown races skew
    /// the gauge by at most the few in-flight items.
    #[inline]
    pub fn send<R>(&self, send: impl FnOnce() -> R) -> R {
        if !self.is_live() {
            return send();
        }
        self.depth.add(1);
        let t0 = Instant::now();
        let out = send();
        self.send_wait.record(t0.elapsed().as_nanos() as u64);
        self.items.incr();
        self.sample_depth();
        out
    }

    /// Run a (possibly blocking) dequeue, recording the time it waited
    /// and dropping depth.
    #[inline]
    pub fn recv<R>(&self, recv: impl FnOnce() -> R) -> R {
        if !self.is_live() {
            return recv();
        }
        let t0 = Instant::now();
        let out = recv();
        self.drain_wait.record(t0.elapsed().as_nanos() as u64);
        self.depth.add(-1);
        self.sample_depth();
        out
    }

    /// Manual path for condvar-style queues (the WAL group-commit queue):
    /// an item was pushed under the queue lock.
    pub fn enqueued(&self) {
        if self.is_live() {
            self.depth.add(1);
            self.items.incr();
            self.sample_depth();
        }
    }

    /// Manual path: a waiter spent `ns` blocked from enqueue to service.
    pub fn send_waited_ns(&self, ns: u64) {
        if self.is_live() {
            self.send_wait.record(ns);
        }
    }

    /// Manual path: a leader/consumer drained `n` items in one go, after
    /// waiting `wait_ns` for them.
    pub fn drained(&self, n: u64, wait_ns: u64) {
        if self.is_live() {
            self.depth.add(-(n as i64));
            self.drain_wait.record(wait_ns);
            self.sample_depth();
        }
    }

    /// Current buffered depth (as tracked by this probe).
    pub fn depth(&self) -> i64 {
        self.depth.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_track_depth_and_waits() {
        let tel = Telemetry::enabled();
        let probe = QueueProbe::new(&tel, "pipeline.append");
        let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(4);
        probe.send(|| tx.send(1)).unwrap();
        probe.send(|| tx.send(2)).unwrap();
        assert_eq!(probe.depth(), 2);
        assert_eq!(probe.recv(|| rx.recv()).unwrap(), 1);
        assert_eq!(probe.depth(), 1);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("queue.pipeline.append.items"), 2);
        assert_eq!(snap.gauge("queue.pipeline.append.depth"), Some(1));
        assert_eq!(
            snap.histogram("queue.pipeline.append.send_wait_ns")
                .unwrap()
                .count,
            2
        );
        assert_eq!(
            snap.histogram("queue.pipeline.append.drain_wait_ns")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn disabled_probe_is_passthrough() {
        let tel = Telemetry::disabled();
        let probe = QueueProbe::new(&tel, "q");
        assert_eq!(probe.send(|| 7), 7);
        assert_eq!(probe.recv(|| 8), 8);
        probe.enqueued();
        probe.drained(1, 99);
        assert_eq!(probe.depth(), 0);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("queue.q.items"), 0);
        assert!(snap.histograms.iter().all(|(_, h)| h.count == 0));
    }

    #[test]
    fn manual_path_models_group_commit() {
        let tel = Telemetry::enabled();
        let probe = QueueProbe::new(&tel, "kv.group");
        probe.enqueued();
        probe.enqueued();
        probe.enqueued();
        probe.send_waited_ns(500);
        probe.drained(3, 120);
        assert_eq!(probe.depth(), 0);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("queue.kv.group.items"), 3);
        assert_eq!(
            snap.histogram("queue.kv.group.drain_wait_ns")
                .unwrap()
                .count,
            1
        );
    }
}
