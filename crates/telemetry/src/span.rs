//! Hierarchical spans.
//!
//! A [`SpanGuard`] measures the wall-clock time between its creation and
//! its drop. Parent/child relationships are inferred from a thread-local
//! "current span" cell: a span opened while another guard is alive on the
//! same thread records that guard's id as its parent. The cell stores a
//! `(telemetry-instance, span-id)` pair so that two independent
//! [`Telemetry`] handles on the same thread never adopt each other's
//! spans.
//!
//! Guards restore the previous cell value on drop, so the common
//! strictly-nested case behaves like a stack. Guards held in structs
//! (e.g. a lazy iterator keeping its query span open across `next()`
//! calls) also work: children attach for as long as the guard lives. The
//! one caveat is interleaved non-nested drops on one thread, where the
//! restored value may be stale — links degrade to "no parent" rather
//! than corrupting the tree.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::export::fmt_ns;
use crate::Telemetry;

thread_local! {
    /// `(instance tag, span id, trace id)` of the innermost live span on
    /// this thread.
    static CURRENT: Cell<Option<(usize, u64, u64)>> = const { Cell::new(None) };
}

/// Process-wide monotone thread numbering, used only for trace lanes —
/// small, stable ids beat `ThreadId`'s opaque debug formatting.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_LANE: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Small, stable id of the calling thread (1-based, process-wide).
pub fn thread_lane() -> u64 {
    THREAD_LANE.with(|t| *t)
}

/// A handoff token carrying a live span's identity across threads.
///
/// Captured via [`SpanGuard::context`] (or [`Telemetry::current_context`])
/// on the submitting thread and redeemed with [`Telemetry::span_in`] on a
/// worker thread, it makes the worker's span a child of the originating
/// span — a `follows_from` edge — so pipelined stages and fan-out workers
/// stitch into the same trace instead of becoming orphan roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    pub(crate) tag: usize,
    pub(crate) span: u64,
    pub(crate) trace: u64,
}

impl SpanContext {
    /// Id of the span this context points at.
    pub fn span_id(&self) -> u64 {
        self.span
    }

    /// Id of the trace (the root span's id) this context belongs to.
    pub fn trace_id(&self) -> u64 {
        self.trace
    }
}

/// A finished span: timing, tree linkage, and attached metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within one [`Telemetry`] instance.
    pub id: u64,
    /// Id of the span that was open on this thread when this one started,
    /// or that was handed off explicitly via [`SpanContext`].
    pub parent: Option<u64>,
    /// Id of the root span of the trace this span belongs to. A root
    /// span's trace id is its own id; children inherit it from their
    /// parent, including across thread handoffs.
    pub trace: u64,
    /// Lane id of the thread the span ran on (see [`thread_lane`]).
    pub thread: u64,
    /// Static span name, e.g. `"ghfk"` or `"block.deserialize"`.
    pub name: &'static str,
    /// Optional dynamic label, e.g. the key being iterated.
    pub label: Option<String>,
    /// Start time in nanoseconds relative to the telemetry epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Named metrics attached via [`SpanGuard::record`], summed per name.
    pub metrics: Vec<(&'static str, u64)>,
    /// Bytes allocated on the span's thread while it was open (zero when
    /// no [counting allocator](crate::alloc) is installed). Includes
    /// same-thread children, excludes fanned-out worker threads.
    pub alloc_bytes: u64,
    /// Allocator calls on the span's thread while it was open.
    pub alloc_calls: u64,
    /// High-water mark of net live bytes on the span's thread relative
    /// to span start (see [`crate::alloc`]).
    pub peak_bytes: u64,
}

impl SpanRecord {
    /// Value of an attached metric, if any.
    pub fn metric(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

struct Active {
    tel: Telemetry,
    id: u64,
    parent: Option<u64>,
    trace: u64,
    /// Previous thread-local value, restored on drop.
    prev: Option<(usize, u64, u64)>,
    name: &'static str,
    label: Option<String>,
    metrics: Vec<(&'static str, u64)>,
    start_ns: u64,
    start: Instant,
    /// Thread allocation counters at open (None without a counting
    /// allocator); closed out on drop into the record's alloc fields.
    alloc: Option<crate::alloc::AllocMark>,
    /// Whether a profiler shadow-stack frame was pushed and a pop is owed.
    profiled: bool,
}

/// RAII guard for a live span. Records a [`SpanRecord`] on drop, or
/// nothing at all if telemetry was disabled when it was created.
#[must_use = "a span measures the time until this guard is dropped"]
pub struct SpanGuard(Option<Active>);

impl SpanGuard {
    /// A guard that records nothing (telemetry disabled).
    #[inline]
    pub fn inert() -> Self {
        SpanGuard(None)
    }

    pub(crate) fn start(tel: Telemetry, name: &'static str) -> Self {
        Self::start_inner(tel, name, None)
    }

    /// Open a span whose parent is the span behind `follows`, regardless of
    /// what is live on this thread. Used for cross-thread handoffs.
    pub(crate) fn start_in(tel: Telemetry, name: &'static str, follows: SpanContext) -> Self {
        Self::start_inner(tel, name, Some(follows))
    }

    fn start_inner(tel: Telemetry, name: &'static str, follows: Option<SpanContext>) -> Self {
        let tag = tel.inner_ptr();
        let id = tel.next_span_id();
        // An explicit handoff token wins over the thread-local cell; a
        // token minted by a different Telemetry instance is ignored.
        let (parent, trace) = match follows.filter(|f| f.tag == tag) {
            Some(f) => (Some(f.span), f.trace),
            None => {
                let inherited = CURRENT.with(|c| c.get());
                match inherited {
                    Some((t, pid, trace)) if t == tag => (Some(pid), trace),
                    _ => (None, id),
                }
            }
        };
        let prev = CURRENT.with(|c| c.replace(Some((tag, id, trace))));
        let profiled = crate::profile::push_frame(name);
        let alloc = crate::alloc::span_enter();
        let start_ns = tel.now_ns();
        SpanGuard(Some(Active {
            tel,
            id,
            parent,
            trace,
            prev,
            name,
            label: None,
            metrics: Vec::new(),
            start_ns,
            start: Instant::now(),
            alloc,
            profiled,
        }))
    }

    /// Whether this guard will record a span (i.e. telemetry was enabled).
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// A handoff token for this live span, suitable for crossing threads.
    /// `None` for inert guards.
    pub fn context(&self) -> Option<SpanContext> {
        self.0.as_ref().map(|a| SpanContext {
            tag: a.tel.inner_ptr(),
            span: a.id,
            trace: a.trace,
        })
    }

    /// Attach a dynamic label (e.g. the key under iteration).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        if let Some(a) = self.0.as_mut() {
            a.label = Some(label.into());
        }
        self
    }

    /// Add `n` to the named metric on this span (summed per name).
    pub fn record(&mut self, metric: &'static str, n: u64) {
        if let Some(a) = self.0.as_mut() {
            match a.metrics.iter_mut().find(|(m, _)| *m == metric) {
                Some((_, v)) => *v += n,
                None => a.metrics.push((metric, n)),
            }
        }
    }

    /// Close the span without recording it (e.g. the measured operation
    /// failed and must not count). Restores the thread-local parent link.
    pub fn cancel(mut self) {
        if let Some(a) = self.0.take() {
            CURRENT.with(|c| c.set(a.prev));
            if let Some(mark) = a.alloc {
                let _ = crate::alloc::span_exit(mark); // restore parent peak
            }
            if a.profiled {
                crate::profile::pop_frame();
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            let dur_ns = a.start.elapsed().as_nanos() as u64;
            CURRENT.with(|c| c.set(a.prev));
            let alloc = a.alloc.map(crate::alloc::span_exit).unwrap_or_default();
            if a.profiled {
                crate::profile::pop_frame();
            }
            a.tel.push_span(SpanRecord {
                id: a.id,
                parent: a.parent,
                trace: a.trace,
                thread: thread_lane(),
                name: a.name,
                label: a.label,
                start_ns: a.start_ns,
                dur_ns,
                metrics: a.metrics,
                alloc_bytes: alloc.bytes,
                alloc_calls: alloc.calls,
                peak_bytes: alloc.peak_bytes,
            });
        }
    }
}

/// The innermost live span on this thread that belongs to the telemetry
/// instance tagged `tag`, as a handoff token.
pub(crate) fn current_context_for(tag: usize) -> Option<SpanContext> {
    CURRENT.with(|c| c.get()).and_then(|(t, span, trace)| {
        (t == tag).then_some(SpanContext {
            tag: t,
            span,
            trace,
        })
    })
}

/// One node of an assembled span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Spans whose parent is this span, ordered by start time.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth of the subtree rooted here (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(SpanNode::depth).max().unwrap_or(0)
    }

    /// Number of spans named `name` in this subtree (including self).
    pub fn count_named(&self, name: &str) -> usize {
        usize::from(self.record.name == name)
            + self
                .children
                .iter()
                .map(|c| c.count_named(name))
                .sum::<usize>()
    }

    /// Sum of metric `name` over this subtree (including self).
    pub fn total_metric(&self, name: &str) -> u64 {
        self.record.metric(name).unwrap_or(0)
            + self
                .children
                .iter()
                .map(|c| c.total_metric(name))
                .sum::<u64>()
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, root: bool) {
        if root {
            out.push_str(prefix);
        } else {
            let _ = write!(out, "{prefix}{}", if last { "└─ " } else { "├─ " });
        }
        out.push_str(self.record.name);
        if let Some(label) = &self.record.label {
            let _ = write!(out, "[{label}]");
        }
        let _ = write!(out, "  {}", fmt_ns(self.record.dur_ns));
        for (m, v) in &self.record.metrics {
            let _ = write!(out, "  {m}={v}");
        }
        out.push('\n');
        let child_prefix = if root {
            prefix.to_string()
        } else {
            format!("{prefix}{}", if last { "   " } else { "│  " })
        };
        let n = self.children.len();
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &child_prefix, i + 1 == n, false);
        }
    }
}

/// Assemble flat records (ordered by start time) into parent→child trees.
/// Records whose parent is absent from the batch become roots.
pub fn build_tree(records: Vec<SpanRecord>) -> Vec<SpanNode> {
    let ids: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
    let mut children_of: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    let mut roots = Vec::new();
    for r in records {
        match r.parent.filter(|p| ids.contains(p)) {
            Some(p) => children_of.entry(p).or_default().push(r),
            None => roots.push(r),
        }
    }
    fn build(record: SpanRecord, children_of: &mut HashMap<u64, Vec<SpanRecord>>) -> SpanNode {
        let children = children_of
            .remove(&record.id)
            .map(|kids| kids.into_iter().map(|k| build(k, children_of)).collect())
            .unwrap_or_default();
        SpanNode { record, children }
    }
    roots
        .into_iter()
        .map(|r| build(r, &mut children_of))
        .collect()
}

/// Render a forest of spans as an indented text tree.
pub fn render_tree(nodes: &[SpanNode]) -> String {
    let mut out = String::new();
    let n = nodes.len();
    for (i, node) in nodes.iter().enumerate() {
        node.render_into(&mut out, "", i + 1 == n, true);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &'static str, start_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            trace: parent.unwrap_or(id),
            thread: 1,
            name,
            label: None,
            start_ns,
            dur_ns: 10,
            metrics: Vec::new(),
            alloc_bytes: 0,
            alloc_calls: 0,
            peak_bytes: 0,
        }
    }

    #[test]
    fn handoff_token_parents_across_threads() {
        let tel = Telemetry::enabled();
        let ctx = {
            let root = tel.span("commit");
            let ctx = root.context().unwrap();
            let tel2 = tel.clone();
            std::thread::spawn(move || {
                let _w = tel2.span_in("commit.append", Some(ctx));
                let _inner = tel2.span("kv.wal.append");
            })
            .join()
            .unwrap();
            ctx
        };
        let spans = tel.drain_spans();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "commit").unwrap();
        let worker = spans.iter().find(|s| s.name == "commit.append").unwrap();
        let inner = spans.iter().find(|s| s.name == "kv.wal.append").unwrap();
        assert_eq!(ctx.trace_id(), root.id, "root's trace id is its own id");
        assert_eq!(worker.parent, Some(root.id), "handoff sets the parent");
        assert_eq!(worker.trace, root.trace, "trace id crosses the thread");
        assert_eq!(
            inner.parent,
            Some(worker.id),
            "nesting resumes on the worker"
        );
        assert_eq!(inner.trace, root.trace);
        assert_ne!(worker.thread, root.thread, "lanes identify threads");
        let tree = build_tree(spans);
        assert_eq!(tree.len(), 1, "one rooted tree, no orphans");
        assert_eq!(tree[0].depth(), 3);
    }

    #[test]
    fn foreign_token_is_ignored() {
        let tel = Telemetry::enabled();
        let other = Telemetry::enabled();
        let foreign = {
            let g = other.span("alien");
            g.context().unwrap()
        };
        {
            let _s = tel.span_in("local", Some(foreign));
        }
        let spans = tel.drain_spans();
        assert_eq!(spans[0].parent, None, "foreign token must not link");
        assert_eq!(spans[0].trace, spans[0].id);
    }

    #[test]
    fn current_context_matches_guard_context() {
        let tel = Telemetry::enabled();
        assert!(tel.current_context().is_none());
        let g = tel.span("q");
        assert_eq!(tel.current_context(), g.context());
    }

    #[test]
    fn orphan_parent_becomes_root() {
        let tree = build_tree(vec![rec(5, Some(99), "a", 0), rec(6, Some(5), "b", 1)]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].record.name, "a");
        assert_eq!(tree[0].children[0].record.name, "b");
    }

    #[test]
    fn totals_and_counts_cover_subtree() {
        let mut a = rec(1, None, "q", 0);
        a.metrics.push(("blocks", 1));
        let mut b = rec(2, Some(1), "ghfk", 1);
        b.metrics.push(("blocks", 2));
        let c = rec(3, Some(1), "ghfk", 2);
        let tree = build_tree(vec![a, b, c]);
        assert_eq!(tree[0].total_metric("blocks"), 3);
        assert_eq!(tree[0].count_named("ghfk"), 2);
        assert_eq!(tree[0].depth(), 2);
    }

    #[test]
    fn render_shows_connectors() {
        let tree = build_tree(vec![
            rec(1, None, "query", 0),
            rec(2, Some(1), "ghfk", 1),
            rec(3, Some(2), "block.deserialize", 2),
            rec(4, Some(1), "join", 3),
        ]);
        let text = render_tree(&tree);
        assert!(text.contains("query"));
        assert!(text.contains("├─ ghfk"));
        assert!(text.contains("└─ block.deserialize"));
        assert!(text.contains("└─ join"));
    }
}
