//! # fabric-telemetry
//!
//! Unified observability layer for the temporal-fabric stack: hierarchical
//! spans, log-bucketed latency histograms, named counters/gauges, and
//! exporters (human table, JSON-lines, CSV).
//!
//! ## Design constraints
//!
//! * **Zero-cost when disabled.** Every recording entry point first loads
//!   one relaxed [`AtomicBool`]; a disabled [`Telemetry`] takes no locks,
//!   allocates nothing and touches no shared state on the data path.
//! * **Global-free.** There is no process-wide registry; a [`Telemetry`]
//!   handle is plumbed explicitly (the ledger owns one and shares it with
//!   its stores) and is cheap to clone (`Arc` inside).
//! * **Thread-safe recorders.** Finished spans go into a lock-free
//!   [`crossbeam`] queue; counters and histogram buckets are relaxed
//!   atomics; the name→instrument maps use short [`parking_lot`] critical
//!   sections only on first registration.
//!
//! ## Span model
//!
//! [`Telemetry::span`] returns a [`SpanGuard`] that records its duration
//! on drop. Parent/child links come from a thread-local "current span"
//! cell: spans opened while another guard is alive on the same thread
//! become its children, which is what turns a query into a tree —
//! `query → ghfk(key) → block.deserialize(n)`. Guards may be stored in
//! structs (e.g. a lazy history iterator) so that work performed while
//! the guard lives nests under it. Every span's duration also feeds a
//! histogram named after the span, so p50/p95/p99 per stage come for free.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod alloc;
pub mod chrome;
pub mod export;
pub mod flight;
pub mod histogram;
pub mod http;
pub mod profile;
pub mod prometheus;
pub mod queue;
pub mod registry;
pub mod slowlog;
pub mod span;

pub use alloc::CountingAlloc;
pub use chrome::{chrome_trace, chrome_trace_with_counters};
pub use export::{render_table, Report};
pub use flight::FlightRecorder;
pub use histogram::{Histogram, HistogramSnapshot};
pub use http::{http_get, MetricsServer};
pub use profile::{top_spans, Profile, Profiler, TopEntry};
pub use prometheus::render_prometheus;
pub use queue::QueueProbe;
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use slowlog::{SlowLog, SlowLogConfig};
pub use span::{build_tree, render_tree, SpanContext, SpanGuard, SpanNode, SpanRecord};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::queue::SegQueue;
use parking_lot::{Mutex, RwLock};

/// One timestamped value of a named counter track (e.g. a queue depth
/// sample), for the Chrome exporter's `ph:"C"` counter rows. Recorded
/// only while [`Telemetry::enable_track_points`] is on.
#[derive(Debug, Clone)]
pub struct TrackPoint {
    /// Track name (e.g. `queue.pipeline.append.depth`), shared not copied.
    pub name: Arc<str>,
    /// Sample time in nanoseconds since the telemetry epoch.
    pub at_ns: u64,
    /// Sampled value.
    pub value: i64,
}

/// Bound on buffered [`TrackPoint`]s; newest win once full.
const TRACK_POINTS_CAP: usize = 65_536;

pub(crate) struct Inner {
    enabled: AtomicBool,
    /// Reference instant for span timestamps (relative ns).
    epoch: Instant,
    next_span: AtomicU64,
    spans: SegQueue<SpanRecord>,
    registry: Registry,
    flight: FlightRecorder,
    /// Fast-path check for the slow log; avoids the RwLock on every root
    /// span when no log is installed (the common case).
    slow_installed: AtomicBool,
    slow: RwLock<Option<Arc<SlowLog>>>,
    /// Counter-track sampling for trace exports: off by default so queue
    /// probes cost nothing extra outside `tfq trace/profile` sessions.
    track_on: AtomicBool,
    track: Mutex<std::collections::VecDeque<TrackPoint>>,
}

/// A shared telemetry handle. Cheap to clone; all clones observe the same
/// recorders and the same enabled flag, so enabling telemetry on the
/// ledger's handle enables it inside its stores too.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    fn with_enabled(enabled: bool) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                spans: SegQueue::new(),
                registry: Registry::new(),
                flight: FlightRecorder::default(),
                slow_installed: AtomicBool::new(false),
                slow: RwLock::new(None),
                track_on: AtomicBool::new(false),
                track: Mutex::new(std::collections::VecDeque::new()),
            }),
        }
    }

    /// A handle that records nothing until [`Telemetry::enable`] is called.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// A handle that records immediately.
    pub fn enabled() -> Self {
        Self::with_enabled(true)
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on (affects every clone of this handle).
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn recording off.
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// The named-instrument registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Nanoseconds since this handle was created.
    pub(crate) fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    pub(crate) fn next_span_id(&self) -> u64 {
        self.inner.next_span.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn inner_ptr(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    pub(crate) fn push_span(&self, record: SpanRecord) {
        // Feed the per-stage latency histogram before queueing the record.
        self.inner
            .registry
            .histogram(record.name)
            .record(record.dur_ns);
        // Flight recorder first so a slow root can reassemble its subtree
        // (children completed — and were recorded — before their parent).
        self.inner.flight.record(&record);
        if record.parent.is_none() && self.inner.slow_installed.load(Ordering::Relaxed) {
            self.maybe_log_slow(&record);
        }
        self.inner.spans.push(record);
    }

    /// Cold path: a root span finished while a slow log is installed.
    fn maybe_log_slow(&self, record: &SpanRecord) {
        let Some(slow) = self.inner.slow.read().clone() else {
            return;
        };
        let threshold = if slow.config().p99_factor.is_some() {
            let snapshot = self.inner.registry.histogram(record.name).snapshot();
            slow.config().effective_threshold(Some(&snapshot))
        } else {
            slow.config().effective_threshold(None)
        };
        if record.dur_ns >= threshold.max(1) {
            let tree = self.inner.flight.tree_for_root(record);
            slow.log(&tree, threshold);
        }
    }

    /// The always-on flight recorder (recent completed spans).
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// Install (or replace) the slow-query log. Root spans finishing
    /// slower than the configured threshold are dumped as JSONL to `sink`.
    pub fn install_slow_log(&self, config: SlowLogConfig, sink: Box<dyn std::io::Write + Send>) {
        *self.inner.slow.write() = Some(Arc::new(SlowLog::new(config, sink)));
        self.inner.slow_installed.store(true, Ordering::Relaxed);
    }

    /// Remove the slow-query log, if any.
    pub fn remove_slow_log(&self) {
        self.inner.slow_installed.store(false, Ordering::Relaxed);
        *self.inner.slow.write() = None;
    }

    /// The installed slow-query log, if any.
    pub fn slow_log(&self) -> Option<Arc<SlowLog>> {
        self.inner.slow.read().clone()
    }

    /// Open a span named `name`. Returns an inert guard when disabled.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard::inert();
        }
        SpanGuard::start(self.clone(), name)
    }

    /// Open a span that *follows from* the span behind `ctx`, regardless
    /// of which thread it runs on: the new span becomes a child of `ctx`
    /// and joins its trace. With `ctx == None` this is [`Telemetry::span`]
    /// — convenient for call sites that may or may not hold a token.
    #[inline]
    pub fn span_in(&self, name: &'static str, ctx: Option<SpanContext>) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard::inert();
        }
        match ctx {
            Some(ctx) => SpanGuard::start_in(self.clone(), name, ctx),
            None => SpanGuard::start(self.clone(), name),
        }
    }

    /// Handoff token for the innermost live span of *this* instance on the
    /// calling thread, if any. Capture it before crossing a thread
    /// boundary and redeem it with [`Telemetry::span_in`] on the far side.
    pub fn current_context(&self) -> Option<SpanContext> {
        span::current_context_for(self.inner_ptr())
    }

    /// Add `n` to the named counter (no-op when disabled).
    #[inline]
    pub fn count(&self, name: &'static str, n: u64) {
        if self.is_enabled() {
            self.inner.registry.counter(name).add(n);
        }
    }

    /// Record `value` into the named histogram (no-op when disabled).
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if self.is_enabled() {
            self.inner.registry.histogram(name).record(value);
        }
    }

    /// Remove and return every finished span recorded so far, ordered by
    /// start time.
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        while let Some(r) = self.inner.spans.pop() {
            out.push(r);
        }
        out.sort_by_key(|r| r.start_ns);
        out
    }

    /// Drain finished spans and assemble them into parent→child trees.
    pub fn span_tree(&self) -> Vec<SpanNode> {
        build_tree(self.drain_spans())
    }

    /// Point-in-time copy of every named instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.inner.registry.snapshot()
    }

    /// Drop all recorded spans (including the flight-recorder window) and
    /// reset every counter/gauge/histogram. The enabled flag and any
    /// installed slow log are left unchanged.
    pub fn reset(&self) {
        while self.inner.spans.pop().is_some() {}
        self.inner.registry.reset();
        self.inner.flight.clear();
        self.inner.track.lock().clear();
    }

    /// Turn counter-track sampling on or off (see [`TrackPoint`]). Off by
    /// default; `tfq trace --export chrome` and `tfq profile` turn it on
    /// for the session so queue-depth tracks land in the export.
    pub fn enable_track_points(&self, on: bool) {
        self.inner.track_on.store(on, Ordering::Relaxed);
    }

    /// Whether counter-track sampling is on.
    #[inline]
    pub fn track_points_on(&self) -> bool {
        self.inner.track_on.load(Ordering::Relaxed)
    }

    /// Record one counter-track sample at the current time. No-op unless
    /// track sampling is on; bounded by an internal cap (oldest dropped).
    pub fn record_track_point(&self, name: &Arc<str>, value: i64) {
        if !self.track_points_on() {
            return;
        }
        let at_ns = self.now_ns();
        let mut track = self.inner.track.lock();
        if track.len() >= TRACK_POINTS_CAP {
            track.pop_front();
        }
        track.push_back(TrackPoint {
            name: Arc::clone(name),
            at_ns,
            value,
        });
    }

    /// Remove and return every buffered counter-track sample, in record
    /// order.
    pub fn drain_track_points(&self) -> Vec<TrackPoint> {
        self.inner.track.lock().drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let tel = Telemetry::disabled();
        {
            let mut s = tel.span("work");
            s.record("blocks", 3);
        }
        tel.count("ops", 5);
        tel.observe("lat", 100);
        assert!(tel.drain_spans().is_empty());
        let snap = tel.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn spans_nest_by_thread() {
        let tel = Telemetry::enabled();
        {
            let _q = tel.span("query");
            {
                let _g = tel.span("ghfk");
                let _b = tel.span("block.deserialize");
            }
            let _g2 = tel.span("ghfk");
        }
        let tree = tel.span_tree();
        assert_eq!(tree.len(), 1, "one root");
        let query = &tree[0];
        assert_eq!(query.record.name, "query");
        assert_eq!(query.children.len(), 2);
        assert_eq!(query.children[0].record.name, "ghfk");
        assert_eq!(query.children[0].children.len(), 1);
        assert_eq!(
            query.children[0].children[0].record.name,
            "block.deserialize"
        );
        assert_eq!(query.depth(), 3);
    }

    #[test]
    fn span_metrics_and_labels_survive() {
        let tel = Telemetry::enabled();
        {
            let mut s = tel.span("ghfk").with_label("S00001");
            s.record("blocks", 2);
            s.record("blocks", 1);
        }
        let spans = tel.drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].label.as_deref(), Some("S00001"));
        assert_eq!(spans[0].metric("blocks"), Some(3));
    }

    #[test]
    fn enable_disable_is_shared_across_clones() {
        let a = Telemetry::disabled();
        let b = a.clone();
        b.enable();
        assert!(a.is_enabled());
        {
            let _s = a.span("x");
        }
        assert_eq!(b.drain_spans().len(), 1);
    }

    #[test]
    fn span_durations_feed_histograms() {
        let tel = Telemetry::enabled();
        for _ in 0..4 {
            let _s = tel.span("stage");
        }
        let snap = tel.snapshot();
        assert_eq!(snap.histograms["stage"].count, 4);
    }

    #[test]
    fn flight_recorder_retains_spans_and_roots() {
        let tel = Telemetry::enabled();
        {
            let _q = tel.span("query");
            let _g = tel.span("ghfk");
        }
        {
            let _q = tel.span("query");
        }
        let recent = tel.flight().recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(tel.flight().recent_roots().len(), 2);
        // Draining the span queue must not empty the flight window.
        let _ = tel.drain_spans();
        assert_eq!(tel.flight().recent().len(), 3);
    }

    #[test]
    fn slow_log_fires_on_slow_roots_only() {
        let tel = Telemetry::enabled();
        let (buffer, sink) = slowlog::memory_sink();
        tel.install_slow_log(
            SlowLogConfig {
                threshold_ns: 1, // everything with a measurable duration
                p99_factor: None,
                min_samples: 0,
            },
            sink,
        );
        {
            let _q = tel.span("query.ferry");
            let _g = tel.span("ghfk");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let text = String::from_utf8(buffer.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            1,
            "only the root span may produce a record: {text}"
        );
        assert!(lines[0].contains("\"name\":\"query.ferry\""));
        assert!(
            lines[0].contains("\"name\":\"ghfk\""),
            "tree must include the child: {}",
            lines[0]
        );
        assert_eq!(tel.slow_log().unwrap().records_written(), 1);
        tel.remove_slow_log();
        {
            let _q = tel.span("query.ferry");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let text = String::from_utf8(buffer.lock().clone()).unwrap();
        assert_eq!(text.lines().count(), 1, "removed log must stay silent");
    }

    #[test]
    fn fast_roots_stay_out_of_the_slow_log() {
        let tel = Telemetry::enabled();
        let (buffer, sink) = slowlog::memory_sink();
        tel.install_slow_log(SlowLogConfig::threshold_ms(10_000), sink);
        for _ in 0..100 {
            let _q = tel.span("query.ferry");
        }
        assert!(buffer.lock().is_empty());
        assert_eq!(tel.slow_log().unwrap().records_written(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let tel = Telemetry::enabled();
        tel.count("c", 1);
        {
            let _s = tel.span("s");
        }
        tel.reset();
        assert!(tel.drain_spans().is_empty());
        assert!(tel.snapshot().counters.is_empty());
        assert!(tel.flight().is_empty(), "reset clears the flight window");
        assert!(tel.is_enabled(), "reset must not flip the enabled bit");
    }
}
