//! Flight recorder: a fixed-size, lock-light ring buffer of completed
//! spans.
//!
//! Unlike the drain-once [`crate::Telemetry::drain_spans`] queue (which is
//! consumed by EXPLAIN ANALYZE and `tfq trace`), the flight recorder is a
//! *retained* window over the recent past: the last `capacity` completed
//! spans plus the last `root_capacity` completed *root* spans (spans with
//! no parent, i.e. whole queries or whole commits). It is always on while
//! telemetry is enabled, sized so that a long-running peer can answer
//! "what just happened?" — the `/flight` endpoint of `tfq serve` and the
//! slow-query log both read from it.
//!
//! Recording takes one short `parking_lot` mutex critical section (a
//! `VecDeque` push plus at most one pop). The deques are preallocated at
//! their capacity, so steady-state recording performs no ring allocation —
//! the only per-record cost is cloning the span into the buffer.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::span::{build_tree, SpanNode, SpanRecord};

/// Default retained completed spans.
pub const DEFAULT_CAPACITY: usize = 4096;
/// Default retained root spans.
pub const DEFAULT_ROOT_CAPACITY: usize = 512;

struct Rings {
    spans: VecDeque<SpanRecord>,
    roots: VecDeque<SpanRecord>,
    capacity: usize,
    root_capacity: usize,
}

/// Retained ring of recently completed spans. See the module docs.
pub struct FlightRecorder {
    inner: Mutex<Rings>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY, DEFAULT_ROOT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` spans and the last
    /// `root_capacity` root spans (both floored at 1).
    pub fn new(capacity: usize, root_capacity: usize) -> Self {
        FlightRecorder {
            inner: Mutex::new(Rings {
                spans: VecDeque::with_capacity(capacity.max(1)),
                roots: VecDeque::with_capacity(root_capacity.max(1)),
                capacity: capacity.max(1),
                root_capacity: root_capacity.max(1),
            }),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append one completed span, evicting the oldest entry when full.
    pub fn record(&self, record: &SpanRecord) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        if inner.spans.len() >= inner.capacity {
            inner.spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.spans.push_back(record.clone());
        if record.parent.is_none() {
            if inner.roots.len() >= inner.root_capacity {
                inner.roots.pop_front();
            }
            inner.roots.push_back(record.clone());
        }
    }

    /// Resize the rings (existing excess entries are evicted oldest-first).
    pub fn set_capacity(&self, capacity: usize, root_capacity: usize) {
        let mut inner = self.inner.lock();
        inner.capacity = capacity.max(1);
        inner.root_capacity = root_capacity.max(1);
        while inner.spans.len() > inner.capacity {
            inner.spans.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        while inner.roots.len() > inner.root_capacity {
            inner.roots.pop_front();
        }
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.inner.lock().spans.iter().cloned().collect()
    }

    /// The retained root spans (no parent), oldest first.
    pub fn recent_roots(&self) -> Vec<SpanRecord> {
        self.inner.lock().roots.iter().cloned().collect()
    }

    /// Reassemble the subtree of `root` from the retained spans. Children
    /// evicted from the ring are absent (the tree may be partial for very
    /// large queries); the root itself is always present in the result.
    pub fn tree_for_root(&self, root: &SpanRecord) -> SpanNode {
        let retained = self.recent();
        // Keep only records that reach `root` via parent links.
        let mut member: std::collections::HashMap<u64, bool> = std::collections::HashMap::new();
        member.insert(root.id, true);
        let by_id: std::collections::HashMap<u64, &SpanRecord> =
            retained.iter().map(|r| (r.id, r)).collect();
        fn reaches(
            id: u64,
            by_id: &std::collections::HashMap<u64, &SpanRecord>,
            member: &mut std::collections::HashMap<u64, bool>,
        ) -> bool {
            if let Some(&known) = member.get(&id) {
                return known;
            }
            let verdict = match by_id.get(&id).and_then(|r| r.parent) {
                Some(parent) => reaches(parent, by_id, member),
                None => false,
            };
            member.insert(id, verdict);
            verdict
        }
        let mut records: Vec<SpanRecord> = retained
            .iter()
            .filter(|r| reaches(r.id, &by_id, &mut member))
            .cloned()
            .collect();
        if !records.iter().any(|r| r.id == root.id) {
            records.push(root.clone());
        }
        records.sort_by_key(|r| r.start_ns);
        let mut forest = build_tree(records);
        // `build_tree` roots everything whose parent is outside the batch;
        // since every record reaches `root`, the forest is exactly one tree.
        forest
            .pop()
            .expect("tree_for_root always has at least the root record")
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total spans ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drop all retained spans (totals are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.spans.clear();
        inner.roots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &'static str) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            trace: parent.unwrap_or(id),
            thread: 1,
            name,
            label: None,
            start_ns: id,
            dur_ns: 10,
            metrics: Vec::new(),
            alloc_bytes: 0,
            alloc_calls: 0,
            peak_bytes: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let f = FlightRecorder::new(3, 2);
        for i in 1..=5 {
            f.record(&rec(i, None, "q"));
        }
        let ids: Vec<u64> = f.recent().iter().map(|r| r.id).collect();
        assert_eq!(ids, [3, 4, 5]);
        assert_eq!(f.recorded(), 5);
        assert_eq!(f.dropped(), 2);
        let roots: Vec<u64> = f.recent_roots().iter().map(|r| r.id).collect();
        assert_eq!(roots, [4, 5], "root ring has its own capacity");
    }

    #[test]
    fn roots_survive_child_floods() {
        let f = FlightRecorder::new(4, 8);
        f.record(&rec(1, None, "query"));
        for i in 2..=20 {
            f.record(&rec(i, Some(1), "child"));
        }
        assert_eq!(f.len(), 4, "span ring bounded");
        let roots = f.recent_roots();
        assert_eq!(roots.len(), 1, "root retained past span-ring eviction");
        assert_eq!(roots[0].id, 1);
    }

    #[test]
    fn tree_for_root_reassembles_descendants() {
        let f = FlightRecorder::new(16, 4);
        f.record(&rec(2, Some(1), "ghfk"));
        f.record(&rec(3, Some(2), "block.deserialize"));
        f.record(&rec(4, Some(99), "unrelated")); // different root, absent
        let root = rec(1, None, "query");
        f.record(&root);
        let tree = f.tree_for_root(&root);
        assert_eq!(tree.record.name, "query");
        assert_eq!(tree.count_named("ghfk"), 1);
        assert_eq!(tree.count_named("block.deserialize"), 1);
        assert_eq!(tree.count_named("unrelated"), 0);
        assert_eq!(tree.depth(), 3);
    }

    #[test]
    fn tree_for_root_with_evicted_children_still_has_root() {
        let f = FlightRecorder::new(2, 2);
        f.record(&rec(2, Some(1), "child"));
        f.record(&rec(3, Some(1), "child"));
        f.record(&rec(4, Some(1), "child")); // evicts id 2
        let root = rec(1, None, "query");
        f.record(&root); // evicts id 3
        let tree = f.tree_for_root(&root);
        assert_eq!(tree.record.id, 1);
        assert_eq!(tree.children.len(), 1, "only unevicted child remains");
    }

    #[test]
    fn set_capacity_shrinks_in_place() {
        let f = FlightRecorder::new(8, 8);
        for i in 1..=8 {
            f.record(&rec(i, None, "q"));
        }
        f.set_capacity(2, 1);
        assert_eq!(f.len(), 2);
        assert_eq!(f.recent_roots().len(), 1);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.recorded(), 8, "totals survive clear");
    }
}
