//! Exporters: human-readable tables, JSON-lines, CSV.
//!
//! JSON is emitted by hand (the workspace deliberately avoids a JSON
//! dependency); only the small subset needed here — objects of strings
//! and integers — is produced, with full string escaping.

use std::fmt::Write as _;

use crate::registry::RegistrySnapshot;

/// Format a nanosecond duration for humans: `421ns`, `3.2µs`, `18.4ms`, `2.01s`.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Escape a string for inclusion in a JSON document (without quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A registry snapshot plus free-form context fields (`engine`, `dataset`,
/// `scale`, …), ready for machine-readable export.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Context key/value pairs emitted ahead of the metrics.
    pub meta: Vec<(String, String)>,
    /// The instrument values being reported.
    pub snapshot: RegistrySnapshot,
}

impl Report {
    /// Wrap a snapshot with no context.
    pub fn new(snapshot: RegistrySnapshot) -> Self {
        Report {
            meta: Vec::new(),
            snapshot,
        }
    }

    /// Add a context field (builder style).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.meta.push((key.into(), value.into()));
        self
    }

    /// One JSON object on one line (JSON-lines record). Histograms are
    /// summarised as count/sum/min/max/mean/p50/p95/p99.
    pub fn json_line(&self) -> String {
        let mut out = String::from("{");
        for (k, v) in &self.meta {
            let _ = write!(out, "\"{}\":\"{}\",", json_escape(k), json_escape(v));
        }
        out.push_str("\"counters\":{");
        let mut first = true;
        for (k, v) in &self.snapshot.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", json_escape(k));
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (k, v) in &self.snapshot.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", json_escape(k));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (k, h) in &self.snapshot.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_escape(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
            );
        }
        out.push_str("}}");
        out
    }

    /// CSV with one row per instrument. Counter/gauge rows carry only
    /// `value`; histogram rows fill the quantile columns.
    pub fn csv(&self) -> String {
        let mut out = String::from("kind,name,value,count,sum,min,max,mean,p50,p95,p99\n");
        for (k, v) in &self.snapshot.counters {
            let _ = writeln!(out, "counter,{},{v},,,,,,,,", csv_field(k));
        }
        for (k, v) in &self.snapshot.gauges {
            let _ = writeln!(out, "gauge,{},{v},,,,,,,,", csv_field(k));
        }
        for (k, h) in &self.snapshot.histograms {
            let _ = writeln!(
                out,
                "histogram,{},,{},{},{},{},{},{},{},{}",
                csv_field(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99(),
            );
        }
        out
    }
}

/// Quote a value for a CSV cell (RFC 4180): fields containing commas,
/// quotes, or newlines are wrapped in double quotes with embedded quotes
/// doubled; everything else passes through unchanged.
pub fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split one CSV line into unescaped fields — the inverse of
/// [`csv_field`]-joined rows. Handles quoted fields with embedded commas,
/// doubled quotes, and embedded newlines (the caller must pass a full
/// logical record). Malformed trailing quotes are tolerated by closing
/// the field at end of input.
pub fn csv_parse_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                c => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
    }
    fields.push(field);
    fields
}

/// Render counters, gauges, and histogram quantiles as an aligned,
/// human-readable table. Histogram values are formatted as durations
/// (they are nanoseconds for every span-fed histogram).
pub fn render_table(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() || !snapshot.gauges.is_empty() {
        let width = snapshot
            .counters
            .keys()
            .chain(snapshot.gauges.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        out.push_str("counters:\n");
        for (k, v) in &snapshot.counters {
            let _ = writeln!(out, "  {k:<width$}  {v}");
        }
        for (k, v) in &snapshot.gauges {
            let _ = writeln!(out, "  {k:<width$}  {v} (gauge)");
        }
    }
    if !snapshot.histograms.is_empty() {
        let width = snapshot
            .histograms
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max("span".len());
        let _ = writeln!(
            out,
            "{:<width$}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
            "span", "count", "mean", "p50", "p95", "p99", "max"
        );
        for (k, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "{k:<width$}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
                h.count,
                fmt_ns(h.mean()),
                fmt_ns(h.p50()),
                fmt_ns(h.p95()),
                fmt_ns(h.p99()),
                fmt_ns(h.max),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample() -> RegistrySnapshot {
        let tel = Telemetry::enabled();
        tel.count("blocks_deserialized", 42);
        tel.observe("ghfk", 1_500);
        tel.observe("ghfk", 2_500);
        tel.snapshot()
    }

    #[test]
    fn json_line_is_flat_and_escaped() {
        let report = Report::new(sample())
            .with("engine", "tqf")
            .with("note", "a\"b\\c");
        let line = report.json_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("\"engine\":\"tqf\""));
        assert!(line.contains("\"note\":\"a\\\"b\\\\c\""));
        assert!(line.contains("\"blocks_deserialized\":42"));
        assert!(line.contains("\"ghfk\":{\"count\":2"));
    }

    #[test]
    fn csv_round_trips_hostile_names() {
        // Instrument names with commas, quotes, and both — the CSV must
        // quote/escape them so a parse of each line restores the exact
        // original name and value.
        let mut snapshot = RegistrySnapshot::default();
        snapshot.counters.insert("blocks,deserialized".into(), 7);
        snapshot.counters.insert("say \"ghfk\"".into(), 9);
        snapshot.gauges.insert("a,\"b\",c".into(), -3);
        let tel = Telemetry::enabled();
        tel.observe("lat,ms \"hot\"", 50);
        snapshot.histograms = tel.snapshot().histograms;
        let csv = Report::new(snapshot).csv();
        let rows: Vec<Vec<String>> = csv.lines().map(csv_parse_line).collect();
        assert_eq!(rows[0][0], "kind");
        let find = |kind: &str, name: &str| {
            rows.iter()
                .find(|r| r[0] == kind && r[1] == name)
                .unwrap_or_else(|| panic!("no {kind} row for {name:?} in:\n{csv}"))
                .clone()
        };
        assert_eq!(find("counter", "blocks,deserialized")[2], "7");
        assert_eq!(find("counter", "say \"ghfk\"")[2], "9");
        assert_eq!(find("gauge", "a,\"b\",c")[2], "-3");
        assert_eq!(find("histogram", "lat,ms \"hot\"")[3], "1");
        // Every row parses back to the header's arity.
        for row in &rows {
            assert_eq!(row.len(), rows[0].len(), "ragged row in:\n{csv}");
        }
    }

    #[test]
    fn csv_parse_handles_quotes_and_empties() {
        assert_eq!(csv_parse_line("a,b,c"), ["a", "b", "c"]);
        assert_eq!(csv_parse_line("a,,c"), ["a", "", "c"]);
        assert_eq!(csv_parse_line("\"a,b\",c"), ["a,b", "c"]);
        assert_eq!(
            csv_parse_line("\"he said \"\"hi\"\"\",x"),
            ["he said \"hi\"", "x"]
        );
        assert_eq!(csv_parse_line(""), [""]);
        assert_eq!(csv_parse_line("x,"), ["x", ""]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = Report::new(sample()).csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("kind,name,value"));
        assert!(csv.contains("counter,blocks_deserialized,42"));
        assert!(csv.contains("histogram,ghfk,,2,"));
    }

    #[test]
    fn table_mentions_every_instrument() {
        let table = render_table(&sample());
        assert!(table.contains("blocks_deserialized"));
        assert!(table.contains("ghfk"));
        assert!(table.contains("p95"));
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(421), "421ns");
        assert_eq!(fmt_ns(3_200), "3.2µs");
        assert_eq!(fmt_ns(18_400_000), "18.4ms");
        assert_eq!(fmt_ns(2_010_000_000), "2.01s");
    }
}
