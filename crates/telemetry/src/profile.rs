//! Sampling profiler over live span stacks.
//!
//! Every thread that opens spans maintains a *shadow stack* of interned
//! span-name indices (fixed-size array of relaxed atomics plus an
//! acquire/release depth). While a [`Profiler`] is running, span open
//! and close push/pop one frame — two relaxed stores — and a sampler
//! thread walks every registered shadow stack at a configurable rate,
//! folding what it sees into collapsed-stack counts. When no profiler is
//! running the span path pays exactly one relaxed load.
//!
//! The collapsed output ([`Profile::collapsed`]) is the
//! `flamegraph.pl` / [inferno](https://github.com/jonhoo/inferno) input
//! format: one `frame;frame;frame count` line per distinct stack, sorted
//! lexicographically so the bytes are deterministic for a given sample
//! multiset.
//!
//! ## Sampling bias caveats
//!
//! * Samples hit whatever is on the stack *at the tick* — spans shorter
//!   than the sampling period are seen probabilistically (in proportion
//!   to their total time, which is the point), and a 99Hz default avoids
//!   lockstep with 10ms-periodic work.
//! * Stacks are read without stopping the world: a sampler may observe a
//!   frame slot mid-update and attribute one tick to a just-popped span.
//!   These torn samples are rare (one frame per push/pop race) and show
//!   up as noise, never as crashes — the slots are atomics.
//! * Spans already open when the profiler starts were never pushed, so
//!   their frames are missing from early samples; start the profiler
//!   before the workload for complete stacks.
//! * Stacks deeper than [`MAX_DEPTH`] are truncated (deepest frames
//!   dropped); the sampler still counts the truncated prefix.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::span::SpanRecord;
use crate::Telemetry;

/// Deepest span nesting the shadow stack records; deeper frames are
/// dropped from samples (the prefix is still counted).
pub const MAX_DEPTH: usize = 64;

/// Default sampling rate (Hz). Prime, so it does not beat against
/// 10ms-periodic work.
pub const DEFAULT_HZ: u64 = 99;

/// Number of profilers currently running, process-wide. Non-zero makes
/// span open/close maintain the shadow stacks.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

#[inline]
pub(crate) fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Process-wide intern table: span names are `&'static str`, so the
/// table only ever grows and indices stay valid for the process life.
struct Interner {
    names: Vec<&'static str>,
    index: std::collections::HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            index: std::collections::HashMap::new(),
        })
    })
}

fn intern(name: &'static str) -> u32 {
    if let Some(&idx) = interner().read().index.get(name) {
        return idx;
    }
    let mut w = interner().write();
    if let Some(&idx) = w.index.get(name) {
        return idx;
    }
    let idx = w.names.len() as u32;
    w.names.push(name);
    w.index.insert(name, idx);
    idx
}

fn resolve(idx: u32) -> Option<&'static str> {
    interner().read().names.get(idx as usize).copied()
}

/// One thread's live span stack, readable from the sampler thread.
struct ShadowStack {
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_DEPTH],
}

impl ShadowStack {
    fn new() -> Self {
        ShadowStack {
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }
}

fn stack_registry() -> &'static Mutex<Vec<Weak<ShadowStack>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<ShadowStack>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_STACK: std::cell::OnceCell<Arc<ShadowStack>> = const { std::cell::OnceCell::new() };
}

/// Push `name` onto this thread's shadow stack if a profiler is running.
/// Returns whether a matching [`pop_frame`] is owed.
#[inline]
pub(crate) fn push_frame(name: &'static str) -> bool {
    if !is_active() {
        return false;
    }
    let idx = intern(name);
    MY_STACK
        .try_with(|cell| {
            let stack = cell.get_or_init(|| {
                let stack = Arc::new(ShadowStack::new());
                stack_registry().lock().push(Arc::downgrade(&stack));
                stack
            });
            let d = stack.depth.load(Ordering::Relaxed);
            if d < MAX_DEPTH {
                stack.frames[d].store(idx, Ordering::Relaxed);
            }
            // Release-publish the new depth so a sampler that sees it
            // also sees the frame store above.
            stack.depth.store(d + 1, Ordering::Release);
        })
        .is_ok()
}

/// Pop the frame pushed by the matching [`push_frame`]. Always safe to
/// call once per `true` push, even after the profiler stopped.
#[inline]
pub(crate) fn pop_frame() {
    let _ = MY_STACK.try_with(|cell| {
        if let Some(stack) = cell.get() {
            let d = stack.depth.load(Ordering::Relaxed);
            if d > 0 {
                stack.depth.store(d - 1, Ordering::Release);
            }
        }
    });
}

/// Aggregated samples in collapsed-stack form.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    stacks: BTreeMap<String, u64>,
    samples: u64,
    ticks: u64,
}

impl Profile {
    /// Fold one observed stack (outermost frame first) into the counts.
    pub fn record_sample(&mut self, frames: &[&str]) {
        if frames.is_empty() {
            return;
        }
        *self.stacks.entry(frames.join(";")).or_insert(0) += 1;
        self.samples += 1;
    }

    /// Total stack samples recorded (one per non-idle thread per tick).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Sampler wake-ups, including ones where every thread was idle.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Number of distinct stacks observed.
    pub fn distinct_stacks(&self) -> usize {
        self.stacks.len()
    }

    /// The stacks and their counts, heaviest first.
    pub fn hottest(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.stacks.iter().map(|(k, &n)| (k.as_str(), n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v
    }

    /// Render in `flamegraph.pl` / inferno collapsed form: one
    /// `frame;frame count` line per distinct stack, sorted
    /// lexicographically (deterministic for a given sample multiset).
    pub fn collapsed(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            let _ = writeln!(out, "{stack} {count}");
        }
        out
    }
}

/// A running sampling profiler. Stop it to get the [`Profile`].
pub struct Profiler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<Profile>,
    tel: Telemetry,
}

impl Profiler {
    /// Start sampling every registered thread's span stack at `hz`
    /// (clamped to \[1, 10_000\]). Sample/tick counters land in `tel`'s
    /// registry as `profiler.samples` / `profiler.ticks`, and the
    /// `profiler.active` gauge is held at 1 while running.
    pub fn start(tel: &Telemetry, hz: u64) -> Profiler {
        let hz = hz.clamp(1, 10_000);
        ACTIVE.fetch_add(1, Ordering::SeqCst);
        tel.registry().gauge("profiler.active").add(1);
        let stop = Arc::new(AtomicBool::new(false));
        let period = Duration::from_nanos(1_000_000_000 / hz);
        let handle = {
            let stop = Arc::clone(&stop);
            let tel = tel.clone();
            std::thread::Builder::new()
                .name("tf-profiler".into())
                .spawn(move || {
                    let mut profile = Profile::default();
                    let samples = tel.registry().counter("profiler.samples");
                    let ticks = tel.registry().counter("profiler.ticks");
                    while !stop.load(Ordering::Relaxed) {
                        let taken = sample_all(&mut profile);
                        profile.ticks += 1;
                        ticks.incr();
                        samples.add(taken);
                        std::thread::sleep(period);
                    }
                    profile
                })
                .expect("spawn profiler thread")
        };
        Profiler {
            stop,
            handle,
            tel: tel.clone(),
        }
    }

    /// Stop the sampler and return the aggregated profile.
    pub fn stop(self) -> Profile {
        self.stop.store(true, Ordering::Relaxed);
        let profile = self.handle.join().expect("profiler thread panicked");
        ACTIVE.fetch_sub(1, Ordering::SeqCst);
        self.tel.registry().gauge("profiler.active").add(-1);
        profile
    }
}

/// Walk every live shadow stack once; returns how many non-empty stacks
/// were sampled. Dead threads' stacks are pruned as they are found.
fn sample_all(profile: &mut Profile) -> u64 {
    let mut taken = 0;
    let mut frames: Vec<&'static str> = Vec::with_capacity(MAX_DEPTH);
    let mut registry = stack_registry().lock();
    registry.retain(|weak| {
        let Some(stack) = weak.upgrade() else {
            return false;
        };
        let depth = stack.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        if depth > 0 {
            frames.clear();
            for slot in &stack.frames[..depth] {
                if let Some(name) = resolve(slot.load(Ordering::Relaxed)) {
                    frames.push(name);
                }
            }
            if !frames.is_empty() {
                profile.record_sample(&frames);
                taken += 1;
            }
        }
        true
    });
    taken
}

/// One row of the `tfq top` report: a span name with call counts, total
/// and self wall-clock time, and allocation charges, aggregated over a
/// batch of finished spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopEntry {
    /// Span name.
    pub name: &'static str,
    /// Number of finished spans with this name.
    pub count: u64,
    /// Sum of wall-clock durations.
    pub total_ns: u64,
    /// Sum of durations minus time spent in child spans (any thread).
    pub self_ns: u64,
    /// Sum of bytes allocated on the span's thread while open.
    pub alloc_bytes: u64,
    /// Maximum single-span net-live high-water mark.
    pub peak_bytes: u64,
}

/// Aggregate finished spans into per-name rows, hottest self-time first.
/// Self time subtracts each span's direct children (including cross-
/// thread `span_in` children), so a parent that merely waits on workers
/// scores low while the workers score high.
pub fn top_spans(records: &[SpanRecord]) -> Vec<TopEntry> {
    let mut child_time: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for r in records {
        if let Some(parent) = r.parent {
            *child_time.entry(parent).or_insert(0) += r.dur_ns;
        }
    }
    let mut by_name: BTreeMap<&'static str, TopEntry> = BTreeMap::new();
    for r in records {
        let entry = by_name.entry(r.name).or_insert(TopEntry {
            name: r.name,
            count: 0,
            total_ns: 0,
            self_ns: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
        });
        entry.count += 1;
        entry.total_ns += r.dur_ns;
        entry.self_ns += r
            .dur_ns
            .saturating_sub(child_time.get(&r.id).copied().unwrap_or(0));
        entry.alloc_bytes += r.alloc_bytes;
        entry.peak_bytes = entry.peak_bytes.max(r.peak_bytes);
    }
    let mut rows: Vec<TopEntry> = by_name.into_values().collect();
    rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(b.name)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &'static str, dur_ns: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            trace: parent.unwrap_or(id),
            thread: 1,
            name,
            label: None,
            start_ns: id,
            dur_ns,
            metrics: Vec::new(),
            alloc_bytes: 0,
            alloc_calls: 0,
            peak_bytes: 0,
        }
    }

    #[test]
    fn collapsed_output_is_sorted_and_deterministic() {
        let mut p = Profile::default();
        p.record_sample(&["query.ferry", "ghfk", "block.deserialize"]);
        p.record_sample(&["query.ferry", "ghfk"]);
        p.record_sample(&["query.ferry", "ghfk", "block.deserialize"]);
        p.record_sample(&["ledger.commit"]);
        assert_eq!(
            p.collapsed(),
            "ledger.commit 1\n\
             query.ferry;ghfk 1\n\
             query.ferry;ghfk;block.deserialize 2\n"
        );
        assert_eq!(p.samples(), 4);
        assert_eq!(p.distinct_stacks(), 3);
        assert_eq!(p.hottest()[0].0, "query.ferry;ghfk;block.deserialize");
    }

    #[test]
    fn empty_sample_is_ignored() {
        let mut p = Profile::default();
        p.record_sample(&[]);
        assert_eq!(p.samples(), 0);
        assert_eq!(p.collapsed(), "");
    }

    #[test]
    fn profiler_samples_live_spans() {
        let tel = Telemetry::enabled();
        let profiler = Profiler::start(&tel, 2_000);
        {
            let _outer = tel.span("proftest.outer");
            let _inner = tel.span("proftest.inner");
            std::thread::sleep(Duration::from_millis(40));
        }
        let profile = profiler.stop();
        // Tests share this process; other spans may appear. Filter to the
        // unique names this test owns.
        let ours: u64 = profile
            .hottest()
            .iter()
            .filter(|(stack, _)| stack.starts_with("proftest.outer"))
            .map(|(_, n)| n)
            .sum();
        assert!(
            ours > 0,
            "no samples of the 40ms span:\n{}",
            profile.collapsed()
        );
        assert!(
            profile
                .collapsed()
                .contains("proftest.outer;proftest.inner"),
            "nesting lost:\n{}",
            profile.collapsed()
        );
        assert!(profile.ticks() > 0);
        let snap = tel.snapshot();
        assert!(snap.counter("profiler.samples") > 0);
        assert!(snap.counter("profiler.ticks") > 0);
        assert_eq!(snap.gauge("profiler.active"), Some(0), "gauge must reset");
    }

    #[test]
    fn spans_pay_nothing_when_no_profiler_runs() {
        // Not a timing assertion — just that push is refused so pop is
        // not owed and the shadow stack stays untouched.
        assert!(!is_active() || ACTIVE.load(Ordering::SeqCst) > 0);
        if !is_active() {
            assert!(!push_frame("idle.span"));
        }
    }

    #[test]
    fn top_spans_compute_self_time_and_rank() {
        let mut root = rec(1, None, "query.ferry", 1_000_000);
        root.alloc_bytes = 500;
        let mut g1 = rec(2, Some(1), "ghfk", 600_000);
        g1.alloc_bytes = 4_000;
        g1.peak_bytes = 2_000;
        let mut g2 = rec(3, Some(1), "ghfk", 300_000);
        g2.peak_bytes = 9_000;
        let rows = top_spans(&[root, g1, g2]);
        assert_eq!(rows[0].name, "ghfk");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_ns, 900_000);
        assert_eq!(rows[0].self_ns, 900_000);
        assert_eq!(rows[0].alloc_bytes, 4_000);
        assert_eq!(rows[0].peak_bytes, 9_000, "peak is a max, not a sum");
        let ferry = rows.iter().find(|r| r.name == "query.ferry").unwrap();
        assert_eq!(ferry.self_ns, 100_000, "children subtracted");
        assert_eq!(ferry.total_ns, 1_000_000);
    }

    #[test]
    fn interner_round_trips() {
        let a = intern("interner.a");
        let b = intern("interner.b");
        assert_ne!(a, b);
        assert_eq!(intern("interner.a"), a);
        assert_eq!(resolve(a), Some("interner.a"));
        assert_eq!(resolve(u32::MAX), None);
    }
}
