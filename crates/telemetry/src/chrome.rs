//! Chrome trace-event / Perfetto JSON exporter.
//!
//! Renders recorded [`SpanRecord`]s in the Trace Event Format understood
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! complete (`"ph":"X"`) event per span, grouped so each **trace** becomes
//! a process row (`pid` = trace id) and each **thread lane** a track
//! (`tid` = lane). Cross-thread spans — pipelined commit stages, parallel
//! cursor workers — therefore land on their own lanes but stay nested
//! under the one trace they follow from. Metadata events name each
//! process row after its root span so the UI reads
//! `trace 12: ledger.commit` instead of a bare number.
//!
//! Timestamps and durations are microseconds (the format's native unit)
//! with nanosecond precision kept in the fractional part.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::export::json_escape;
use crate::span::SpanRecord;
use crate::TrackPoint;

/// Microseconds with the nanosecond remainder as three decimals.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Lane id base for per-shard tracks: spans named `shard.*` carrying a
/// `shard <i>` label are pinned to lane `SHARD_LANE_BASE + i`, so every
/// shard shows as one stable track ("shard 0", "shard 1", …) regardless
/// of which OS thread happened to run its commit or query work.
pub const SHARD_LANE_BASE: u64 = 1_000_000;

fn shard_lane(r: &SpanRecord) -> Option<u64> {
    if !r.name.starts_with("shard.") {
        return None;
    }
    let n: u64 = r.label.as_deref()?.strip_prefix("shard ")?.parse().ok()?;
    Some(SHARD_LANE_BASE + n)
}

/// The track a span renders on: its per-shard lane when it is shard work,
/// its recording thread's lane otherwise.
fn lane_of(r: &SpanRecord) -> u64 {
    shard_lane(r).unwrap_or(r.thread)
}

fn complete_event(out: &mut String, r: &SpanRecord) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"span\":{}",
        json_escape(r.name),
        micros(r.start_ns),
        micros(r.dur_ns),
        r.trace,
        lane_of(r),
        r.id,
    );
    if let Some(parent) = r.parent {
        let _ = write!(out, ",\"parent\":{parent}");
    }
    let _ = write!(out, ",\"trace\":{}", r.trace);
    if let Some(label) = &r.label {
        let _ = write!(out, ",\"label\":\"{}\"", json_escape(label));
    }
    for (m, v) in &r.metrics {
        let _ = write!(out, ",\"{}\":{v}", json_escape(m));
    }
    // Resource accounting (zero — and omitted — without a counting
    // allocator, which keeps pre-existing golden files byte-identical).
    if r.alloc_bytes > 0 || r.alloc_calls > 0 {
        let _ = write!(
            out,
            ",\"alloc_bytes\":{},\"alloc_calls\":{}",
            r.alloc_bytes, r.alloc_calls
        );
    }
    if r.peak_bytes > 0 {
        let _ = write!(out, ",\"peak_bytes\":{}", r.peak_bytes);
    }
    out.push_str("}}");
}

/// Render spans as a Chrome trace-event JSON document.
///
/// Load the output in Perfetto (or `chrome://tracing`): each trace shows
/// as a process group named after its root span, with one track per
/// thread lane that contributed spans.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    chrome_trace_with_counters(records, &[])
}

/// [`chrome_trace`] plus Perfetto **counter tracks** (`ph:"C"` events)
/// from sampled [`TrackPoint`]s — queue depths next to the span lanes, so
/// backpressure is visible in the same view. All counter tracks live
/// under a dedicated pid-0 "counters" process row (only present when
/// `points` is non-empty, so plain exports are byte-identical to
/// [`chrome_trace`]).
pub fn chrome_trace_with_counters(records: &[SpanRecord], points: &[TrackPoint]) -> String {
    // Root-span names for process rows, and the lane set per trace for
    // thread rows — both sorted (BTreeMap) so output is deterministic.
    let mut root_names: BTreeMap<u64, &SpanRecord> = BTreeMap::new();
    let mut lanes: BTreeMap<(u64, u64), ()> = BTreeMap::new();
    for r in records {
        if r.id == r.trace {
            root_names.insert(r.trace, r);
        }
        lanes.insert((r.trace, lane_of(r)), ());
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
    };
    for (trace, root) in &root_names {
        push_sep(&mut out);
        let mut name = root.name.to_string();
        if let Some(label) = &root.label {
            let _ = write!(name, "[{label}]");
        }
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{trace},\"args\":{{\"name\":\"trace {trace}: {}\"}}}}",
            json_escape(&name)
        );
    }
    for (trace, lane) in lanes.keys() {
        push_sep(&mut out);
        let name = if *lane >= SHARD_LANE_BASE {
            format!("shard {}", lane - SHARD_LANE_BASE)
        } else {
            format!("lane {lane}")
        };
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{trace},\"tid\":{lane},\"args\":{{\"name\":\"{name}\"}}}}",
        );
    }
    if !points.is_empty() {
        push_sep(&mut out);
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"counters\"}}",
        );
    }
    let mut sorted: Vec<&SpanRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.start_ns, r.id));
    for r in sorted {
        push_sep(&mut out);
        complete_event(&mut out, r);
    }
    let mut sorted_points: Vec<&TrackPoint> = points.iter().collect();
    sorted_points.sort_by(|a, b| (a.at_ns, &a.name).cmp(&(b.at_ns, &b.name)));
    for p in sorted_points {
        push_sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"value\":{}}}}}",
            json_escape(&p.name),
            micros(p.at_ns),
            p.value
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn rec(
        id: u64,
        parent: Option<u64>,
        trace: u64,
        thread: u64,
        name: &'static str,
        start_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            trace,
            thread,
            name,
            label: None,
            start_ns,
            dur_ns: 1_500,
            metrics: Vec::new(),
            alloc_bytes: 0,
            alloc_calls: 0,
            peak_bytes: 0,
        }
    }

    #[test]
    fn traces_become_processes_and_lanes_become_threads() {
        let mut root = rec(1, None, 1, 1, "ledger.commit", 0);
        root.label = Some("block 7".into());
        let mut worker = rec(2, Some(1), 1, 2, "commit.append", 100);
        worker.metrics.push(("blocks", 3));
        let out = chrome_trace(&[root, worker]);
        assert!(
            out.contains("\"name\":\"trace 1: ledger.commit[block 7]\""),
            "{out}"
        );
        assert!(out.contains("\"pid\":1,\"tid\":1"), "{out}");
        assert!(out.contains("\"pid\":1,\"tid\":2"), "{out}");
        assert!(out.contains("\"parent\":1"), "{out}");
        assert!(out.contains("\"blocks\":3"), "{out}");
        assert!(out.contains("\"ts\":0.100,\"dur\":1.500"), "{out}");
    }

    #[test]
    fn output_is_valid_enough_json() {
        // No serde in the workspace: check structural balance instead.
        let tel = Telemetry::enabled();
        {
            let _q = tel.span("query").with_label("esc\"ape");
            let _g = tel.span("ghfk");
        }
        let out = chrome_trace(&tel.drain_spans());
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        assert_eq!(out.matches('[').count(), out.matches(']').count());
        assert!(out.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(out.ends_with("]}"));
        assert!(out.contains("esc\\\"ape"));
    }

    #[test]
    fn alloc_fields_show_up_as_args_when_nonzero() {
        let mut r = rec(1, None, 1, 1, "query", 0);
        r.alloc_bytes = 4096;
        r.alloc_calls = 7;
        r.peak_bytes = 2048;
        let out = chrome_trace(&[r]);
        assert!(
            out.contains("\"alloc_bytes\":4096,\"alloc_calls\":7"),
            "{out}"
        );
        assert!(out.contains("\"peak_bytes\":2048"), "{out}");
    }

    #[test]
    fn track_points_become_counter_tracks() {
        use std::sync::Arc;
        let name: Arc<str> = Arc::from("queue.pipeline.append.depth");
        let points = vec![
            crate::TrackPoint {
                name: Arc::clone(&name),
                at_ns: 2_000,
                value: 3,
            },
            crate::TrackPoint {
                name: Arc::clone(&name),
                at_ns: 1_000,
                value: 1,
            },
        ];
        let out = chrome_trace_with_counters(&[rec(1, None, 1, 1, "ledger.commit", 0)], &points);
        assert!(
            out.contains("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"counters\"}}"),
            "{out}"
        );
        assert!(
            out.contains(
                "{\"name\":\"queue.pipeline.append.depth\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":1.000,\"pid\":0,\"args\":{\"value\":1}}"
            ),
            "{out}"
        );
        let first = out.find("\"value\":1").unwrap();
        let second = out.find("\"value\":3").unwrap();
        assert!(first < second, "counter samples sort by time: {out}");
        // Structure stays balanced with counters present.
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        // And the plain exporter stays byte-identical with no points.
        assert_eq!(
            chrome_trace_with_counters(&[rec(1, None, 1, 1, "ledger.commit", 0)], &[]),
            chrome_trace(&[rec(1, None, 1, 1, "ledger.commit", 0)])
        );
    }

    #[test]
    fn shard_spans_pin_to_stable_shard_lanes() {
        let root = rec(1, None, 1, 1, "ledger.commit", 0);
        let mut s0 = rec(2, Some(1), 1, 7, "shard.commit", 10);
        s0.label = Some("shard 0".into());
        let mut s1 = rec(3, Some(1), 1, 9, "shard.commit", 20);
        s1.label = Some("shard 1".into());
        // Same shard on a different OS thread next block: same lane.
        let mut s0b = rec(4, Some(1), 1, 11, "shard.commit", 30);
        s0b.label = Some("shard 0".into());
        let out = chrome_trace(&[root, s0, s1, s0b]);
        let lane0 = SHARD_LANE_BASE;
        let lane1 = SHARD_LANE_BASE + 1;
        // One thread_name metadata row plus two span events on shard 0's lane.
        assert_eq!(
            out.matches(&format!("\"tid\":{lane0},")).count(),
            3,
            "{out}"
        );
        assert!(out.contains(&format!("\"tid\":{lane1},")), "{out}");
        assert!(out.contains("{\"name\":\"shard 0\"}"), "{out}");
        assert!(out.contains("{\"name\":\"shard 1\"}"), "{out}");
        // Raw thread lanes of the shard spans never materialize.
        assert!(!out.contains("\"tid\":7,"), "{out}");
        assert!(!out.contains("\"tid\":9,"), "{out}");
        // A shard-named span without the label keeps its thread lane.
        let bare = rec(5, None, 5, 3, "shard.query", 0);
        let out = chrome_trace(&[bare]);
        assert!(out.contains("\"tid\":3,"), "{out}");
        assert!(out.contains("{\"name\":\"lane 3\"}"), "{out}");
    }

    #[test]
    fn events_sort_by_start_time() {
        let out = chrome_trace(&[
            rec(2, None, 2, 1, "later", 900),
            rec(1, None, 1, 1, "early", 5),
        ]);
        let early = out.find("\"name\":\"early\"").unwrap();
        let later = out.find("\"name\":\"later\"").unwrap();
        assert!(early < later, "{out}");
    }
}
