//! Named instruments: counters, gauges, histograms.
//!
//! The registry is global-free — every [`crate::Telemetry`] owns one.
//! Instrument handles are `Arc`s handed out on first use; the name→handle
//! map takes a short `parking_lot` lock only on lookup/registration, and
//! callers on hot paths should cache the returned handle.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::histogram::{Histogram, HistogramSnapshot};

/// Monotone counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (e.g. memtable bytes, queue depth).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is below it (monotone publish — safe
    /// when several workers report the same logical watermark).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instrument name: static on the hot paths (no allocation), owned for
/// runtime-shaped names like per-shard cache gauges.
type Name = std::borrow::Cow<'static, str>;

/// Name → instrument maps. Hot-path names are static strings so the data
/// path never allocates; ordering in snapshots is lexicographic (BTreeMap).
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<Name, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<Name, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<Name, Arc<Histogram>>>,
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<Name, Arc<T>>>, name: Name) -> Arc<T> {
    if let Some(found) = map.read().get(name.as_ref()) {
        return Arc::clone(found);
    }
    Arc::clone(map.write().entry(name).or_default())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The named counter, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        get_or_create(&self.counters, Name::Borrowed(name))
    }

    /// The named gauge, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        get_or_create(&self.gauges, Name::Borrowed(name))
    }

    /// A gauge with a runtime-constructed name (e.g. the per-shard block
    /// cache gauges `ledger.cache.shard3.hits`). Allocates on first use of
    /// each name; callers on hot paths should cache the handle.
    pub fn gauge_owned(&self, name: impl Into<String>) -> Arc<Gauge> {
        get_or_create(&self.gauges, Name::Owned(name.into()))
    }

    /// A counter with a runtime-constructed name (see [`Registry::gauge_owned`]).
    pub fn counter_owned(&self, name: impl Into<String>) -> Arc<Counter> {
        get_or_create(&self.counters, Name::Owned(name.into()))
    }

    /// A histogram with a runtime-constructed name (see [`Registry::gauge_owned`]).
    pub fn histogram_owned(&self, name: impl Into<String>) -> Arc<Histogram> {
        get_or_create(&self.histograms, Name::Owned(name.into()))
    }

    /// The named histogram, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_create(&self.histograms, Name::Borrowed(name))
    }

    /// Point-in-time copy of every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }

    /// Remove every instrument (existing handles keep working but are no
    /// longer reachable by name and vanish from future snapshots).
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }
}

/// Immutable copy of a [`Registry`], sorted by instrument name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Counter value by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_instrument() {
        let r = Registry::new();
        r.counter("x").add(2);
        r.counter("x").add(3);
        assert_eq!(r.snapshot().counter("x"), 5);
    }

    #[test]
    fn gauges_go_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.set(10);
        g.add(-4);
        assert_eq!(r.snapshot().gauges["depth"], 6);
    }

    #[test]
    fn set_max_is_monotone() {
        let r = Registry::new();
        let g = r.gauge("watermark");
        g.set_max(5);
        g.set_max(3); // stale publisher loses
        assert_eq!(g.get(), 5);
        g.set_max(9);
        assert_eq!(r.snapshot().gauges["watermark"], 9);
    }

    #[test]
    fn snapshot_is_sorted_and_detached() {
        let r = Registry::new();
        r.counter("b").incr();
        r.counter("a").incr();
        let snap = r.snapshot();
        let names: Vec<_> = snap.counters.keys().cloned().collect();
        assert_eq!(names, ["a", "b"]);
        r.counter("a").add(100);
        assert_eq!(snap.counter("a"), 1, "snapshot must not track live values");
    }

    #[test]
    fn owned_and_static_names_alias() {
        let r = Registry::new();
        r.gauge("depth").set(3);
        r.gauge_owned(String::from("depth")).add(2);
        assert_eq!(r.snapshot().gauge("depth"), Some(5));
        r.gauge_owned(format!("shard{}.hits", 7)).set(9);
        assert_eq!(r.snapshot().gauge("shard7.hits"), Some(9));
    }

    #[test]
    fn reset_empties_future_snapshots() {
        let r = Registry::new();
        let held = r.counter("kept");
        held.incr();
        r.reset();
        assert!(r.snapshot().counters.is_empty());
        held.incr(); // must not panic; handle stays valid
    }
}
