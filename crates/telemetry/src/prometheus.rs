//! Prometheus text exposition (version 0.0.4) rendered from a
//! [`RegistrySnapshot`].
//!
//! * Counters and gauges map 1:1 (`# TYPE … counter` / `gauge`).
//! * Histograms become native Prometheus histograms: cumulative
//!   `_bucket{le="…"}` series over the non-empty log buckets plus the
//!   mandatory `le="+Inf"`, `_sum` and `_count` — and, because the
//!   log-bucketed layout already computes them cheaply, companion
//!   `_p50`/`_p95`/`_p99` gauges so dashboards don't need
//!   `histogram_quantile()` for the common percentiles.
//! * Instrument names are sanitised to the Prometheus grammar
//!   (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`,
//!   and every series is prefixed with the `tf_` namespace.

use std::fmt::Write as _;

use crate::histogram::{bucket_bounds, HistogramSnapshot};
use crate::registry::RegistrySnapshot;

/// Namespace prefix for every exported series.
pub const NAMESPACE: &str = "tf_";

/// Map an instrument name to a valid Prometheus metric name (without the
/// namespace prefix): invalid characters become `_`, and a leading digit
/// gets a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn render_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative = cumulative.saturating_add(c);
        let (_, high) = bucket_bounds(i);
        if high == u64::MAX {
            continue; // folded into +Inf below
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"{high}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
    for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
        let _ = writeln!(out, "{name}_{suffix} {}", h.quantile(q));
    }
}

/// Render a snapshot in Prometheus text exposition format.
pub fn render_prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (k, v) in &snapshot.counters {
        let name = format!("{NAMESPACE}{}", sanitize_name(k));
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }
    for (k, v) in &snapshot.gauges {
        let name = format!("{NAMESPACE}{}", sanitize_name(k));
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {v}");
    }
    for (k, h) in &snapshot.histograms {
        let name = format!("{NAMESPACE}{}", sanitize_name(k));
        render_histogram(&mut out, &name, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn sanitize_covers_grammar() {
        assert_eq!(sanitize_name("ledger.cache.hits"), "ledger_cache_hits");
        assert_eq!(sanitize_name("kv-wal bytes"), "kv_wal_bytes");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn exposition_has_counters_gauges_histograms() {
        let tel = Telemetry::enabled();
        tel.count("ledger.blocks.deserialized", 3);
        tel.registry().gauge("statedb.sstables").set(2);
        tel.observe("ghfk", 5);
        tel.observe("ghfk", 100);
        let text = render_prometheus(&tel.snapshot());
        assert!(text.contains("# TYPE tf_ledger_blocks_deserialized counter"));
        assert!(text.contains("tf_ledger_blocks_deserialized 3"));
        assert!(text.contains("# TYPE tf_statedb_sstables gauge"));
        assert!(text.contains("tf_statedb_sstables 2"));
        assert!(text.contains("# TYPE tf_ghfk histogram"));
        assert!(text.contains("tf_ghfk_bucket{le=\"5\"} 1"));
        assert!(text.contains("tf_ghfk_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("tf_ghfk_sum 105"));
        assert!(text.contains("tf_ghfk_count 2"));
        assert!(text.contains("tf_ghfk_p99 "));
    }

    #[test]
    fn buckets_are_cumulative_and_sorted() {
        let tel = Telemetry::enabled();
        for v in [1u64, 1, 2, 500, 70_000] {
            tel.observe("lat", v);
        }
        let text = render_prometheus(&tel.snapshot());
        let mut last_le = -1f64;
        let mut last_cum = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines().filter(|l| l.starts_with("tf_lat_bucket")) {
            bucket_lines += 1;
            let le_raw = line
                .split("le=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap();
            let le = if le_raw == "+Inf" {
                f64::INFINITY
            } else {
                le_raw.parse::<f64>().unwrap()
            };
            let cum: u64 = line.split(' ').next_back().unwrap().parse().unwrap();
            assert!(le > last_le, "le must ascend: {line}");
            assert!(cum >= last_cum, "counts must be cumulative: {line}");
            last_le = le;
            last_cum = cum;
        }
        assert!(bucket_lines >= 4, "one line per non-empty bucket plus +Inf");
        assert_eq!(last_cum, 5, "+Inf bucket equals count");
    }
}
