//! Resource accounting: a counting global allocator and process memory
//! gauges.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps two ledgers of
//! every allocation:
//!
//! * **process totals** (relaxed atomics) — bytes/calls allocated and
//!   freed, live bytes and their high-water mark — published as
//!   `mem.*` gauges on `/metrics` via [`publish_memory_gauges`];
//! * **per-thread counters** (plain `Cell`s, no synchronization) — read
//!   by [`SpanGuard`](crate::SpanGuard) at span open/close so that every
//!   [`SpanRecord`](crate::SpanRecord) carries the bytes and calls
//!   allocated *on its own thread* while it was open, plus the
//!   high-water mark of net live bytes (`peak_bytes`).
//!
//! The allocator is registered by binaries, not by this library: the CLI
//! and the bench harness do `#[global_allocator] static A: CountingAlloc
//! = CountingAlloc;` behind a default-on `counting-alloc` feature, so
//! library users and embedders keep the system allocator untouched.
//! When no counting allocator is installed every accounting entry point
//! short-circuits on one relaxed load and spans report zeros.
//!
//! Attribution semantics: a span is charged for all allocation activity
//! on its thread while it is open, which *includes* same-thread child
//! spans (like wall-clock time does) and *excludes* allocations made by
//! worker threads it fanned out to — those are charged to the workers'
//! own `span_in` spans. `peak_bytes` is the high-water mark of
//! `live - live_at_span_start` on the span's thread, tracked with the
//! same save/restore discipline as the span parent cell so nested spans
//! each see their own peak.

// The `GlobalAlloc` impl is the one place in this crate that needs
// `unsafe`: it forwards to `std::alloc::System` verbatim and touches no
// raw memory itself.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

use crate::Telemetry;

/// A `#[global_allocator]` wrapper around [`System`] that counts every
/// allocation into process totals and per-thread cells.
pub struct CountingAlloc;

static INSTALLED: AtomicBool = AtomicBool::new(false);
static TOTAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREED_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_DEALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

thread_local! {
    // Const-initialized `Cell`s: accessing them never allocates, so the
    // accounting hooks cannot recurse into the allocator.
    static T_BYTES: Cell<u64> = const { Cell::new(0) };
    static T_CALLS: Cell<u64> = const { Cell::new(0) };
    static T_LIVE: Cell<i64> = const { Cell::new(0) };
    static T_PEAK: Cell<i64> = const { Cell::new(0) };
}

#[inline]
fn on_alloc(size: usize) {
    if !INSTALLED.load(Ordering::Relaxed) {
        INSTALLED.store(true, Ordering::Relaxed);
    }
    let size_u = size as u64;
    let size_i = size as i64;
    TOTAL_ALLOC_BYTES.fetch_add(size_u, Ordering::Relaxed);
    TOTAL_ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size_i, Ordering::Relaxed) + size_i;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
    // `try_with`: a dying thread may allocate after TLS teardown; that
    // activity still lands in the process totals above.
    let _ = T_BYTES.try_with(|c| c.set(c.get().wrapping_add(size_u)));
    let _ = T_CALLS.try_with(|c| c.set(c.get() + 1));
    let _ = T_LIVE.try_with(|live| {
        let v = live.get() + size_i;
        live.set(v);
        let _ = T_PEAK.try_with(|peak| peak.set(peak.get().max(v)));
    });
}

#[inline]
fn on_dealloc(size: usize) {
    TOTAL_FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    TOTAL_DEALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
    let _ = T_LIVE.try_with(|live| live.set(live.get() - size as i64));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // Model as free(old) + alloc(new): byte totals stay exact and
            // live bytes track the net change; calls count one alloc.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// Whether a [`CountingAlloc`] is serving this process (detected from the
/// first counted allocation, so it is reliably `true` by the time any
/// telemetry code runs).
#[inline]
pub fn is_counting() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Saved per-thread allocation state at span open. Produced by
/// [`span_enter`], consumed by [`span_exit`].
#[derive(Debug, Clone, Copy)]
pub struct AllocMark {
    bytes: u64,
    calls: u64,
    live_at_start: i64,
    prev_peak: i64,
}

/// Allocation activity charged to a finished span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Bytes allocated on the span's thread while it was open.
    pub bytes: u64,
    /// Allocator calls on the span's thread while it was open.
    pub calls: u64,
    /// High-water mark of net live bytes (relative to span start).
    pub peak_bytes: u64,
}

/// Snapshot the calling thread's allocation counters at span open.
/// Returns `None` (and stays branch-cheap) when no counting allocator is
/// installed or the thread's TLS is tearing down.
#[inline]
pub fn span_enter() -> Option<AllocMark> {
    if !is_counting() {
        return None;
    }
    let bytes = T_BYTES.try_with(Cell::get).ok()?;
    let calls = T_CALLS.try_with(Cell::get).ok()?;
    let live_at_start = T_LIVE.try_with(Cell::get).ok()?;
    // Save the enclosing span's running peak and restart tracking from
    // the current live level — mirrors the parent-cell save/restore.
    let prev_peak = T_PEAK.try_with(|p| p.replace(live_at_start)).ok()?;
    Some(AllocMark {
        bytes,
        calls,
        live_at_start,
        prev_peak,
    })
}

/// Close out a span's allocation window: returns the charged delta and
/// restores the enclosing span's peak tracking (folding this span's peak
/// into it, since the parent was live the whole time).
#[inline]
pub fn span_exit(mark: AllocMark) -> AllocDelta {
    let bytes = T_BYTES
        .try_with(Cell::get)
        .map_or(0, |now| now.wrapping_sub(mark.bytes));
    let calls = T_CALLS
        .try_with(Cell::get)
        .map_or(0, |now| now.saturating_sub(mark.calls));
    let span_peak = T_PEAK.try_with(Cell::get).unwrap_or(mark.live_at_start);
    let _ = T_PEAK.try_with(|p| p.set(mark.prev_peak.max(span_peak)));
    AllocDelta {
        bytes,
        calls,
        peak_bytes: span_peak.saturating_sub(mark.live_at_start).max(0) as u64,
    }
}

/// Process-wide allocator totals since start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTotals {
    /// Total bytes handed out.
    pub allocated_bytes: u64,
    /// Total successful allocation calls (incl. zeroed and realloc).
    pub alloc_calls: u64,
    /// Total bytes returned.
    pub freed_bytes: u64,
    /// Total deallocation calls.
    pub dealloc_calls: u64,
    /// Bytes currently live (allocated minus freed).
    pub live_bytes: i64,
    /// High-water mark of live bytes.
    pub peak_live_bytes: i64,
}

/// Read the process-wide allocator totals (all zeros when no counting
/// allocator is installed).
pub fn totals() -> AllocTotals {
    AllocTotals {
        allocated_bytes: TOTAL_ALLOC_BYTES.load(Ordering::Relaxed),
        alloc_calls: TOTAL_ALLOC_CALLS.load(Ordering::Relaxed),
        freed_bytes: TOTAL_FREED_BYTES.load(Ordering::Relaxed),
        dealloc_calls: TOTAL_DEALLOC_CALLS.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
    }
}

/// Resident set size of this process in bytes, read from
/// `/proc/self/statm` (Linux only; `None` elsewhere or on parse failure).
pub fn rss_bytes() -> Option<u64> {
    // statm reports pages; the kernel page size is 4096 on every target
    // this repo builds for (x86_64/aarch64 Linux default configs).
    const PAGE: u64 = 4096;
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident * PAGE)
}

/// Refresh the `mem.*` gauges in `tel`'s registry from the allocator
/// totals and `/proc/self/statm`. Wired into the `/metrics` collect hook
/// so every scrape sees current values.
pub fn publish_memory_gauges(tel: &Telemetry) {
    let reg = tel.registry();
    if let Some(rss) = rss_bytes() {
        reg.gauge("mem.rss_bytes").set(rss as i64);
    }
    let t = totals();
    reg.gauge("mem.heap_live_bytes").set(t.live_bytes);
    reg.gauge("mem.heap_peak_live_bytes").set(t.peak_live_bytes);
    reg.gauge("mem.alloc_bytes_total")
        .set(t.allocated_bytes as i64);
    reg.gauge("mem.alloc_calls_total").set(t.alloc_calls as i64);
    reg.gauge("mem.freed_bytes_total").set(t.freed_bytes as i64);
    reg.gauge("mem.counting_allocator")
        .set(i64::from(is_counting()));
}

#[cfg(test)]
mod tests {
    use super::*;

    // Install the counting allocator for this crate's unit-test binary
    // only: integration tests (notably the chrome golden file) stay on
    // the system allocator and must keep seeing all-zero alloc fields.
    #[global_allocator]
    static TEST_ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn totals_grow_with_allocations() {
        let before = totals();
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        let after = totals();
        drop(v);
        assert!(is_counting());
        assert!(
            after.allocated_bytes >= before.allocated_bytes + (1 << 16),
            "{before:?} -> {after:?}"
        );
        assert!(after.alloc_calls > before.alloc_calls);
        assert!(after.peak_live_bytes >= 1 << 16);
        let freed = totals();
        assert!(freed.freed_bytes >= before.freed_bytes + (1 << 16));
    }

    #[test]
    fn span_window_charges_only_inner_allocations() {
        let mark = span_enter().expect("allocator installed");
        let v: Vec<u8> = vec![0; 100_000];
        drop(v);
        let delta = span_exit(mark);
        assert!(delta.bytes >= 100_000, "{delta:?}");
        assert!(delta.calls >= 1);
        assert!(delta.peak_bytes >= 100_000, "{delta:?}");

        // A window with no allocations charges (almost) nothing: the
        // `try_with` machinery itself must not allocate.
        let mark = span_enter().unwrap();
        let delta = span_exit(mark);
        assert_eq!(delta.bytes, 0, "{delta:?}");
        assert_eq!(delta.peak_bytes, 0);
    }

    #[test]
    fn nested_windows_restore_the_parent_peak() {
        let outer = span_enter().unwrap();
        let big: Vec<u8> = vec![0; 1 << 20];
        drop(big);
        // After the 1MiB spike is freed, an inner window peaks small...
        let inner = span_enter().unwrap();
        let small: Vec<u8> = vec![0; 1 << 10];
        drop(small);
        let inner_delta = span_exit(inner);
        let outer_delta = span_exit(outer);
        assert!(inner_delta.peak_bytes >= 1 << 10);
        assert!(inner_delta.peak_bytes < 1 << 19, "{inner_delta:?}");
        // ...but the outer window still remembers its own spike.
        assert!(outer_delta.peak_bytes >= 1 << 20, "{outer_delta:?}");
        assert!(outer_delta.bytes >= (1 << 20) + (1 << 10));
    }

    #[test]
    fn memory_gauges_land_in_the_registry() {
        let tel = Telemetry::enabled();
        let _keep = vec![0u8; 4096];
        publish_memory_gauges(&tel);
        let snap = tel.snapshot();
        assert_eq!(snap.gauge("mem.counting_allocator"), Some(1));
        assert!(snap.gauge("mem.heap_live_bytes").unwrap() > 0);
        assert!(snap.gauge("mem.alloc_bytes_total").unwrap() > 0);
        assert!(snap.gauge("mem.heap_peak_live_bytes").unwrap() > 0);
        #[cfg(target_os = "linux")]
        assert!(snap.gauge("mem.rss_bytes").unwrap() > 0);
    }

    #[test]
    fn rss_parses_on_linux() {
        #[cfg(target_os = "linux")]
        assert!(rss_bytes().unwrap() > 1 << 20, "RSS under 1MiB is absurd");
    }
}
