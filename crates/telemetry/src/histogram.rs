//! Log-bucketed latency histogram, HDR-style.
//!
//! Values 0–15 get exact buckets; above that each power-of-two octave is
//! split into 8 log-linear sub-buckets, i.e. relative error ≤ 12.5% —
//! plenty for latency quantiles while keeping the whole histogram at 496
//! fixed buckets (~4 KB of atomics, no allocation on record).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: 16 exact + 8 sub-buckets × 60 octaves (2^4..2^63).
pub const BUCKETS: usize = 16 + 8 * 60;

/// Map a value to its bucket index. Total order: monotone in `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < 16 {
        value as usize
    } else {
        let e = 63 - value.leading_zeros() as usize; // 4..=63
        let m = ((value >> (e - 3)) & 7) as usize; // 0..=7
        16 + (e - 4) * 8 + m
    }
}

/// Inclusive `(low, high)` value range of a bucket.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index out of range");
    if index < 16 {
        (index as u64, index as u64)
    } else {
        let g = index - 16;
        let e = g / 8 + 4;
        let m = (g % 8) as u64;
        let width = 1u64 << (e - 3);
        let low = (8 + m) << (e - 3);
        let high = low.saturating_add(width - 1);
        (low, high)
    }
}

/// Concurrent histogram. All recording is relaxed atomics; snapshots are
/// taken without stopping writers (per-field consistency only).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of all buckets and summary fields.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Zero every bucket and summary field.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Immutable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (wraps on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate of the `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket where the cumulative count crosses `q·count`, clamped to
    /// the observed max.
    ///
    /// Edge cases are defined, not accidental: an **empty** histogram
    /// returns 0 for every `q` (there is no meaningful quantile to
    /// report, and exporters rely on a stable zero); a **single-sample**
    /// histogram returns that sample's bucket clamped to the sample
    /// itself for every `q`; bucket counts near `u64::MAX` accumulate
    /// with saturating arithmetic, so pathological (or corrupted)
    /// snapshots degrade to the max bucket instead of overflowing.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_tile_the_u64_line() {
        let mut expected_low = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(
                lo,
                expected_low,
                "bucket {i} must start after bucket {}",
                i.wrapping_sub(1)
            );
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                return;
            }
            expected_low = hi + 1;
        }
        panic!("last bucket must reach u64::MAX");
    }

    #[test]
    fn quantiles_of_uniform_range() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let p50 = s.p50();
        // 12.5% relative bucket error on the high side.
        assert!((450..=600).contains(&p50), "p50 was {p50}");
        assert!(s.p99() >= s.p95() && s.p95() >= p50);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.min, s.max, s.mean(), s.p99()), (0, 0, 0, 0, 0));
        // Every quantile of an empty histogram is 0, by contract.
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0, "q={q}");
        }
    }

    #[test]
    fn single_sample_quantiles_all_equal_the_sample() {
        let h = Histogram::new();
        h.record(7);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 7, "q={q}");
        }
        assert_eq!((s.min, s.max, s.mean()), (7, 7, 7));
    }

    #[test]
    fn saturating_counts_do_not_overflow_quantiles() {
        // A snapshot with near-u64::MAX counts in several buckets: the
        // cumulative walk must saturate instead of wrapping (which would
        // panic in debug builds).
        let mut buckets = vec![0u64; BUCKETS];
        buckets[0] = u64::MAX;
        buckets[1] = u64::MAX;
        buckets[10] = 5;
        let s = HistogramSnapshot {
            count: u64::MAX,
            sum: u64::MAX,
            min: 0,
            max: 10,
            buckets,
        };
        assert_eq!(s.quantile(0.5), 0, "half the mass sits in bucket 0");
        assert_eq!(
            s.quantile(1.0),
            0,
            "saturated cumulative count degrades to the first heavy bucket"
        );
        assert!(s.p99() <= s.max);
        assert_eq!(s.mean(), 1, "mean is sum/count, saturated inputs ok");
    }

    #[test]
    fn huge_values_do_not_panic() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile(1.0), u64::MAX);
    }
}
