//! A tiny std-only HTTP listener exposing live telemetry.
//!
//! No HTTP dependency: the server answers the three fixed `GET` routes a
//! scraper needs and nothing else —
//!
//! * `/metrics` — Prometheus text exposition of the registry (see
//!   [`crate::prometheus`]);
//! * `/healthz` — `200 ok` liveness probe;
//! * `/flight`  — recent flight-recorder contents as JSON (flat span
//!   records plus recorded/dropped totals).
//!
//! Requests are served sequentially on the caller's thread ([`MetricsServer::run`]
//! blocks); a scrape is a snapshot + render, microseconds of work, so a
//! single-threaded accept loop is plenty for Prometheus-style pull
//! intervals. An optional *collect hook* runs before every scrape so the
//! owner can refresh point-in-time gauges (SSTable counts, WAL bytes,
//! cache occupancy) that are only meaningful when sampled.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::prometheus::render_prometheus;
use crate::slowlog::span_json;
use crate::Telemetry;

/// Runs before every `/metrics` and `/flight` scrape to refresh gauges.
pub type CollectHook = Box<dyn Fn(&Telemetry) + Send + Sync>;

/// A bound-but-not-yet-running metrics server.
pub struct MetricsServer {
    listener: TcpListener,
    tel: Telemetry,
    collect: Option<CollectHook>,
    shutdown: Arc<AtomicBool>,
    requests_served: u64,
    max_requests: Option<u64>,
}

/// Stops a running [`MetricsServer`] from another thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Ask the server to stop after the in-flight request (if any). A
    /// wake-up connection is made so a server blocked in `accept` exits
    /// promptly.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

impl MetricsServer {
    /// Bind to `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(
        addr: impl ToSocketAddrs,
        tel: Telemetry,
        collect: Option<CollectHook>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(MetricsServer {
            listener,
            tel,
            collect,
            shutdown: Arc::new(AtomicBool::new(false)),
            requests_served: 0,
            max_requests: None,
        })
    }

    /// Serve at most `n` requests, then return from [`MetricsServer::run`]
    /// (used by smoke tests and `tfq serve --requests`).
    pub fn with_max_requests(mut self, n: u64) -> Self {
        self.max_requests = Some(n);
        self
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops the accept loop from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: self.shutdown.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Accept and answer requests until shut down (or until the request
    /// budget is exhausted). Per-connection I/O errors are swallowed — a
    /// dropped scrape must not kill a serving peer.
    pub fn run(mut self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let _ = self.handle(stream);
            self.requests_served += 1;
            if let Some(max) = self.max_requests {
                if self.requests_served >= max {
                    break;
                }
            }
        }
        Ok(())
    }

    fn handle(&self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        stream.set_write_timeout(Some(Duration::from_secs(2)))?;
        let mut reader = BufReader::new(stream);
        let mut request_line = String::new();
        reader.read_line(&mut request_line)?;
        // Drain headers so well-behaved clients see a clean close.
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 || header.trim_end().is_empty() {
                break;
            }
        }
        let mut stream = reader.into_inner();
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("");
        let path = path.split('?').next().unwrap_or(path);
        if method != "GET" {
            return respond(&mut stream, 405, "text/plain", "method not allowed\n");
        }
        match path {
            "/metrics" => {
                if let Some(collect) = &self.collect {
                    collect(&self.tel);
                }
                let body = render_prometheus(&self.tel.snapshot());
                respond(
                    &mut stream,
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    &body,
                )
            }
            "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
            "/flight" => {
                if let Some(collect) = &self.collect {
                    collect(&self.tel);
                }
                respond(&mut stream, 200, "application/json", &self.flight_json())
            }
            _ => respond(&mut stream, 404, "text/plain", "not found\n"),
        }
    }

    fn flight_json(&self) -> String {
        use std::fmt::Write as _;
        let flight = self.tel.flight();
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"recorded\":{},\"dropped\":{},\"spans\":[",
            flight.recorded(),
            flight.dropped()
        );
        for (i, record) in flight.recent().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&span_json(record));
        }
        out.push_str("],\"roots\":[");
        for (i, record) in flight.recent_roots().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&span_json(record));
        }
        out.push_str("]}");
        out
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Blocking `GET` against a served route; returns `(status, body)`. Used
/// by the integration tests and `tfq`'s own smoke checks — a std-only
/// stand-in for curl.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    std::io::Read::read_to_string(&mut stream, &mut response)?;
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_server(tel: Telemetry, max: u64) -> (SocketAddr, std::thread::JoinHandle<()>) {
        let server = MetricsServer::bind("127.0.0.1:0", tel, None)
            .unwrap()
            .with_max_requests(max);
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    #[test]
    fn healthz_and_404_and_metrics() {
        let tel = Telemetry::enabled();
        tel.count("ops", 2);
        tel.observe("lat", 9);
        let (addr, handle) = spawn_server(tel, 3);
        let (status, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("tf_ops 2"), "{body}");
        assert!(body.contains("tf_lat_bucket{le=\"+Inf\"} 1"), "{body}");
        handle.join().unwrap();
    }

    #[test]
    fn flight_route_returns_recent_spans() {
        let tel = Telemetry::enabled();
        {
            let _q = tel.span("query");
            let _c = tel.span("child");
        }
        let (addr, handle) = spawn_server(tel, 1);
        let (status, body) = http_get(addr, "/flight").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"recorded\":2"), "{body}");
        assert!(body.contains("\"name\":\"query\""), "{body}");
        assert!(body.contains("\"name\":\"child\""), "{body}");
        assert!(body.contains("\"roots\":[{"), "{body}");
        // Trace-context fields: every span carries its trace id and thread
        // lane, and the child links to its parent span id.
        assert!(body.contains("\"trace\":"), "{body}");
        assert!(body.contains("\"thread\":"), "{body}");
        assert!(body.contains("\"parent\":"), "{body}");
        handle.join().unwrap();
    }

    #[test]
    fn collect_hook_runs_per_scrape() {
        let tel = Telemetry::enabled();
        let hook: CollectHook = Box::new(|tel: &Telemetry| {
            tel.registry().gauge("refreshed").add(1);
        });
        let server = MetricsServer::bind("127.0.0.1:0", tel, Some(hook))
            .unwrap()
            .with_max_requests(2);
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let (_, body) = http_get(addr, "/metrics").unwrap();
        assert!(body.contains("tf_refreshed 1"), "{body}");
        let (_, body) = http_get(addr, "/metrics").unwrap();
        assert!(body.contains("tf_refreshed 2"), "{body}");
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_handle_stops_the_loop() {
        let tel = Telemetry::enabled();
        let server = MetricsServer::bind("127.0.0.1:0", tel, None).unwrap();
        let shutdown = server.shutdown_handle().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        shutdown.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn non_get_is_rejected() {
        let tel = Telemetry::enabled();
        let (addr, handle) = spawn_server(tel, 1);
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        std::io::Read::read_to_string(&mut stream, &mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        handle.join().unwrap();
    }
}
