//! Flight recorder under concurrency: N recorder threads racing one
//! drainer must lose no writes (every record lands or is counted as
//! evicted), keep memory bounded at the configured capacity, and never
//! panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fabric_telemetry::{FlightRecorder, SpanRecord, Telemetry};

fn record(id: u64, name: &'static str) -> SpanRecord {
    SpanRecord {
        id,
        parent: None,
        trace: id,
        thread: 1,
        name,
        label: None,
        start_ns: id,
        dur_ns: 1,
        metrics: Vec::new(),
        alloc_bytes: 0,
        alloc_calls: 0,
        peak_bytes: 0,
    }
}

#[test]
fn writers_race_one_drainer_without_loss() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 5_000;
    const CAPACITY: usize = 128;
    let flight = Arc::new(FlightRecorder::new(CAPACITY, 16));
    let stop = Arc::new(AtomicBool::new(false));

    let drainer = {
        let flight = Arc::clone(&flight);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut observed_max = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let recent = flight.recent();
                observed_max = observed_max.max(recent.len());
                assert!(
                    recent.len() <= CAPACITY,
                    "ring exceeded capacity: {}",
                    recent.len()
                );
                // The window is internally consistent: ids strictly
                // ascend per writer (writer w emits w*PER_WRITER + i).
                for pair in recent.windows(2) {
                    if pair[0].id / PER_WRITER == pair[1].id / PER_WRITER {
                        assert!(pair[0].id < pair[1].id || pair[0].start_ns <= pair[1].start_ns);
                    }
                }
                std::thread::yield_now();
            }
            observed_max
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let flight = Arc::clone(&flight);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    flight.record(&record(w * PER_WRITER + i, "work"));
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let observed_max = drainer.join().unwrap();
    assert!(observed_max <= CAPACITY);

    // Conservation: every record was either retained or evicted.
    assert_eq!(flight.recorded(), WRITERS * PER_WRITER);
    assert_eq!(
        flight.dropped() + flight.recent().len() as u64,
        WRITERS * PER_WRITER
    );
    assert_eq!(flight.recent().len(), CAPACITY, "ring filled to capacity");
}

#[test]
fn telemetry_spans_from_many_threads_land_in_flight() {
    let tel = Telemetry::enabled();
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let tel = tel.clone();
            std::thread::spawn(move || {
                for _ in 0..500 {
                    let _root = tel.span("query");
                    let _child = tel.span("stage");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(tel.flight().recorded(), 4 * 500 * 2);
    assert_eq!(
        tel.flight().dropped() + tel.flight().recent().len() as u64,
        4 * 500 * 2
    );
    // Roots ring holds only parentless spans.
    assert!(tel
        .flight()
        .recent_roots()
        .iter()
        .all(|r| r.parent.is_none()));
}

#[test]
fn concurrent_capacity_changes_stay_bounded() {
    let flight = Arc::new(FlightRecorder::new(64, 8));
    let writer = {
        let flight = Arc::clone(&flight);
        std::thread::spawn(move || {
            for i in 0..10_000 {
                flight.record(&record(i, "w"));
            }
        })
    };
    for cap in [32usize, 8, 128, 16] {
        flight.set_capacity(cap, 4);
        assert!(flight.recent().len() <= 128);
        std::thread::yield_now();
    }
    writer.join().unwrap();
    let final_len = flight.recent().len();
    assert!(final_len <= 16, "final capacity respected: {final_len}");
}
