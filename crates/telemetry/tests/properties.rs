//! Property and concurrency tests for fabric-telemetry (ISSUE 1 satellite):
//! histogram bucket soundness under proptest and lossless recording under
//! crossbeam scoped threads.

use fabric_telemetry::histogram::{bucket_bounds, bucket_index, BUCKETS};
use fabric_telemetry::{Histogram, Telemetry};
use proptest::prelude::*;

proptest! {
    /// Bucket boundaries are monotone: each bucket starts right after the
    /// previous one ends, and indexing is monotone in the value.
    #[test]
    fn bucket_boundaries_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
        let (lo_lo, _) = bucket_bounds(bucket_index(lo));
        let (hi_lo, _) = bucket_bounds(bucket_index(hi));
        prop_assert!(lo_lo <= hi_lo, "bucket lower bounds must be monotone");
    }

    /// Every value lands in exactly one bucket, and that bucket's bounds
    /// contain the value.
    #[test]
    fn value_lands_in_exactly_one_bucket(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKETS);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {idx} = [{lo}, {hi}]");
        // No other bucket contains it: bounds are disjoint, so it is
        // enough to check the neighbours.
        if idx > 0 {
            let (_, prev_hi) = bucket_bounds(idx - 1);
            prop_assert!(prev_hi < v);
        }
        if idx + 1 < BUCKETS {
            let (next_lo, _) = bucket_bounds(idx + 1);
            prop_assert!(v < next_lo);
        }
    }

    /// Recording a batch of values preserves count and sum, and every
    /// value is inside the histogram's [min, max].
    #[test]
    fn histogram_totals_match(values in proptest::collection::vec(0u64..1 << 40, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.min, *values.iter().min().unwrap());
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    /// Quantile estimates never exceed the observed max, never undershoot
    /// the observed min, and are monotone in q.
    #[test]
    fn quantiles_are_ordered(values in proptest::collection::vec(0u64..1 << 32, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        prop_assert!(s.min <= p50);
        prop_assert!(p50 <= p95 && p95 <= p99);
        prop_assert!(p99 <= s.max);
    }
}

/// Counters, histograms, and spans must not lose recordings when hammered
/// from crossbeam scoped threads.
#[test]
fn concurrent_recorders_lose_nothing() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 5_000;

    let tel = Telemetry::enabled();
    crossbeam::thread::scope(|scope| {
        for t in 0..THREADS {
            let tel = tel.clone();
            scope.spawn(move |_| {
                for i in 0..PER_THREAD {
                    tel.count("ops", 1);
                    tel.observe("value", t as u64 * PER_THREAD + i);
                    let mut span = tel.span("work");
                    span.record("items", 1);
                }
            });
        }
    })
    .expect("scoped threads must not panic");

    let spans = tel.drain_spans();
    assert_eq!(spans.len(), THREADS * PER_THREAD as usize);
    assert!(spans.iter().all(|s| s.metric("items") == Some(1)));
    // Span ids are unique across threads.
    let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), spans.len());

    let snap = tel.snapshot();
    assert_eq!(snap.counter("ops"), THREADS as u64 * PER_THREAD);
    let hist = snap.histogram("value").expect("histogram recorded");
    assert_eq!(hist.count, THREADS as u64 * PER_THREAD);
    let expected_sum: u64 = (0..(THREADS as u64 * PER_THREAD)).sum();
    assert_eq!(hist.sum, expected_sum);
    // The span-duration histogram fed by guards also sees every drop.
    assert_eq!(
        snap.histogram("work").expect("span histogram").count,
        THREADS as u64 * PER_THREAD
    );
}

/// Spans on different threads never adopt each other as parents.
#[test]
fn spans_do_not_cross_threads() {
    let tel = Telemetry::enabled();
    crossbeam::thread::scope(|scope| {
        for _ in 0..4 {
            let tel = tel.clone();
            scope.spawn(move |_| {
                let _outer = tel.span("outer");
                let _inner = tel.span("inner");
            });
        }
    })
    .unwrap();
    let tree = tel.span_tree();
    assert_eq!(tree.len(), 4, "each thread contributes one root");
    for root in &tree {
        assert_eq!(root.record.name, "outer");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].record.name, "inner");
    }
}
