//! Golden-file test for the Prometheus text renderer: a fixed registry
//! must render byte-for-byte identically to `golden_metrics.prom`. If a
//! renderer change is intentional, regenerate the golden with
//! `UPDATE_GOLDEN=1 cargo test -p fabric-telemetry --test prometheus_golden`.

use fabric_telemetry::{render_prometheus, Telemetry};

fn fixed_snapshot() -> fabric_telemetry::RegistrySnapshot {
    let tel = Telemetry::enabled();
    tel.count("ledger.blocks.deserialized", 42);
    tel.count("ledger.cache.hits", 7);
    tel.registry().gauge("statedb.sstables").set(3);
    tel.registry().gauge("indexdb.wal_bytes").set(16384);
    tel.registry().gauge("ledger.height").set(-0); // zero renders as 0
    for v in [3u64, 3, 14, 90, 1_500, 70_000, 70_001] {
        tel.observe("ghfk", v);
    }
    tel.observe("query.ferry", 1_000_000);
    tel.snapshot()
}

#[test]
fn renderer_matches_golden_file() {
    let rendered = render_prometheus(&fixed_snapshot());
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_metrics.prom");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "renderer output diverged from tests/golden_metrics.prom; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_is_valid_exposition_format() {
    // Independent of the exact bytes: every non-comment line is
    // `name[{labels}] value`, every # line is a TYPE comment, and every
    // histogram ends with an +Inf bucket equal to its _count.
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden_metrics.prom"
    ))
    .unwrap();
    let mut inf_counts = std::collections::BTreeMap::new();
    let mut counts = std::collections::BTreeMap::new();
    for line in golden.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            let name = it.next().unwrap();
            let kind = it.next().unwrap();
            assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
            assert!(name.starts_with("tf_"), "{line}");
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect(line);
        assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        if let Some(name) = series.strip_suffix("_bucket{le=\"+Inf\"}") {
            inf_counts.insert(name.to_string(), value.to_string());
        }
        if let Some(name) = series.strip_suffix("_count") {
            counts.insert(name.to_string(), value.to_string());
        }
    }
    assert!(!inf_counts.is_empty(), "no histograms in golden");
    assert_eq!(inf_counts, counts, "+Inf bucket must equal _count");
}
