//! Golden-file test for the Chrome trace-event exporter: a fixed span
//! set must render byte-for-byte identically to `golden_chrome.json`.
//! If an exporter change is intentional, regenerate the golden with
//! `UPDATE_GOLDEN=1 cargo test -p fabric-telemetry --test chrome_golden`.
//!
//! The fixture mirrors what `tfq trace --export chrome` records on a
//! pipelined ingest + parallel query: one commit trace whose stage spans
//! ran on worker lanes, and one query trace with a per-key cursor span
//! on a fan-out lane.

use fabric_telemetry::{chrome_trace, SpanRecord};

fn span(
    id: u64,
    parent: Option<u64>,
    trace: u64,
    thread: u64,
    name: &'static str,
    start_ns: u64,
    dur_ns: u64,
) -> SpanRecord {
    SpanRecord {
        id,
        parent,
        trace,
        thread,
        name,
        label: None,
        start_ns,
        dur_ns,
        metrics: Vec::new(),
        alloc_bytes: 0,
        alloc_calls: 0,
        peak_bytes: 0,
    }
}

fn fixed_records() -> Vec<SpanRecord> {
    let mut commit = span(1, None, 1, 1, "ledger.commit", 0, 950_000);
    commit.label = Some("block 7".into());
    commit.metrics.push(("txs", 4));
    let mut append = span(2, Some(1), 1, 2, "commit.append", 120_000, 300_500);
    append.metrics.push(("bytes", 8_192));
    let index = span(3, Some(1), 1, 3, "commit.index", 430_000, 150_000);
    let statedb = span(4, Some(1), 1, 4, "commit.statedb", 430_250, 180_125);
    let mut query = span(5, None, 5, 1, "query.ferry.parallel", 1_000_000, 2_000_000);
    query.label = Some("Auto tau=(0,5000] workers=2".into());
    let mut worker = span(6, Some(5), 5, 9, "query.worker.key", 1_050_000, 900_000);
    worker.label = Some("S00001".into());
    worker.metrics.push(("events", 17));
    vec![commit, append, index, statedb, query, worker]
}

#[test]
fn exporter_matches_golden_file() {
    let rendered = chrome_trace(&fixed_records());
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_chrome.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "exporter output diverged from tests/golden_chrome.json; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_keeps_the_trace_event_schema() {
    // Independent of exact bytes: the golden must stay loadable by
    // Perfetto / chrome://tracing. Checked structurally (no serde in the
    // workspace): balanced braces, the four required keys on every
    // complete event, metadata naming for processes and threads, and
    // parent links that reference a span in the same document.
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden_chrome.json"
    ))
    .unwrap();
    assert!(golden.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(golden.ends_with("]}"));
    // Brace balance only: square brackets also appear inside span labels
    // ("tau=(0,5000]"), so their raw counts don't pair up.
    assert_eq!(golden.matches('{').count(), golden.matches('}').count());

    let complete_events = golden.matches("\"ph\":\"X\"").count();
    assert!(
        complete_events >= 6,
        "lost complete events: {complete_events}"
    );
    for key in ["\"ts\":", "\"dur\":", "\"pid\":", "\"tid\":"] {
        assert!(
            golden.matches(key).count() >= complete_events,
            "complete events missing {key}"
        );
    }
    // Process rows are named after root spans; worker lanes get thread rows.
    assert!(golden.contains("\"name\":\"process_name\""));
    assert!(golden.contains("\"name\":\"thread_name\""));
    assert!(golden.contains("trace 1: ledger.commit[block 7]"));
    assert!(golden.contains("trace 5: query.ferry.parallel"));
    // Cross-thread stage spans keep their parent links in args.
    for parent in ["\"parent\":1", "\"parent\":5"] {
        assert!(golden.contains(parent), "missing {parent}");
    }
}
