//! QueueProbe under multi-producer contention, and histogram saturation.
//!
//! The depth gauge is the one queue instrument whose correctness depends
//! on ordering across threads: the probe raises depth *before* a
//! blocking send and lowers it only after a successful receive, so any
//! interleaving of producers and consumers must keep the gauge
//! non-negative. A sampler thread races the workload and checks every
//! observation; the wait histograms must meanwhile be monotone (counts
//! never decrease between snapshots).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fabric_telemetry::{Histogram, QueueProbe, Telemetry};

#[test]
fn depth_gauge_never_goes_negative_under_contention() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 2_000;

    let tel = Telemetry::enabled();
    let probe = QueueProbe::new(&tel, "contention");
    let (tx, rx) = std::sync::mpsc::sync_channel::<usize>(8);

    let done = Arc::new(AtomicBool::new(false));
    let sampler = {
        let probe = probe.clone();
        let tel = tel.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut observations = 0u64;
            let mut last_send_count = 0u64;
            let mut last_drain_count = 0u64;
            while !done.load(Ordering::Relaxed) {
                let depth = probe.depth();
                assert!(depth >= 0, "depth gauge dipped negative: {depth}");
                // Depth is bounded by capacity + producers blocked in
                // send, plus one: the consumer decrements *after* its
                // recv closure returns, so a just-received item can
                // still be counted for an instant.
                assert!(
                    depth <= 8 + PRODUCERS as i64 + 1,
                    "depth above any possible backlog: {depth}"
                );
                let snap = tel.snapshot();
                for (name, last) in [
                    ("queue.contention.send_wait_ns", &mut last_send_count),
                    ("queue.contention.drain_wait_ns", &mut last_drain_count),
                ] {
                    if let Some(h) = snap.histogram(name) {
                        assert!(
                            h.count >= *last,
                            "{name} went backwards: {} < {last}",
                            h.count
                        );
                        *last = h.count;
                    }
                }
                observations += 1;
                std::thread::yield_now();
            }
            observations
        })
    };

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let probe = probe.clone();
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    probe.send(|| tx.send(p * PER_PRODUCER + i)).unwrap();
                }
            })
        })
        .collect();
    drop(tx);

    // Receive an exact count: a recv against the closed channel would
    // still decrement the gauge (documented shutdown skew), which is
    // exactly the case the live-traffic invariant excludes.
    for _ in 0..PRODUCERS * PER_PRODUCER {
        probe.recv(|| rx.recv()).unwrap();
    }
    for t in producers {
        t.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let observations = sampler.join().unwrap();

    assert!(observations > 0, "sampler never ran");
    let snap = tel.snapshot();
    assert_eq!(
        snap.counter("queue.contention.items"),
        (PRODUCERS * PER_PRODUCER) as u64
    );
    assert_eq!(
        snap.gauge("queue.contention.depth"),
        Some(0),
        "everything delivered, gauge must rest at zero"
    );
    let send_wait = snap.histogram("queue.contention.send_wait_ns").unwrap();
    assert_eq!(send_wait.count, (PRODUCERS * PER_PRODUCER) as u64);
    let drain_wait = snap.histogram("queue.contention.drain_wait_ns").unwrap();
    assert_eq!(drain_wait.count, (PRODUCERS * PER_PRODUCER) as u64);
}

#[test]
fn wait_histograms_saturate_at_the_top_bucket() {
    // A wait so long it lands past every finite bucket bound must clamp
    // into the top bucket, keep counting, and keep quantiles monotone.
    let h = Histogram::new();
    for _ in 0..10 {
        h.record(u64::MAX);
    }
    h.record(1);
    let snap = h.snapshot();
    assert_eq!(snap.count, 11);
    assert_eq!(snap.max, u64::MAX);
    assert_eq!(snap.quantile(1.0), u64::MAX, "top bucket reports max");
    assert!(
        snap.quantile(0.99) >= snap.quantile(0.5),
        "quantiles must stay monotone under saturation"
    );
    // Saturated recordings all share the top bucket: the quantile walk
    // must not run past it no matter how many land there.
    for _ in 0..1_000 {
        h.record(u64::MAX - 1);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, 1_011);
    assert_eq!(snap.quantile(1.0), u64::MAX);

    // And through a probe: a manual wait of u64::MAX must not panic and
    // must land in the same saturated bucket.
    let tel = Telemetry::enabled();
    let probe = QueueProbe::new(&tel, "sat");
    probe.enqueued();
    probe.send_waited_ns(u64::MAX);
    probe.drained(1, u64::MAX);
    let snap = tel.snapshot();
    assert_eq!(snap.histogram("queue.sat.send_wait_ns").unwrap().count, 1);
    assert_eq!(
        snap.histogram("queue.sat.send_wait_ns").unwrap().max,
        u64::MAX
    );
    assert_eq!(snap.histogram("queue.sat.drain_wait_ns").unwrap().count, 1);
}

#[test]
fn depth_track_points_record_only_when_enabled() {
    let tel = Telemetry::enabled();
    let probe = QueueProbe::new(&tel, "tracked");
    let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(4);
    probe.send(|| tx.send(1)).unwrap();
    assert!(
        tel.drain_track_points().is_empty(),
        "track points must be off by default"
    );
    tel.enable_track_points(true);
    probe.send(|| tx.send(2)).unwrap();
    probe.recv(|| rx.recv()).unwrap();
    let points = tel.drain_track_points();
    assert_eq!(points.len(), 2, "one sample per depth change");
    assert!(points.iter().all(|p| &*p.name == "queue.tracked.depth"));
    assert_eq!(points[0].value, 2, "after second send");
    assert_eq!(points[1].value, 1, "after recv");
    assert!(points[0].at_ns <= points[1].at_ns);
}
