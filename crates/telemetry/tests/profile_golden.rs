//! Golden-file test for the collapsed-stack profile format: a fixed set
//! of samples must render byte-for-byte identically to
//! `golden_profile.collapsed`, and the output must satisfy the
//! flamegraph.pl / inferno grammar (`frame;frame;frame count\n` per
//! line, frames separated by `;`, a single space before the count).
//! If a format change is intentional, regenerate the golden with
//! `UPDATE_GOLDEN=1 cargo test -p fabric-telemetry --test profile_golden`.

use fabric_telemetry::Profile;

fn fixed_profile() -> Profile {
    let mut p = Profile::default();
    // Mirrors what the sampler sees on a pipelined ingest + parallel
    // query: commit stacks on worker lanes, query stacks on the caller.
    for _ in 0..14 {
        p.record_sample(&["ledger.commit", "commit.append", "kv.wal.append"]);
    }
    for _ in 0..9 {
        p.record_sample(&["ledger.commit", "commit.statedb"]);
    }
    for _ in 0..25 {
        p.record_sample(&["query.ferry", "ghfk", "block.deserialize"]);
    }
    for _ in 0..6 {
        p.record_sample(&["query.ferry", "ghfk"]);
    }
    p.record_sample(&["ledger.commit"]);
    p
}

#[test]
fn collapsed_output_matches_golden_file() {
    let rendered = fixed_profile().collapsed();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden_profile.collapsed"
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "collapsed-stack output diverged from tests/golden_profile.collapsed; \
         if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_keeps_the_flamegraph_grammar() {
    // Independent of exact bytes: every line must parse as
    // `frame(;frame)* count` — what inferno / flamegraph.pl consume.
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden_profile.collapsed"
    ))
    .unwrap();
    assert!(golden.ends_with('\n'), "must end with a trailing newline");
    let mut total = 0u64;
    let mut prev_stack = String::new();
    for line in golden.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("line needs `stack count`");
        assert!(!stack.is_empty(), "empty stack in {line:?}");
        assert!(
            stack.split(';').all(|f| !f.is_empty() && !f.contains(' ')),
            "malformed frame in {line:?}"
        );
        total += count.parse::<u64>().expect("count must be an integer");
        assert!(*stack > *prev_stack, "stacks must be sorted and unique");
        prev_stack = stack.to_string();
    }
    assert_eq!(
        total,
        fixed_profile().samples(),
        "counts must cover all samples"
    );
}
