//! `tfq` — build, inspect and query temporal-fabric ledgers from the shell.
//!
//! ```text
//! tfq demo    <dir> [ds1|ds2|ds3] [--scale N] [--mode se|me] [--m2-u U]
//! tfq info    <dir>
//! tfq verify  <dir>
//! tfq block   <dir> <number>
//! tfq history <dir> <key>
//! tfq events  <dir> <key> <t1> <t2> [--engine tqf|m1|m2] [--u U]
//! tfq join    <dir> <t1> <t2>      [--engine tqf|m1|m2] [--u U]
//! tfq index   <dir> --u U [--from T1] [--to T2]      # build M1 indexes
//! tfq serve   <dir> [--addr H:P] [--slow-ms N]       # live /metrics endpoint
//! tfq bench-diff <baseline.json> <current.json>      # regression gate
//! ```
//!
//! Argument parsing is deliberately dependency-free.

mod args;
mod commands;
mod serve;

use std::process::ExitCode;

// Per-query resource accounting: every allocation in the process is
// counted and charged to the active span. Registered here in the binary
// root (a library registering a global allocator would conflict with any
// other allocator choice in the same link).
#[cfg(feature = "counting-alloc")]
#[global_allocator]
static ALLOC: fabric_telemetry::CountingAlloc = fabric_telemetry::CountingAlloc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `tfq ... | head` closes stdout early; the resulting broken-pipe panic
    // from println! is the conventional success path for a filtered CLI.
    // Keep the default hook for every other panic, but keep broken-pipe
    // quiet.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().cloned();
        if !msg.as_deref().unwrap_or("").contains("Broken pipe") {
            default_hook(info);
        }
    }));
    match std::panic::catch_unwind(|| commands::dispatch(&argv)) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            eprintln!("tfq: {e}");
            ExitCode::FAILURE
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if msg.contains("Broken pipe") {
                ExitCode::SUCCESS
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}
