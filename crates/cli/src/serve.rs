//! `tfq serve` — expose a ledger's live telemetry over HTTP, and
//! `tfq bench-diff` — compare two machine-readable bench result files.
//!
//! The server wires three always-on observability pieces together:
//!
//! * every scrape of `/metrics` refreshes the ledger's occupancy gauges
//!   ([`fabric_ledger::Ledger::publish_gauges`]) and renders the registry
//!   in Prometheus text format;
//! * `/flight` dumps the flight recorder (recently completed spans);
//! * `--slow-ms` / `--slow-factor` install a slow-query log whose JSONL
//!   records go to `--slow-log <path>` or stderr.

use std::sync::Arc;

use fabric_ledger::{Ledger, LedgerConfig, ShardedLedger};
use fabric_telemetry::{MetricsServer, SlowLogConfig, Telemetry};
use temporal_bench::regress::{diff, BenchFile, DiffConfig};

use crate::args::Args;

type CliResult = Result<(), String>;

/// `tfq serve <dir> [--addr HOST:PORT] [--slow-ms N] [--slow-factor F]
/// [--slow-log PATH] [--addr-file PATH] [--requests N]`
///
/// Blocks serving `/metrics`, `/healthz` and `/flight` until killed (or
/// until `--requests` requests have been answered — used by tests).
pub fn serve(args: &Args) -> CliResult {
    let dir = args.pos(1, "dir")?;
    let addr = args.opt("addr").unwrap_or("127.0.0.1:9464");
    // With `--shards N` the scrape hook publishes per-shard gauges
    // (`ledger.shard.<i>.blocks` / `.events`) alongside the totals.
    enum Opened {
        Single(Arc<Ledger>),
        Sharded(Arc<ShardedLedger>),
    }
    let opened = match args.opt_u64("shards")? {
        Some(0) => return Err("--shards must be at least 1".to_string()),
        Some(n) => Opened::Sharded(Arc::new(
            ShardedLedger::open(dir, LedgerConfig::default(), n as usize)
                .map_err(|e| e.to_string())?,
        )),
        None => Opened::Single(Arc::new(
            Ledger::open(dir, LedgerConfig::default()).map_err(|e| e.to_string())?,
        )),
    };
    let tel: Telemetry = match &opened {
        Opened::Single(l) => l.telemetry().clone(),
        Opened::Sharded(l) => l.telemetry().clone(),
    };
    tel.enable();

    let slow_ms = args.opt_u64("slow-ms")?;
    let slow_factor = args
        .opt("slow-factor")
        .map(|v| {
            v.parse::<f64>()
                .map_err(|_| "--slow-factor must be a number".to_string())
        })
        .transpose()?;
    if slow_ms.is_some() || slow_factor.is_some() || args.opt("slow-log").is_some() {
        let mut config = SlowLogConfig::threshold_ms(slow_ms.unwrap_or(100));
        config.p99_factor = slow_factor;
        let sink: Box<dyn std::io::Write + Send> = match args.opt("slow-log") {
            Some(path) => Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)
                    .map_err(|e| format!("cannot open slow log {path}: {e}"))?,
            ),
            None => Box::new(std::io::stderr()),
        };
        tel.install_slow_log(config, sink);
    }

    // With --index-lag an M1 indexer daemon chases the chain tip for the
    // server's lifetime (one per shard on a sharded ledger), stopped with
    // a final flush when the server exits.
    enum Daemon {
        None,
        Single(temporal_core::DaemonHandle),
        Sharded(temporal_core::ShardedDaemon),
    }
    let daemon = if args.opt("index-lag").is_some() {
        let cfg = crate::commands::daemon_config_from(args)?;
        match &opened {
            Opened::Single(l) => Daemon::Single(
                temporal_core::IndexerDaemon::new(l.clone(), cfg)
                    .map_err(|e| e.to_string())?
                    .spawn(),
            ),
            Opened::Sharded(l) => Daemon::Sharded(
                temporal_core::ShardedDaemon::spawn(l, cfg).map_err(|e| e.to_string())?,
            ),
        }
    } else {
        Daemon::None
    };

    // Every scrape refreshes the occupancy gauges and the M1 freshness
    // gauges (`m1.indexed_horizon` / `m1.lag_blocks` /
    // `m1.theta_generations`) from the on-chain watermark records.
    let collect: Box<dyn Fn(&Telemetry) + Send + Sync> = match &opened {
        Opened::Single(l) => {
            let l = l.clone();
            Box::new(move |_tel| {
                l.publish_gauges();
                let _ = temporal_core::publish_m1_gauges(&l);
            })
        }
        Opened::Sharded(l) => {
            let l = l.clone();
            Box::new(move |_tel| {
                l.publish_gauges();
                let _ = temporal_core::publish_m1_gauges_sharded(&l);
            })
        }
    };
    let mut server = MetricsServer::bind(addr, tel, Some(collect))
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    if let Some(n) = args.opt_u64("requests")? {
        server = server.with_max_requests(n);
    }
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    // Tests (and scripts) bind port 0 and read the resolved address back.
    if let Some(path) = args.opt("addr-file") {
        std::fs::write(path, bound.to_string())
            .map_err(|e| format!("cannot write addr file {path}: {e}"))?;
    }
    println!("serving http://{bound}/metrics  /healthz  /flight  (ledger: {dir})");
    let outcome = server.run().map_err(|e| e.to_string());
    match daemon {
        Daemon::None => {}
        Daemon::Single(handle) => {
            handle.stop().map_err(|e| e.to_string())?;
        }
        Daemon::Sharded(daemons) => {
            daemons.stop().map_err(|e| e.to_string())?;
        }
    }
    outcome
}

/// `tfq bench-diff <baseline.json> <current.json> [--time-tol F]
/// [--time-slack SECS] [--counter-tol F] [--counter-tol-for PAT=F]...`
///
/// Prints a per-metric comparison; errors (non-zero exit) when any metric
/// regressed beyond tolerance, a baseline metric vanished, or the two
/// files are not comparable. `--counter-tol-for` may repeat: each
/// `pattern=tolerance` pair loosens only counters whose key contains the
/// pattern (e.g. `--counter-tol-for txs_decoded=0.05`), leaving every
/// other counter on the exact default.
pub fn bench_diff(args: &Args) -> CliResult {
    let read = |i: usize, name: &str| -> Result<BenchFile, String> {
        let path = args.pos(i, name)?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchFile::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = read(1, "baseline.json")?;
    let current = read(2, "current.json")?;
    let mut cfg = DiffConfig::default();
    let parse_f64 = |name: &str| -> Result<Option<f64>, String> {
        args.opt(name)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| format!("--{name} must be a number"))
            })
            .transpose()
    };
    if let Some(v) = parse_f64("time-tol")? {
        cfg.time_tolerance = v;
    }
    if let Some(v) = parse_f64("time-slack")? {
        cfg.time_slack = v;
    }
    if let Some(v) = parse_f64("counter-tol")? {
        cfg.counter_tolerance = v;
    }
    for spec in args.opt_all("counter-tol-for") {
        let (pattern, tol) = spec
            .split_once('=')
            .ok_or_else(|| format!("--counter-tol-for must be pattern=tolerance, got {spec:?}"))?;
        let tol: f64 = tol
            .parse()
            .map_err(|_| format!("--counter-tol-for {spec:?}: tolerance must be a number"))?;
        cfg.counter_overrides.push((pattern.to_string(), tol));
    }
    let report = diff(&baseline, &current, &cfg);
    print!("{}", report.render());
    if report.has_regression() {
        Err("bench regression detected".to_string())
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use temporal_bench::regress::{MachineInfo, MetricKind};

    use super::*;
    use crate::commands::dispatch;

    fn run(args: &[&str]) -> CliResult {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&argv)
    }

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "tfq-serve-test-{}-{tag}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
        fn path(&self, name: &str) -> std::path::PathBuf {
            self.0.join(name)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn bench_json(dir: &TempDir, name: &str, join_s: f64, blocks: f64) -> String {
        let mut f = BenchFile::new("table1", MachineInfo::capture(100));
        f.insert("ds3/se/tqf/join_s", join_s, MetricKind::Time);
        f.insert("ds3/se/tqf/blocks", blocks, MetricKind::Counter);
        let path = dir.path(name);
        std::fs::write(&path, f.to_json()).unwrap();
        path.to_str().unwrap().to_string()
    }

    #[test]
    fn bench_diff_exit_codes() {
        let dir = TempDir::new("diff");
        let base = bench_json(&dir, "base.json", 1.0, 40.0);
        let same = bench_json(&dir, "same.json", 1.05, 40.0);
        let slow = bench_json(&dir, "slow.json", 2.0, 40.0);
        let drift = bench_json(&dir, "drift.json", 1.0, 41.0);
        assert!(run(&["bench-diff", &base, &same]).is_ok());
        let err = run(&["bench-diff", &base, &slow]).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        assert!(run(&["bench-diff", &base, &drift]).is_err());
        // Loosened tolerances rescue both.
        assert!(run(&["bench-diff", &base, &slow, "--time-tol", "1.5"]).is_ok());
        assert!(run(&["bench-diff", &base, &drift, "--counter-tol", "0.1"]).is_ok());
        // Unreadable / malformed inputs are errors, not silent passes.
        assert!(run(&["bench-diff", &base, "/nonexistent.json"]).is_err());
        let garbage = dir.path("garbage.json");
        std::fs::write(&garbage, "not json").unwrap();
        assert!(run(&["bench-diff", &base, garbage.to_str().unwrap()]).is_err());
        assert!(run(&["bench-diff", &base]).is_err());
    }

    #[test]
    fn bench_diff_counter_tol_for_targets_one_family() {
        let dir = TempDir::new("diff-for");
        let write = |name: &str, blocks: f64, txs: f64| -> String {
            let mut f = BenchFile::new("table1", MachineInfo::capture(100));
            f.insert("ds3/se/tqf/blocks", blocks, MetricKind::Counter);
            f.insert("ds3/se/tqf/txs_decoded", txs, MetricKind::Counter);
            let path = dir.path(name);
            std::fs::write(&path, f.to_json()).unwrap();
            path.to_str().unwrap().to_string()
        };
        let base = write("base.json", 40.0, 400.0);
        let tx_drift = write("txdrift.json", 40.0, 410.0);
        let blk_drift = write("blkdrift.json", 41.0, 400.0);
        assert!(run(&["bench-diff", &base, &tx_drift]).is_err());
        assert!(run(&[
            "bench-diff",
            &base,
            &tx_drift,
            "--counter-tol-for",
            "txs_decoded=0.05",
        ])
        .is_ok());
        // The override must not rescue other counters.
        assert!(run(&[
            "bench-diff",
            &base,
            &blk_drift,
            "--counter-tol-for",
            "txs_decoded=0.05",
        ])
        .is_err());
        // Malformed specs are hard errors.
        assert!(run(&["bench-diff", &base, &base, "--counter-tol-for", "nope"]).is_err());
        assert!(run(&["bench-diff", &base, &base, "--counter-tol-for", "k=x"]).is_err());
    }

    #[test]
    fn serve_sharded_publishes_per_shard_gauges() {
        let dir = TempDir::new("serve-sharded");
        let ledger_dir = dir.path("ledger");
        run(&[
            "demo",
            ledger_dir.to_str().unwrap(),
            "ds3",
            "--scale",
            "4",
            "--shards",
            "2",
        ])
        .unwrap();
        let addr_file = dir.path("addr");
        let argv: Vec<String> = [
            "serve",
            ledger_dir.to_str().unwrap(),
            "--shards",
            "2",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--requests",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || dispatch(&argv));
        let addr = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                if let Ok(text) = std::fs::read_to_string(&addr_file) {
                    if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                        break addr;
                    }
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "addr file never appeared"
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        let (code, metrics) = fabric_telemetry::http_get(addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        for g in [
            "tf_ledger_height",
            "tf_ledger_shards 2",
            "tf_ledger_shard_0_blocks",
            "tf_ledger_shard_1_blocks",
            "tf_ledger_shard_0_events",
            "tf_ledger_shard_1_events",
        ] {
            assert!(metrics.contains(g), "missing {g}: {metrics}");
        }
        server.join().unwrap().unwrap();
        // Mismatched shard count cannot serve.
        assert!(run(&[
            "serve",
            ledger_dir.to_str().unwrap(),
            "--shards",
            "3",
            "--addr",
            "127.0.0.1:0",
            "--requests",
            "1",
        ])
        .is_err());
    }

    #[test]
    fn serve_with_daemon_exports_m1_freshness_gauges() {
        let dir = TempDir::new("serve-m1");
        let ledger_dir = dir.path("ledger");
        run(&[
            "demo",
            ledger_dir.to_str().unwrap(),
            "ds3",
            "--scale",
            "300",
        ])
        .unwrap();
        // Persist a watermark first so the very first scrape already sees
        // on-chain freshness records (the serve-time daemon resumes from
        // it and has nothing left to do — deterministic for the test).
        run(&["index-daemon", ledger_dir.to_str().unwrap(), "--u", "500"]).unwrap();
        let addr_file = dir.path("addr");
        let argv: Vec<String> = [
            "serve",
            ledger_dir.to_str().unwrap(),
            "--index-lag",
            "4",
            "--u",
            "500",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--requests",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || dispatch(&argv));
        let addr = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                if let Ok(text) = std::fs::read_to_string(&addr_file) {
                    if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                        break addr;
                    }
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "addr file never appeared"
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        let (code, metrics) = fabric_telemetry::http_get(addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        server.join().unwrap().unwrap();
        for g in [
            "tf_m1_indexed_horizon",
            "tf_m1_lag_blocks",
            "tf_m1_theta_generations",
        ] {
            assert!(metrics.contains(g), "missing {g}: {metrics}");
        }
    }

    #[test]
    fn serve_answers_metrics_health_and_flight() {
        let dir = TempDir::new("serve");
        let ledger_dir = dir.path("ledger");
        run(&[
            "demo",
            ledger_dir.to_str().unwrap(),
            "ds3",
            "--scale",
            "400",
        ])
        .unwrap();
        let addr_file = dir.path("addr");
        let slow_log = dir.path("slow.jsonl");
        let argv: Vec<String> = [
            "serve",
            ledger_dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--slow-ms",
            "0",
            "--slow-log",
            slow_log.to_str().unwrap(),
            "--requests",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || dispatch(&argv));
        let addr = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                if let Ok(text) = std::fs::read_to_string(&addr_file) {
                    if let Ok(addr) = text.trim().parse::<std::net::SocketAddr>() {
                        break addr;
                    }
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "addr file never appeared"
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        };
        let (code, health) = fabric_telemetry::http_get(addr, "/healthz").unwrap();
        assert_eq!((code, health.as_str()), (200, "ok\n"));
        let (code, _) = fabric_telemetry::http_get(addr, "/nope").unwrap();
        assert_eq!(code, 404);
        let (code, metrics) = fabric_telemetry::http_get(addr, "/metrics").unwrap();
        assert_eq!(code, 200);
        // The collect hook publishes ledger gauges on every scrape.
        assert!(metrics.contains("tf_ledger_height"), "{metrics}");
        assert!(metrics.contains("tf_statedb_sstables"), "{metrics}");
        // Process-memory gauges ride along; this test binary installs
        // the counting allocator (like the shipped tfq), so the heap
        // gauges must be live, not just present.
        assert!(metrics.contains("tf_mem_rss_bytes"), "{metrics}");
        assert!(metrics.contains("tf_mem_counting_allocator 1"), "{metrics}");
        for g in ["tf_mem_heap_live_bytes", "tf_mem_alloc_bytes_total"] {
            let line = metrics
                .lines()
                .find(|l| l.starts_with(g))
                .unwrap_or_else(|| panic!("missing {g}: {metrics}"));
            let v: f64 = line.split_whitespace().last().unwrap().parse().unwrap();
            assert!(v > 0.0, "{g} not live: {line}");
        }
        let (code, flight) = fabric_telemetry::http_get(addr, "/flight").unwrap();
        assert_eq!(code, 200);
        assert!(flight.starts_with('{'), "{flight}");
        server.join().unwrap().unwrap();
    }
}
