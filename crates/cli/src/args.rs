//! Minimal dependency-free argument parsing.

/// Parsed command line: positional arguments plus `--flag value` options.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    /// Split `argv` into positionals and `--key value` pairs.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            if let Some(name) = arg.strip_prefix("--") {
                let value = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                out.options.push((name.to_string(), value.clone()));
                i += 2;
            } else {
                out.positional.push(arg.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Positional argument `i`, or an error naming it.
    pub fn pos(&self, i: usize, name: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing <{name}> argument"))
    }

    /// Optional positional argument `i`.
    pub fn pos_opt(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Option value by name.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for a repeatable option, in order of appearance.
    pub fn opt_all(&self, name: &str) -> Vec<&str> {
        self.options
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Option parsed as `u64`.
    pub fn opt_u64(&self, name: &str) -> Result<Option<u64>, String> {
        self.opt(name)
            .map(|v| v.parse().map_err(|_| format!("--{name} must be a number")))
            .transpose()
    }

    /// Number of positional arguments.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.positional.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn mixes_positionals_and_options() {
        let a = Args::parse(&argv(&["events", "dir", "--u", "2000", "key"])).unwrap();
        assert_eq!(a.pos(0, "cmd").unwrap(), "events");
        assert_eq!(a.pos(1, "dir").unwrap(), "dir");
        assert_eq!(a.pos(2, "key").unwrap(), "key");
        assert_eq!(a.opt_u64("u").unwrap(), Some(2000));
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn missing_option_value_is_error() {
        assert!(Args::parse(&argv(&["x", "--u"])).is_err());
    }

    #[test]
    fn missing_positional_reports_name() {
        let a = Args::parse(&argv(&["only"])).unwrap();
        let err = a.pos(1, "dir").unwrap_err();
        assert!(err.contains("dir"));
    }

    #[test]
    fn later_option_wins() {
        let a = Args::parse(&argv(&["--u", "1", "--u", "2"])).unwrap();
        assert_eq!(a.opt_u64("u").unwrap(), Some(2));
        assert_eq!(a.opt("absent"), None);
        assert!(a.pos_opt(0).is_none());
    }

    #[test]
    fn opt_all_collects_every_occurrence_in_order() {
        let a = Args::parse(&argv(&["--p", "a=1", "--q", "x", "--p", "b=2"])).unwrap();
        assert_eq!(a.opt_all("p"), vec!["a=1", "b=2"]);
        assert!(a.opt_all("absent").is_empty());
    }

    #[test]
    fn bad_number_is_error() {
        let a = Args::parse(&argv(&["--u", "abc"])).unwrap();
        assert!(a.opt_u64("u").is_err());
    }
}
