//! Command implementations for `tfq`.

use fabric_kvstore::Backend;
use fabric_ledger::{Ledger, LedgerConfig, ShardedLedger};
use fabric_workload::dataset::{self, DatasetId};
use fabric_workload::ingest::{ingest, ingest_sharded, IdentityEncoder, IngestMode};
use fabric_workload::{EntityId, Event};
use temporal_core::interval::Interval;
use temporal_core::join::ferry_query;
use temporal_core::m1::{read_meta, M1Engine, M1Indexer};
use temporal_core::m2::{M2Encoder, M2Engine};
use temporal_core::partition::FixedLength;
use temporal_core::tqf::TqfEngine;
use temporal_core::{explain_analyze, AutoEngine, TemporalEngine};

use crate::args::Args;

type CliResult = Result<(), String>;

const USAGE: &str = "usage: tfq <command> ...
  demo    <dir> [ds1|ds2|ds3] [--scale N] [--mode se|me] [--m2-u U] [--shards N]
          [--index-lag N [--u U | --adaptive EVENTS]]
  info    <dir> [--shards N]
  verify  <dir> [--shards N]
  block   <dir> <number>
  history <dir> <key> [--shards N]
  tx      <dir> <txid-hex>
  events  <dir> <key> <t1> <t2> [--engine tqf|m1|m2|auto] [--u U] [--shards N]
  join    <dir> <t1> <t2>       [--engine tqf|m1|m2|auto] [--u U] [--shards N]
  explain <dir> <key> <t1> <t2> [--engine tqf|m1|m2|auto] [--u U]
  analyze <dir> <key> <t1> <t2> [--engine tqf|m1|m2|auto] [--u U]
  plan    <dir> <key> <t1> <t2> [--shards N]
  stats   <dir> <t1> <t2>       [--engine tqf|m1|m2|auto] [--u U] [--format table|json|csv]
  trace   <dir> <t1> <t2>       [--key K] [--engine tqf|m1|m2|auto] [--u U]
                                [--export chrome] [--out PATH] [--workers N]
                                [--ingest ds1|ds2|ds3] [--scale N]
  profile [<dir> <t1> <t2>]     [--key K] [--engine tqf|m1|m2|auto] [--u U]
                                [--workers N] [--ingest ds1|ds2|ds3] [--scale N]
                                [--hz N] [--out PATH]
          without <dir>, --ingest builds a scratch ledger and queries its
          full window; output is flamegraph.pl/inferno collapsed stacks
  top     [<dir> <t1> <t2>]     [--key K] [--engine tqf|m1|m2|auto] [--u U]
                                [--workers N] [--ingest ds1|ds2|ds3] [--scale N]
                                [--limit N]
  planner-report <log.jsonl>
  index   <dir> --u U [--from T1] [--to T2] [--m1-index-threads N]
  index-daemon <dir> [--index-lag N] [--u U | --adaptive EVENTS]
               [--min-u U] [--max-u U] [--shards N]
          one-shot online M1 maintenance: consume committed blocks from the
          persisted watermark, append EV-set deltas, persist progress + the
          per-key adaptive θ map, and exit with the horizon on the tip
  backup  <dir> <dest-dir> [--shards N]
  export-trace <out.csv> [ds1|ds2|ds3] [--scale N]
  replay  <dir> <trace.csv> [--mode se|me] [--m2-u U]
  serve   <dir> [--addr H:P] [--slow-ms N] [--slow-factor F] [--slow-log PATH]
                [--shards N] [--index-lag N [--u U | --adaptive EVENTS]]
  bench-diff <baseline.json> <current.json> [--time-tol F] [--counter-tol F]
             [--counter-tol-for PAT=F]...
read-path flags (any command taking <dir>):
  --cache-blocks N   block-cache capacity (0 = off, the paper's cost model)
  --cache-shards N   cache mutex shards (0 = auto from capacity)
  --coalesce on|off  group history reads by block (default on)
write-path flags (any command taking <dir>):
  --backend lsm|log|auto     storage engine for the index and state
                             stores (default auto: resolve from the
                             directory's on-disk ENGINE marker, falling
                             back to lsm; the choice is persisted and
                             checked on reopen)
  --pipeline on|off          pipelined block commit (default off, the
                             paper's cost model; byte-identical either way)
  --wal-group-commit on|off  coalesce concurrent kvstore writers into one
                             WAL append+fsync (default off)
  --validate-threads N       dependency-wave parallel MVCC validation on N
                             threads (0 = one per core; default serial,
                             byte-identical either way)
  --shards N                 key-range-sharded ledger with N partitions
                             (demo/info/events/join/plan/serve/history/
                             verify/index-daemon/backup; the count is
                             persisted and checked on reopen)
  --index-lag N              demo/serve/index-daemon: run the M1 indexer
                             daemon, cutting an epoch whenever more than N
                             data blocks are unindexed (default 0)
  --adaptive EVENTS          daemon θ policy: pick each key's interval
                             length so a cell holds ~EVENTS events
                             (bounded by --min-u/--max-u); default is
                             fixed θ from --u (2000)";

fn led(e: fabric_ledger::Error) -> String {
    e.to_string()
}

/// Ledger config from the read-path flags shared by every command:
/// `--cache-blocks N` (default 0 = off, the paper's cost model),
/// `--cache-shards N` (default 0 = auto) and `--coalesce on|off`.
fn config_from(args: &Args) -> Result<LedgerConfig, String> {
    let mut config = LedgerConfig::default();
    if let Some(n) = args.opt_u64("cache-blocks")? {
        config.cache_blocks = n as usize;
    }
    if let Some(n) = args.opt_u64("cache-shards")? {
        config.cache_shards = n as usize;
    }
    match args.opt("coalesce") {
        None | Some("on") => {}
        Some("off") => config.coalesce_history = false,
        Some(other) => return Err(format!("--coalesce must be on|off, got '{other}'")),
    }
    match args.opt("pipeline") {
        None | Some("off") => {}
        Some("on") => config.pipeline = true,
        Some(other) => return Err(format!("--pipeline must be on|off, got '{other}'")),
    }
    match args.opt("wal-group-commit") {
        None | Some("off") => {}
        Some("on") => {
            config.state_db.group_commit = true;
            config.index_db.group_commit = true;
        }
        Some(other) => {
            return Err(format!("--wal-group-commit must be on|off, got '{other}'"));
        }
    }
    if let Some(n) = args.opt_u64("validate-threads")? {
        // Presence of the flag opts into parallel validation; 0 = one
        // thread per core.
        config.parallel_validate = true;
        config.validate_threads = n as usize;
    }
    match args.opt("backend") {
        None | Some("auto") => {}
        Some("lsm") => config.backend = Backend::Lsm,
        Some("log") => config.backend = Backend::Log,
        Some(other) => {
            return Err(format!("--backend must be lsm|log|auto, got '{other}'"));
        }
    }
    Ok(config)
}

/// The `--shards N` partition count, when given. `0` is rejected; `1` is
/// a legal single-partition sharded layout (useful for equivalence runs).
fn shards_from(args: &Args) -> Result<Option<usize>, String> {
    match args.opt_u64("shards")? {
        None => Ok(None),
        Some(0) => Err("--shards must be at least 1".to_string()),
        Some(n) => Ok(Some(n as usize)),
    }
}

fn open_sharded(args: &Args, dir: &str, shards: usize) -> Result<ShardedLedger, String> {
    ShardedLedger::open(dir, config_from(args)?, shards).map_err(led)
}

fn open_with(args: &Args, dir: &str) -> Result<Ledger, String> {
    Ledger::open(dir, config_from(args)?).map_err(led)
}

/// Route `argv` to a command.
pub fn dispatch(argv: &[String]) -> CliResult {
    let args = Args::parse(argv)?;
    // `--shards` changes the on-disk layout; commands that would silently
    // open the root directory as a plain ledger must reject it instead.
    if args.opt("shards").is_some() {
        let cmd = args.pos_opt(0).unwrap_or("");
        if !matches!(
            cmd,
            "demo"
                | "info"
                | "events"
                | "join"
                | "plan"
                | "serve"
                | "history"
                | "verify"
                | "index-daemon"
                | "backup"
        ) {
            return Err(format!(
                "--shards is not supported by '{cmd}' \
                 (demo/info/events/join/plan/serve/history/verify/index-daemon/backup only)"
            ));
        }
    }
    match args.pos_opt(0) {
        Some("demo") => demo(&args),
        Some("info") => info(&args),
        Some("verify") => verify(&args),
        Some("block") => block(&args),
        Some("history") => history(&args),
        Some("tx") => tx_lookup(&args),
        Some("events") => events(&args),
        Some("join") => join(&args),
        Some("explain") => explain(&args),
        Some("analyze") => analyze(&args),
        Some("plan") => plan(&args),
        Some("stats") => stats(&args),
        Some("trace") => trace(&args),
        Some("profile") => profile(&args),
        Some("top") => top(&args),
        Some("planner-report") => planner_report(&args),
        Some("index") => index(&args),
        Some("index-daemon") => index_daemon(&args),
        Some("backup") => backup(&args),
        Some("export-trace") => export_trace(&args),
        Some("replay") => replay(&args),
        Some("serve") => crate::serve::serve(&args),
        Some("bench-diff") => crate::serve::bench_diff(&args),
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

fn demo(args: &Args) -> CliResult {
    let dir = args.pos(1, "dir")?;
    let id = match args.pos_opt(2).unwrap_or("ds3") {
        "ds1" => DatasetId::Ds1,
        "ds2" => DatasetId::Ds2,
        "ds3" => DatasetId::Ds3,
        other => return Err(format!("unknown dataset '{other}' (ds1|ds2|ds3)")),
    };
    let scale = args.opt_u64("scale")?.unwrap_or(40) as u32;
    let mode = match args.opt("mode").unwrap_or("me") {
        "se" => IngestMode::SingleEvent,
        "me" => IngestMode::MultiEvent,
        other => return Err(format!("unknown mode '{other}' (se|me)")),
    };
    let workload = if scale <= 1 {
        dataset::generate(id)
    } else {
        dataset::generate_scaled(id, scale)
    };
    // With --index-lag the M1 indexer daemon chases the ingest live: it
    // is spawned before the first block commits and stopped (with a final
    // flush) after the last, so the demo ends fully indexed.
    let daemon_cfg = match args.opt("index-lag") {
        Some(_) => Some(daemon_config_from(args)?),
        None => None,
    };
    let report = match shards_from(args)? {
        Some(n) => {
            let ledger = std::sync::Arc::new(open_sharded(args, dir, n)?);
            let daemon = match daemon_cfg {
                Some(cfg) => Some(temporal_core::ShardedDaemon::spawn(&ledger, cfg).map_err(led)?),
                None => None,
            };
            let report = match args.opt_u64("m2-u")? {
                Some(u) => ingest_sharded(&ledger, &workload.events, mode, &M2Encoder { u })
                    .map_err(led)?,
                None => ingest_sharded(&ledger, &workload.events, mode, &IdentityEncoder)
                    .map_err(led)?,
            };
            if let Some(daemon) = daemon {
                for (i, r) in daemon.stop().map_err(led)?.iter().enumerate() {
                    print_daemon_report(&format!("shard {i:>2} daemon: "), r);
                }
            }
            println!("shard heights: {:?}", ledger.heights());
            report
        }
        None => {
            let ledger = std::sync::Arc::new(open_with(args, dir)?);
            let daemon = match daemon_cfg {
                Some(cfg) => Some(
                    temporal_core::IndexerDaemon::new(ledger.clone(), cfg)
                        .map_err(led)?
                        .spawn(),
                ),
                None => None,
            };
            let report = match args.opt_u64("m2-u")? {
                Some(u) => {
                    ingest(&ledger, &workload.events, mode, &M2Encoder { u }).map_err(led)?
                }
                None => ingest(&ledger, &workload.events, mode, &IdentityEncoder).map_err(led)?,
            };
            if let Some(daemon) = daemon {
                print_daemon_report("daemon: ", &daemon.stop().map_err(led)?);
            }
            report
        }
    };
    println!(
        "ingested {id} (scale 1/{scale}, {mode}): {} events, {} txs, {} blocks in {:?}",
        report.events, report.txs, report.blocks, report.wall
    );
    println!("t_max = {}", workload.params.t_max);
    Ok(())
}

fn info(args: &Args) -> CliResult {
    if let Some(n) = shards_from(args)? {
        let ledger = open_sharded(args, args.pos(1, "dir")?, n)?;
        let stats = ledger.stats();
        println!("shards:      {}", ledger.shard_count());
        println!("height:      {} (global)", ledger.height());
        for (i, h) in ledger.heights().iter().enumerate() {
            println!("  shard {i:>2}:  {h} block(s)");
        }
        for i in 0..ledger.shard_count() {
            if let Some(f) = temporal_core::index_freshness(ledger.shard(i)).map_err(led)? {
                println!("  shard {i:>2} M1: {}", f.render());
            }
        }
        println!("I/O since open (all shards):");
        for line in stats.to_string().lines() {
            println!("  {line}");
        }
        return Ok(());
    }
    let ledger = open_with(args, args.pos(1, "dir")?)?;
    let stats = ledger.stats();
    println!("height:      {}", ledger.height());
    println!("tip hash:    {}", ledger.last_hash());
    println!(
        "state keys:  {}",
        ledger.state_db().key_count().map_err(led)?
    );
    println!("pending txs: {}", ledger.pending_txs());
    if let Some(meta) = read_meta(&ledger).map_err(led)? {
        println!(
            "M1 indexes:  u={}, {} epoch(s), indexed through t={}",
            meta.u,
            meta.epochs.len(),
            meta.indexed_to()
        );
    } else {
        println!("M1 indexes:  none");
    }
    if let Some(f) = temporal_core::index_freshness(&ledger).map_err(led)? {
        println!("M1 horizon:  {}", f.render());
    }
    println!("I/O since open:");
    for line in stats.to_string().lines() {
        println!("  {line}");
    }
    Ok(())
}

fn verify(args: &Args) -> CliResult {
    let started = std::time::Instant::now();
    if let Some(n) = shards_from(args)? {
        let ledger = open_sharded(args, args.pos(1, "dir")?, n)?;
        let tips = ledger.verify_chain().map_err(|e| format!("FAILED: {e}"))?;
        println!(
            "ok: {} blocks across {} shard(s), every hash chain link, data hash \
             and tx id verified in {:?}",
            ledger.height(),
            ledger.shard_count(),
            started.elapsed()
        );
        for (i, tip) in tips.iter().enumerate() {
            println!("shard {i:>2} tip: {tip}");
        }
        return Ok(());
    }
    let ledger = open_with(args, args.pos(1, "dir")?)?;
    let tip = ledger.verify_chain().map_err(|e| format!("FAILED: {e}"))?;
    println!(
        "ok: {} blocks, every hash chain link, data hash and tx id verified in {:?}",
        ledger.height(),
        started.elapsed()
    );
    println!("tip: {tip}");
    Ok(())
}

fn block(args: &Args) -> CliResult {
    let ledger = open_with(args, args.pos(1, "dir")?)?;
    let num: u64 = args
        .pos(2, "number")?
        .parse()
        .map_err(|_| "block number must be an integer".to_string())?;
    let block = ledger.get_block(num).map_err(led)?;
    println!("block {num}");
    println!("  hash:      {}", block.hash());
    println!("  prev hash: {}", block.header.prev_hash);
    println!("  data hash: {}", block.header.data_hash);
    println!("  txs:       {}", block.tx_count());
    for (i, tx) in block.txs.iter().enumerate() {
        println!(
            "  tx {i}: id={} ts={} reads={} writes={} [{:?}]",
            tx.id.0,
            tx.timestamp,
            tx.reads.len(),
            tx.writes.len(),
            block.validation[i]
        );
        for w in &tx.writes {
            let desc = match &w.value {
                Some(v) => format!("{} bytes", v.len()),
                None => "delete".to_string(),
            };
            println!("      write {} = {desc}", String::from_utf8_lossy(&w.key));
        }
    }
    Ok(())
}

fn history(args: &Args) -> CliResult {
    let key = args.pos(2, "key")?;
    // A key's entire history lives on its owning shard, so the sharded
    // route is a plain redirect — the listing below is identical.
    let sharded;
    let single;
    let mut iter = match shards_from(args)? {
        Some(n) => {
            sharded = open_sharded(args, args.pos(1, "dir")?, n)?;
            sharded.get_history_for_key(key.as_bytes()).map_err(led)?
        }
        None => {
            single = open_with(args, args.pos(1, "dir")?)?;
            single.get_history_for_key(key.as_bytes()).map_err(led)?
        }
    };
    let mut n = 0;
    while let Some(state) = iter.next().map_err(led)? {
        n += 1;
        let rendered = match &state.value {
            Some(value) => match EntityId::from_key(key.as_bytes())
                .and_then(|id| Event::decode_value(id, value))
            {
                Some(ev) => format!("{:?} {} @ t={}", ev.kind, ev.target, ev.time),
                None => format!("{} bytes", value.len()),
            },
            None => "delete".to_string(),
        };
        println!(
            "block {:>6} tx {:>3} ts {:>8}: {rendered}",
            state.block_num, state.tx_num, state.timestamp
        );
    }
    println!("{n} state(s)");
    Ok(())
}

fn backup(args: &Args) -> CliResult {
    let dest = args.pos(2, "dest-dir")?;
    let started = std::time::Instant::now();
    if let Some(n) = shards_from(args)? {
        let ledger = open_sharded(args, args.pos(1, "dir")?, n)?;
        ledger.backup(dest).map_err(led)?;
        println!(
            "backed up {} block(s) across {} shard(s) to {dest} in {:?}",
            ledger.height(),
            ledger.shard_count(),
            started.elapsed()
        );
        return Ok(());
    }
    let ledger = open_with(args, args.pos(1, "dir")?)?;
    ledger.backup(dest).map_err(led)?;
    println!(
        "backed up {} block(s) to {dest} in {:?}",
        ledger.height(),
        started.elapsed()
    );
    Ok(())
}

fn export_trace(args: &Args) -> CliResult {
    let out = args.pos(1, "out.csv")?;
    let id = match args.pos_opt(2).unwrap_or("ds3") {
        "ds1" => DatasetId::Ds1,
        "ds2" => DatasetId::Ds2,
        "ds3" => DatasetId::Ds3,
        other => return Err(format!("unknown dataset '{other}' (ds1|ds2|ds3)")),
    };
    let scale = args.opt_u64("scale")?.unwrap_or(40) as u32;
    let workload = if scale <= 1 {
        dataset::generate(id)
    } else {
        dataset::generate_scaled(id, scale)
    };
    fabric_workload::trace::save_trace(&workload.events, out).map_err(|e| e.to_string())?;
    println!("wrote {} events to {out}", workload.events.len());
    Ok(())
}

fn replay(args: &Args) -> CliResult {
    let dir = args.pos(1, "dir")?;
    let trace_path = args.pos(2, "trace.csv")?;
    let mode = match args.opt("mode").unwrap_or("me") {
        "se" => IngestMode::SingleEvent,
        "me" => IngestMode::MultiEvent,
        other => return Err(format!("unknown mode '{other}' (se|me)")),
    };
    let mut events = fabric_workload::trace::load_trace(trace_path).map_err(|e| e.to_string())?;
    events.sort_by_key(|e| (e.time, e.subject));
    let ledger = open_with(args, dir)?;
    let report = match args.opt_u64("m2-u")? {
        Some(u) => ingest(&ledger, &events, mode, &M2Encoder { u }).map_err(led)?,
        None => ingest(&ledger, &events, mode, &IdentityEncoder).map_err(led)?,
    };
    println!(
        "replayed {} events as {} txs / {} blocks in {:?}",
        report.events, report.txs, report.blocks, report.wall
    );
    Ok(())
}

fn tx_lookup(args: &Args) -> CliResult {
    let ledger = open_with(args, args.pos(1, "dir")?)?;
    let id_hex = args.pos(2, "txid-hex")?;
    let digest = fabric_ledger::Digest::from_hex(id_hex)
        .ok_or_else(|| "txid must be 64 hex chars".to_string())?;
    match ledger
        .get_transaction(&fabric_ledger::TxId(digest))
        .map_err(led)?
    {
        Some((tx, block_num, tx_num, code)) => {
            println!("found in block {block_num}, position {tx_num} [{code:?}]");
            println!("  timestamp: {}", tx.timestamp);
            println!("  reads:     {}", tx.reads.len());
            for w in &tx.writes {
                let desc = match &w.value {
                    Some(v) => format!("{} bytes", v.len()),
                    None => "delete".to_string(),
                };
                println!("  write {} = {desc}", String::from_utf8_lossy(&w.key));
            }
            Ok(())
        }
        None => Err("transaction not found".to_string()),
    }
}

fn pick_engine(args: &Args) -> Result<Box<dyn TemporalEngine + Sync>, String> {
    match args.opt("engine").unwrap_or("tqf") {
        "tqf" => Ok(Box::new(TqfEngine)),
        "m1" => Ok(Box::new(M1Engine::default())),
        "m2" => {
            let u = args
                .opt_u64("u")?
                .ok_or_else(|| "--engine m2 requires --u".to_string())?;
            Ok(Box::new(M2Engine { u }))
        }
        "auto" => Ok(Box::new(AutoEngine::default())),
        other => Err(format!("unknown engine '{other}' (tqf|m1|m2|auto)")),
    }
}

fn parse_tau(args: &Args, first_pos: usize) -> Result<Interval, String> {
    let t1: u64 = args
        .pos(first_pos, "t1")?
        .parse()
        .map_err(|_| "t1 must be an integer".to_string())?;
    let t2: u64 = args
        .pos(first_pos + 1, "t2")?
        .parse()
        .map_err(|_| "t2 must be an integer".to_string())?;
    if t2 <= t1 {
        return Err("t2 must exceed t1".to_string());
    }
    Ok(Interval::new(t1, t2))
}

fn events(args: &Args) -> CliResult {
    let key = EntityId::from_key(args.pos(2, "key")?.as_bytes())
        .ok_or_else(|| "key must look like S00001 / C00001".to_string())?;
    let tau = parse_tau(args, 3)?;
    let engine = pick_engine(args)?;
    // On a sharded ledger the key's events live wholly on its owning
    // shard, so the query runs unchanged against that one partition.
    let sharded;
    let single;
    let ledger: &Ledger = match shards_from(args)? {
        Some(n) => {
            sharded = open_sharded(args, args.pos(1, "dir")?, n)?;
            sharded.shard_for_key(&key.key())
        }
        None => {
            single = open_with(args, args.pos(1, "dir")?)?;
            &single
        }
    };
    let before = ledger.stats();
    let started = std::time::Instant::now();
    let events = engine.events_for_key(ledger, key, tau).map_err(led)?;
    let wall = started.elapsed();
    for ev in &events {
        println!("t={:>8} {:?} {}", ev.time, ev.kind, ev.target);
    }
    let d = ledger.stats().delta(&before);
    println!(
        "{} event(s) via {} in {wall:?} — {} GHFK call(s), {} block(s) deserialized",
        events.len(),
        engine.name(),
        d.ghfk_calls,
        d.blocks_deserialized
    );
    Ok(())
}

fn join(args: &Args) -> CliResult {
    let tau = parse_tau(args, 2)?;
    let engine = pick_engine(args)?;
    let outcome = match shards_from(args)? {
        Some(n) => {
            let ledger = open_sharded(args, args.pos(1, "dir")?, n)?;
            temporal_core::ferry_query_sharded(engine.as_ref(), &ledger, tau, 1).map_err(led)?
        }
        None => {
            let ledger = open_with(args, args.pos(1, "dir")?)?;
            ferry_query(engine.as_ref(), &ledger, tau).map_err(led)?
        }
    };
    for r in outcome.records.iter().take(20) {
        println!(
            "shipment {} on truck {} during {}",
            r.shipment, r.truck, r.span
        );
    }
    if outcome.records.len() > 20 {
        println!("... and {} more", outcome.records.len() - 20);
    }
    println!(
        "{} record(s) via {} in {:?} — {} GHFK call(s), {} block(s) deserialized",
        outcome.records.len(),
        engine.name(),
        outcome.stats.wall,
        outcome.stats.ghfk_calls(),
        outcome.stats.blocks_deserialized()
    );
    Ok(())
}

fn explain(args: &Args) -> CliResult {
    use temporal_core::explain::ExplainQuery;
    let ledger = open_with(args, args.pos(1, "dir")?)?;
    let key = EntityId::from_key(args.pos(2, "key")?.as_bytes())
        .ok_or_else(|| "key must look like S00001 / C00001".to_string())?;
    let tau = parse_tau(args, 3)?;
    let plan = match args.opt("engine").unwrap_or("tqf") {
        "tqf" => TqfEngine.explain(&ledger, key, tau),
        "m1" => M1Engine::default().explain(&ledger, key, tau),
        "m2" => {
            let u = args
                .opt_u64("u")?
                .ok_or_else(|| "--engine m2 requires --u".to_string())?;
            M2Engine { u }.explain(&ledger, key, tau)
        }
        "auto" => AutoEngine::default().explain(&ledger, key, tau),
        other => return Err(format!("unknown engine '{other}' (tqf|m1|m2|auto)")),
    }
    .map_err(led)?;
    print!("{}", plan.render());
    println!(
        "total: {} GHFK call(s), ≤{} block(s)",
        plan.ghfk_calls(),
        plan.max_blocks()
    );
    Ok(())
}

fn analyze(args: &Args) -> CliResult {
    let ledger = open_with(args, args.pos(1, "dir")?)?;
    let key = EntityId::from_key(args.pos(2, "key")?.as_bytes())
        .ok_or_else(|| "key must look like S00001 / C00001".to_string())?;
    let tau = parse_tau(args, 3)?;
    let analyzed = match args.opt("engine").unwrap_or("tqf") {
        "tqf" => explain_analyze(&TqfEngine, &ledger, key, tau),
        "m1" => explain_analyze(&M1Engine::default(), &ledger, key, tau),
        "m2" => {
            let u = args
                .opt_u64("u")?
                .ok_or_else(|| "--engine m2 requires --u".to_string())?;
            explain_analyze(&M2Engine { u }, &ledger, key, tau)
        }
        "auto" => explain_analyze(&AutoEngine::default(), &ledger, key, tau),
        other => return Err(format!("unknown engine '{other}' (tqf|m1|m2|auto)")),
    }
    .map_err(led)?;
    print!("{}", analyzed.render());
    if !analyzed.within_bounds() {
        return Err("measured cost exceeded the predicted bound".to_string());
    }
    Ok(())
}

fn plan(args: &Args) -> CliResult {
    let key = EntityId::from_key(args.pos(2, "key")?.as_bytes())
        .ok_or_else(|| "key must look like S00001 / C00001".to_string())?;
    let tau = parse_tau(args, 3)?;
    let (choice, freshness) = match shards_from(args)? {
        Some(n) => {
            let ledger = open_sharded(args, args.pos(1, "dir")?, n)?;
            let shard = ledger.shard_for_key(&key.key());
            (
                AutoEngine::default()
                    .choose_sharded(&ledger, key, tau)
                    .map_err(led)?,
                temporal_core::index_freshness(shard).map_err(led)?,
            )
        }
        None => {
            let ledger = open_with(args, args.pos(1, "dir")?)?;
            (
                AutoEngine::default()
                    .choose(&ledger, key, tau)
                    .map_err(led)?,
                temporal_core::index_freshness(&ledger).map_err(led)?,
            )
        }
    };
    print!("{}", choice.render());
    if let Some(f) = freshness {
        println!("{}", f.render());
    }
    Ok(())
}

fn stats(args: &Args) -> CliResult {
    let ledger = open_with(args, args.pos(1, "dir")?)?;
    let tau = parse_tau(args, 2)?;
    let engine = pick_engine(args)?;
    let tel = ledger.telemetry();
    tel.enable();
    tel.reset();
    let outcome = ferry_query(engine.as_ref(), &ledger, tau).map_err(led)?;
    let report = fabric_telemetry::export::Report::new(tel.snapshot())
        .with("engine", engine.name())
        .with("tau", tau.to_string())
        .with("records", outcome.records.len().to_string());
    match args.opt("format").unwrap_or("table") {
        "table" => {
            println!(
                "{} record(s) via {} over {tau} in {:?}",
                outcome.records.len(),
                engine.name(),
                outcome.stats.wall
            );
            print!(
                "{}",
                fabric_telemetry::export::render_table(&report.snapshot)
            );
        }
        "json" => println!("{}", report.json_line()),
        "csv" => print!("{}", report.csv()),
        other => return Err(format!("unknown format '{other}' (table|json|csv)")),
    }
    Ok(())
}

/// What one recorded workload session produced: the human summary, the
/// finished span records, and any sampled counter track points
/// (queue depths) captured while it ran.
struct Recorded {
    summary: String,
    records: Vec<fabric_telemetry::SpanRecord>,
    points: Vec<fabric_telemetry::TrackPoint>,
}

/// The one-process workload driver shared by `trace`, `profile` and
/// `top`: optional in-process ingest (`--ingest ds --scale N`) followed
/// by one query (`--key`, `--workers`, `--engine`), all under span
/// recording with queue-depth track points on.
///
/// With `--pipeline on` the commit-stage worker spans (commit.append/
/// index/statedb) land in the recording alongside the query, each
/// parented under the ledger.commit span that submitted its block.
///
/// `tau` of `None` means "the ingested dataset's full `(0, t_max]`
/// window" and requires `--ingest`.
fn record_workload(
    args: &Args,
    ledger: &Ledger,
    tau: Option<Interval>,
) -> Result<Recorded, String> {
    let engine = pick_engine(args)?;
    let key = match args.opt("key") {
        Some(k) => Some(
            EntityId::from_key(k.as_bytes())
                .ok_or_else(|| "key must look like S00001 / C00001".to_string())?,
        ),
        None => None,
    };
    let workers = args.opt_u64("workers")?.unwrap_or(0) as usize;

    let tel = ledger.telemetry();
    let was_enabled = tel.is_enabled();
    let was_tracked = tel.track_points_on();
    tel.enable();
    tel.enable_track_points(true);
    let _ = tel.drain_spans();
    let _ = tel.drain_track_points();

    let mut summary = String::new();
    let mut tau = tau;
    if let Some(ds) = args.opt("ingest") {
        let id = match ds {
            "ds1" => DatasetId::Ds1,
            "ds2" => DatasetId::Ds2,
            "ds3" => DatasetId::Ds3,
            other => return Err(format!("unknown dataset '{other}' (ds1|ds2|ds3)")),
        };
        let scale = args.opt_u64("scale")?.unwrap_or(40) as u32;
        let workload = if scale <= 1 {
            dataset::generate(id)
        } else {
            dataset::generate_scaled(id, scale)
        };
        let report = ingest(
            ledger,
            &workload.events,
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .map_err(led)?;
        summary.push_str(&format!(
            "ingested {id} (scale 1/{scale}): {} events in {} block(s)\n",
            report.events, report.blocks
        ));
        if tau.is_none() {
            tau = Some(Interval::new(0, workload.params.t_max));
        }
    }
    let tau = tau.ok_or_else(|| "need <dir> <t1> <t2> or --ingest ds1|ds2|ds3".to_string())?;

    let query_summary = match (key, workers) {
        (Some(k), 0) => {
            let events = engine.events_for_key(ledger, k, tau).map_err(led)?;
            format!(
                "{} event(s) for {k} via {} over {tau}",
                events.len(),
                engine.name()
            )
        }
        (Some(k), w) => {
            let per_key =
                temporal_core::events_for_keys_parallel(engine.as_ref(), ledger, &[k], tau, w)
                    .map_err(led)?;
            format!(
                "{} event(s) for {k} via {} over {tau} ({w} worker(s))",
                per_key[0].len(),
                engine.name()
            )
        }
        (None, 0) => {
            let outcome = ferry_query(engine.as_ref(), ledger, tau).map_err(led)?;
            format!(
                "{} record(s) via {} over {tau}",
                outcome.records.len(),
                engine.name()
            )
        }
        (None, w) => {
            let outcome = temporal_core::ferry_query_parallel(engine.as_ref(), ledger, tau, w)
                .map_err(led)?;
            format!(
                "{} record(s) via {} over {tau} ({w} worker(s))",
                outcome.records.len(),
                engine.name()
            )
        }
    };
    summary.push_str(&query_summary);

    let records = tel.drain_spans();
    let points = tel.drain_track_points();
    tel.enable_track_points(was_tracked);
    if !was_enabled {
        tel.disable();
    }
    Ok(Recorded {
        summary,
        records,
        points,
    })
}

fn trace(args: &Args) -> CliResult {
    let ledger = open_with(args, args.pos(1, "dir")?)?;
    let tau = parse_tau(args, 2)?;
    let export = match args.opt("export") {
        None => None,
        Some("chrome") => Some("chrome"),
        Some(other) => return Err(format!("--export must be chrome, got '{other}'")),
    };
    let rec = record_workload(args, &ledger, Some(tau))?;

    match export {
        Some(_) => {
            let json = fabric_telemetry::chrome_trace_with_counters(&rec.records, &rec.points);
            match args.opt("out") {
                Some(path) => {
                    std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
                    println!("{}", rec.summary);
                    println!(
                        "wrote {} span(s) and {} counter sample(s) as Chrome trace events to {path}",
                        rec.records.len(),
                        rec.points.len()
                    );
                }
                None => println!("{json}"),
            }
        }
        None => {
            println!("{}", rec.summary);
            let tree = fabric_telemetry::build_tree(rec.records);
            print!("{}", fabric_telemetry::render_tree(&tree));
            let depth = tree.iter().map(|n| n.depth()).max().unwrap_or(0);
            println!("deepest nesting: {depth} level(s)");
        }
    }
    Ok(())
}

/// A throwaway ledger directory for `profile`/`top` runs that bring
/// their own dataset via `--ingest` instead of pointing at a `<dir>`.
struct ScratchDir(std::path::PathBuf);

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Resolve the ledger for `profile`/`top`: an explicit `<dir> <t1> <t2>`
/// like `trace`, or — with `--ingest` and no positional dir — a scratch
/// ledger living only for this invocation, queried over the dataset's
/// full window.
fn open_session(args: &Args) -> Result<(Ledger, Option<Interval>, Option<ScratchDir>), String> {
    match args.pos_opt(1) {
        Some(dir) => Ok((open_with(args, dir)?, Some(parse_tau(args, 2)?), None)),
        None => {
            if args.opt("ingest").is_none() {
                return Err("need <dir> <t1> <t2> or --ingest ds1|ds2|ds3".to_string());
            }
            let dir = std::env::temp_dir().join(format!(
                "tfq-scratch-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let ledger = open_with(args, dir.to_str().ok_or("temp dir is not utf-8")?)?;
            Ok((ledger, None, Some(ScratchDir(dir))))
        }
    }
}

fn profile(args: &Args) -> CliResult {
    let hz = args
        .opt_u64("hz")?
        .unwrap_or(fabric_telemetry::profile::DEFAULT_HZ);
    let (ledger, tau, _scratch) = open_session(args)?;
    let profiler = fabric_telemetry::Profiler::start(ledger.telemetry(), hz);
    let outcome = record_workload(args, &ledger, tau);
    let prof = profiler.stop();
    let rec = outcome?;

    println!("{}", rec.summary);
    println!(
        "profiled at {hz}Hz: {} sample(s) over {} tick(s), {} distinct stack(s)",
        prof.samples(),
        prof.ticks(),
        prof.distinct_stacks()
    );
    if let Some((stack, n)) = prof.hottest().first() {
        println!("hottest stack: {stack} ({n} sample(s))");
    }
    let collapsed = prof.collapsed();
    match args.opt("out") {
        Some(path) => {
            std::fs::write(path, &collapsed).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!(
                "wrote collapsed stacks to {path} — render with \
                 `inferno-flamegraph < {path} > flame.svg` (or flamegraph.pl)"
            );
        }
        None => print!("{collapsed}"),
    }
    Ok(())
}

fn top(args: &Args) -> CliResult {
    let limit = args.opt_u64("limit")?.unwrap_or(12) as usize;
    let (ledger, tau, _scratch) = open_session(args)?;
    let rec = record_workload(args, &ledger, tau)?;
    let rows = fabric_telemetry::top_spans(&rec.records);

    println!("{}", rec.summary);
    println!(
        "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "span", "count", "total(ms)", "self(ms)", "alloc(KiB)", "peak(KiB)"
    );
    for row in rows.iter().take(limit.max(1)) {
        println!(
            "{:<28} {:>7} {:>12.3} {:>12.3} {:>12} {:>12}",
            row.name,
            row.count,
            row.total_ns as f64 / 1e6,
            row.self_ns as f64 / 1e6,
            row.alloc_bytes / 1024,
            row.peak_bytes / 1024,
        );
    }
    if rows.len() > limit {
        println!(
            "... {} more span name(s); raise --limit to see them",
            rows.len() - limit
        );
    }
    Ok(())
}

fn planner_report(args: &Args) -> CliResult {
    let path = args.pos(1, "log.jsonl")?;
    // A planner log that was never written is an ordinary state for a
    // fresh deployment (nothing routed through the auto engine yet), not
    // an error: report it and exit 0 so CI report steps don't fail.
    if !std::path::Path::new(path).exists() {
        println!("no planner records: {path} does not exist (nothing logged yet)");
        return Ok(());
    }
    let records =
        temporal_core::PlannerLog::load(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if records.is_empty() {
        // `load` skips unparseable lines, so this covers both a truly
        // empty log and one holding no valid records.
        println!("no planner records in {path}");
        return Ok(());
    }
    let groups = temporal_core::calibrate::aggregate(&records);
    print!("{}", temporal_core::calibrate::render_report(&groups));
    Ok(())
}

/// Run one query with telemetry enabled and return a summary line plus the
/// collected span forest. With a key, only that key's events are traced;
/// without, the whole ferry join runs under the trace.
#[cfg(test)]
fn trace_query(
    ledger: &Ledger,
    engine: &dyn TemporalEngine,
    tau: Interval,
    key: Option<EntityId>,
) -> Result<(String, Vec<fabric_telemetry::SpanNode>), fabric_ledger::Error> {
    let tel = ledger.telemetry();
    let was_enabled = tel.is_enabled();
    tel.enable();
    let _ = tel.drain_spans();
    let summary = match key {
        Some(k) => {
            let events = engine.events_for_key(ledger, k, tau)?;
            format!(
                "{} event(s) for {k} via {} over {tau}",
                events.len(),
                engine.name()
            )
        }
        None => {
            let outcome = ferry_query(engine, ledger, tau)?;
            format!(
                "{} record(s) via {} over {tau}",
                outcome.records.len(),
                engine.name()
            )
        }
    };
    let tree = tel.span_tree();
    if !was_enabled {
        tel.disable();
    }
    Ok((summary, tree))
}

/// The indexer-daemon configuration shared by `index-daemon`, `demo
/// --index-lag` and `serve --index-lag`: `--index-lag N` bounds how many
/// data blocks may pile up unindexed; θ comes from `--adaptive EVENTS`
/// (per-key density-tuned, clamped to `--min-u`/`--max-u`) or `--u U`
/// (the paper's global fixed θ, default 2000).
pub(crate) fn daemon_config_from(args: &Args) -> Result<temporal_core::DaemonConfig, String> {
    let lag_blocks = args.opt_u64("index-lag")?.unwrap_or(0);
    let policy = match args.opt_u64("adaptive")? {
        Some(0) => return Err("--adaptive must be at least 1 event per cell".to_string()),
        Some(target_events) => {
            if args.opt("u").is_some() {
                return Err("--adaptive and --u are mutually exclusive".to_string());
            }
            temporal_core::ThetaPolicy::Adaptive {
                target_events,
                min_u: args.opt_u64("min-u")?.unwrap_or(100),
                max_u: args.opt_u64("max-u")?.unwrap_or(100_000),
            }
        }
        None => temporal_core::ThetaPolicy::Fixed {
            u: args.opt_u64("u")?.unwrap_or(2000),
        },
    };
    Ok(temporal_core::DaemonConfig { lag_blocks, policy })
}

fn print_daemon_report(prefix: &str, r: &temporal_core::DaemonReport) {
    println!(
        "{prefix}consumed {} block(s) ({} event(s), {} late, {} foreign), \
         cut {} epoch(s) / {} index pair(s); horizon t={}, watermark block {}, θ-generation {}",
        r.blocks_consumed,
        r.events_buffered,
        r.late_events,
        r.foreign_writes,
        r.epochs,
        r.index_pairs,
        r.indexed_to,
        r.horizon_block,
        r.generation
    );
}

fn index_daemon(args: &Args) -> CliResult {
    let dir = args.pos(1, "dir")?;
    let cfg = daemon_config_from(args)?;
    match shards_from(args)? {
        Some(n) => {
            let ledger = std::sync::Arc::new(open_sharded(args, dir, n)?);
            for i in 0..ledger.shard_count() {
                let mut daemon =
                    temporal_core::IndexerDaemon::for_shard(ledger.clone(), i, cfg).map_err(led)?;
                daemon.catch_up().map_err(led)?;
                daemon.flush().map_err(led)?;
                print_daemon_report(&format!("shard {i:>2}: "), &daemon.report());
            }
        }
        None => {
            let ledger = std::sync::Arc::new(open_with(args, dir)?);
            let mut daemon = temporal_core::IndexerDaemon::new(ledger, cfg).map_err(led)?;
            daemon.catch_up().map_err(led)?;
            daemon.flush().map_err(led)?;
            print_daemon_report("", &daemon.report());
        }
    }
    Ok(())
}

fn index(args: &Args) -> CliResult {
    let ledger = open_with(args, args.pos(1, "dir")?)?;
    let u = args
        .opt_u64("u")?
        .ok_or_else(|| "index requires --u".to_string())?;
    let from = match args.opt_u64("from")? {
        Some(t) => t,
        None => read_meta(&ledger)
            .map_err(led)?
            .map_or(0, |m| m.indexed_to()),
    };
    let to = match args.opt_u64("to")? {
        Some(t) => t,
        None => {
            // Default: index up to the newest event time seen in state-db.
            let rows = ledger.get_state_by_range(None, None).map_err(led)?;
            let mut max_t = 0;
            for (k, vv) in rows {
                if let Some(id) = EntityId::from_key(&k) {
                    if let Some(ev) = Event::decode_value(id, &vv.value) {
                        max_t = max_t.max(ev.time);
                    }
                }
            }
            max_t
        }
    };
    if to <= from {
        return Err(format!("nothing to index (from={from}, to={to})"));
    }
    let keys: Vec<EntityId> = ledger
        .get_state_by_range(None, None)
        .map_err(led)?
        .into_iter()
        .filter_map(|(k, _)| EntityId::from_key(&k))
        .collect();
    let threads = args.opt_u64("m1-index-threads")?.unwrap_or(1) as usize;
    let strategy = FixedLength { u };
    let report = M1Indexer::fixed(&strategy)
        .with_threads(threads)
        .run_epoch(&ledger, &keys, Interval::new(from, to))
        .map_err(led)?;
    println!(
        "indexed ({from}, {to}] for {} key(s): {} index pair(s), {} tx(s), {} block(s) read, {:?}",
        report.keys,
        report.indexes,
        report.txs,
        report.stats.blocks_deserialized(),
        report.stats.wall
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> CliResult {
        let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        dispatch(&argv)
    }

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "tfq-cmd-test-{}-{tag}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            TempDir(p)
        }
        fn s(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn no_command_prints_usage() {
        let err = run(&[]).unwrap_err();
        assert!(err.contains("usage"), "{err}");
        let err = run(&["bogus"]).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
    }

    #[test]
    fn full_lifecycle_through_dispatch() {
        let dir = TempDir::new("lifecycle");
        run(&["demo", dir.s(), "ds3", "--scale", "300"]).unwrap();
        run(&["info", dir.s()]).unwrap();
        run(&["verify", dir.s()]).unwrap();
        run(&["block", dir.s(), "0"]).unwrap();
        run(&["history", dir.s(), "S00000"]).unwrap();
        run(&["index", dir.s(), "--u", "2000"]).unwrap();
        run(&["events", dir.s(), "S00000", "0", "5000", "--engine", "m1"]).unwrap();
        run(&["events", dir.s(), "S00000", "0", "5000", "--engine", "auto"]).unwrap();
        run(&["explain", dir.s(), "S00000", "0", "5000", "--engine", "m1"]).unwrap();
        run(&[
            "explain",
            dir.s(),
            "S00000",
            "0",
            "5000",
            "--engine",
            "auto",
        ])
        .unwrap();
        run(&["plan", dir.s(), "S00000", "0", "5000"]).unwrap();
        run(&["join", dir.s(), "0", "5000", "--engine", "tqf"]).unwrap();
        run(&["join", dir.s(), "0", "5000", "--engine", "auto"]).unwrap();
        run(&["analyze", dir.s(), "S00000", "0", "5000", "--engine", "m1"]).unwrap();
        run(&["analyze", dir.s(), "S00000", "0", "5000", "--engine", "tqf"]).unwrap();
        run(&[
            "analyze",
            dir.s(),
            "S00000",
            "0",
            "5000",
            "--engine",
            "auto",
        ])
        .unwrap();
        run(&["stats", dir.s(), "0", "5000", "--engine", "tqf"]).unwrap();
        run(&["stats", dir.s(), "0", "5000", "--format", "json"]).unwrap();
        run(&["stats", dir.s(), "0", "5000", "--format", "csv"]).unwrap();
        run(&["trace", dir.s(), "0", "5000", "--engine", "m1"]).unwrap();
        run(&["trace", dir.s(), "0", "5000", "--key", "S00000"]).unwrap();
    }

    #[test]
    fn trace_tree_nests_at_least_three_levels() {
        let dir = TempDir::new("depth");
        run(&["demo", dir.s(), "ds3", "--scale", "300"]).unwrap();
        let ledger = Ledger::open(dir.s(), LedgerConfig::default()).unwrap();
        let (_, tree) = trace_query(&ledger, &TqfEngine, Interval::new(0, 5000), None).unwrap();
        let depth = tree.iter().map(|n| n.depth()).max().unwrap_or(0);
        assert!(depth >= 3, "span tree depth {depth} < 3");
        let rendered = fabric_telemetry::render_tree(&tree);
        assert!(rendered.contains("query.ferry"), "{rendered}");
        assert!(rendered.contains("ghfk"), "{rendered}");
        assert!(rendered.contains("block.deserialize"), "{rendered}");
    }

    #[test]
    fn trace_chrome_export_covers_pipeline_and_workers() {
        let dir = TempDir::new("chrome");
        let out = std::env::temp_dir().join(format!("tfq-chrome-{}.json", std::process::id()));
        // One invocation: pipelined ingest + parallel query, exported as a
        // Chrome trace. The acceptance shape for the observability PR.
        run(&[
            "trace",
            dir.s(),
            "0",
            "5000",
            "--ingest",
            "ds3",
            "--scale",
            "300",
            "--pipeline",
            "on",
            "--workers",
            "2",
            "--export",
            "chrome",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        // Commit-stage lanes from the pipelined ingest...
        assert!(json.contains("\"name\":\"commit.append\""), "{json}");
        // ...and per-cursor worker lanes from the parallel query.
        assert!(json.contains("\"name\":\"query.worker.key\""), "{json}");
        assert!(json.contains("\"name\":\"query.ferry.parallel\""), "{json}");
        assert!(run(&["trace", dir.s(), "0", "5000", "--export", "svg"]).is_err());
    }

    #[test]
    fn planner_report_from_logged_queries() {
        let dir = TempDir::new("plog");
        run(&["demo", dir.s(), "ds3", "--scale", "300"]).unwrap();
        run(&["index", dir.s(), "--u", "2000"]).unwrap();
        let log_path = std::env::temp_dir().join(format!("tfq-plog-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&log_path);
        {
            let ledger = Ledger::open(dir.s(), LedgerConfig::default()).unwrap();
            let log = temporal_core::PlannerLog::open(&log_path).unwrap();
            log.set_dataset("ds3");
            let auto = temporal_core::AutoEngine::with_log(log);
            for t2 in [2000u64, 5000] {
                let key = EntityId::from_key(b"S00000").unwrap();
                let mut cur = auto
                    .events_cursor(&ledger, key, Interval::new(0, t2))
                    .unwrap();
                while cur.next_event().unwrap().is_some() {}
            }
        }
        run(&["planner-report", log_path.to_str().unwrap()]).unwrap();
        let _ = std::fs::remove_file(&log_path);
    }

    #[test]
    fn planner_report_is_clean_on_missing_or_empty_log() {
        // A log that was never written (or written empty) is a normal
        // fresh-deployment state: exit 0 with a message, not an error.
        run(&["planner-report", "/nonexistent/x.jsonl"]).unwrap();
        let empty =
            std::env::temp_dir().join(format!("tfq-plog-empty-{}.jsonl", std::process::id()));
        std::fs::write(&empty, "").unwrap();
        run(&["planner-report", empty.to_str().unwrap()]).unwrap();
        let _ = std::fs::remove_file(&empty);
        // Unparseable lines are skipped by the loader, so a log with no
        // valid records behaves like an empty one.
        let bad = std::env::temp_dir().join(format!("tfq-plog-bad-{}.jsonl", std::process::id()));
        std::fs::write(&bad, "this is not json\n").unwrap();
        run(&["planner-report", bad.to_str().unwrap()]).unwrap();
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn profile_writes_collapsed_stacks_from_a_scratch_ingest() {
        // The acceptance shape: no <dir>, dataset built in-process, output
        // in flamegraph.pl/inferno collapsed form. A high rate keeps the
        // run short while still likely to catch stacks; zero samples is
        // legal (sampling is probabilistic), the format must hold anyway.
        let out = std::env::temp_dir().join(format!("tfq-prof-{}.collapsed", std::process::id()));
        run(&[
            "profile",
            "--ingest",
            "ds3",
            "--scale",
            "300",
            "--workers",
            "2",
            "--hz",
            "4000",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        let collapsed = std::fs::read_to_string(&out).unwrap();
        let _ = std::fs::remove_file(&out);
        for line in collapsed.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack count");
            assert!(stack.split(';').all(|f| !f.is_empty()), "{line:?}");
            count.parse::<u64>().expect("count must be an integer");
        }
        // Without <dir> and without --ingest there is nothing to run.
        assert!(run(&["profile"]).is_err());
    }

    #[test]
    fn profile_runs_against_an_existing_ledger() {
        let dir = TempDir::new("profdir");
        run(&["demo", dir.s(), "ds3", "--scale", "300"]).unwrap();
        run(&["profile", dir.s(), "0", "5000", "--hz", "4000"]).unwrap();
        run(&["profile", dir.s(), "0", "5000", "--key", "S00000"]).unwrap();
    }

    #[test]
    fn top_ranks_spans_by_self_time() {
        let dir = TempDir::new("topcmd");
        run(&["demo", dir.s(), "ds3", "--scale", "300"]).unwrap();
        run(&["top", dir.s(), "0", "5000"]).unwrap();
        run(&[
            "top",
            dir.s(),
            "0",
            "5000",
            "--limit",
            "3",
            "--workers",
            "2",
        ])
        .unwrap();
        assert!(run(&["top"]).is_err(), "no dir and no --ingest");
    }

    #[test]
    fn read_path_flags_are_accepted_and_validated() {
        let dir = TempDir::new("readpath");
        run(&["demo", dir.s(), "ds3", "--scale", "400"]).unwrap();
        // Cached + sharded + coalesced (the overhaul path).
        run(&[
            "join",
            dir.s(),
            "0",
            "5000",
            "--cache-blocks",
            "64",
            "--cache-shards",
            "4",
        ])
        .unwrap();
        // Seed read path: coalescing off, no cache.
        run(&["join", dir.s(), "0", "5000", "--coalesce", "off"]).unwrap();
        run(&["history", dir.s(), "S00000", "--coalesce", "off"]).unwrap();
        assert!(run(&["join", dir.s(), "0", "5000", "--coalesce", "maybe"]).is_err());
        assert!(run(&["join", dir.s(), "0", "5000", "--cache-blocks", "x"]).is_err());
    }

    #[test]
    fn write_path_flags_are_accepted_and_validated() {
        let dir = TempDir::new("writepath");
        // Pipelined + group-commit ingest, then read back serially: the
        // pipelined path must leave a fully valid ledger behind.
        run(&[
            "demo",
            dir.s(),
            "ds3",
            "--scale",
            "400",
            "--pipeline",
            "on",
            "--wal-group-commit",
            "on",
        ])
        .unwrap();
        run(&["verify", dir.s()]).unwrap();
        run(&["join", dir.s(), "0", "5000"]).unwrap();
        // Parallel M1 build through the flag.
        run(&["index", dir.s(), "--u", "2000", "--m1-index-threads", "4"]).unwrap();
        run(&["events", dir.s(), "S00000", "0", "5000", "--engine", "m1"]).unwrap();
        assert!(run(&["info", dir.s(), "--pipeline", "maybe"]).is_err());
        assert!(run(&["info", dir.s(), "--wal-group-commit", "2"]).is_err());
    }

    #[test]
    fn stats_and_bad_format_are_reported() {
        let dir = TempDir::new("statsfmt");
        run(&["demo", dir.s(), "ds3", "--scale", "400"]).unwrap();
        assert!(run(&["stats", dir.s(), "0", "5000", "--format", "xml"]).is_err());
        assert!(run(&["trace", dir.s(), "0", "5000", "--key", "BADKEY"]).is_err());
    }

    #[test]
    fn trace_roundtrip_through_dispatch() {
        let dir = TempDir::new("trace");
        let csv = std::env::temp_dir().join(format!("tfq-trace-{}.csv", std::process::id()));
        run(&[
            "export-trace",
            csv.to_str().unwrap(),
            "ds3",
            "--scale",
            "300",
        ])
        .unwrap();
        run(&["replay", dir.s(), csv.to_str().unwrap(), "--m2-u", "2000"]).unwrap();
        run(&[
            "events",
            dir.s(),
            "S00000",
            "0",
            "5000",
            "--engine",
            "m2",
            "--u",
            "2000",
        ])
        .unwrap();
        let _ = std::fs::remove_file(&csv);
    }

    #[test]
    fn backup_through_dispatch() {
        let dir = TempDir::new("bk-src");
        let dst = TempDir::new("bk-dst");
        run(&["demo", dir.s(), "ds3", "--scale", "400"]).unwrap();
        run(&["backup", dir.s(), dst.s()]).unwrap();
        run(&["verify", dst.s()]).unwrap();
    }

    #[test]
    fn sharded_lifecycle_through_dispatch() {
        let dir = TempDir::new("sharded");
        run(&["demo", dir.s(), "ds3", "--scale", "4", "--shards", "2"]).unwrap();
        run(&["info", dir.s(), "--shards", "2"]).unwrap();
        run(&["events", dir.s(), "S00001", "0", "5000", "--shards", "2"]).unwrap();
        run(&["join", dir.s(), "0", "5000", "--shards", "2"]).unwrap();
        run(&["plan", dir.s(), "S00001", "0", "5000", "--shards", "2"]).unwrap();
        // Every dir-taking read command accepts the sharded layout.
        run(&["history", dir.s(), "S00001", "--shards", "2"]).unwrap();
        run(&["verify", dir.s(), "--shards", "2"]).unwrap();
        // Reopening with a different partition count is rejected.
        assert!(run(&["info", dir.s(), "--shards", "3"]).is_err());
        assert!(run(&["demo", dir.s(), "ds3", "--shards", "0"]).is_err());
        // Commands that would misread the sharded layout reject the flag.
        let err = run(&["block", dir.s(), "0", "--shards", "2"]).unwrap_err();
        assert!(err.contains("not supported"), "{err}");
    }

    #[test]
    fn sharded_backup_through_dispatch() {
        let dir = TempDir::new("shbk-src");
        let dst = TempDir::new("shbk-dst");
        run(&["demo", dir.s(), "ds3", "--scale", "4", "--shards", "4"]).unwrap();
        run(&["backup", dir.s(), dst.s(), "--shards", "4"]).unwrap();
        // The backup is a full sharded ledger: verifiable and queryable.
        run(&["verify", dst.s(), "--shards", "4"]).unwrap();
        run(&["events", dst.s(), "S00001", "0", "5000", "--shards", "4"]).unwrap();
        // Wrong count against the backup's SHARDS meta is rejected.
        assert!(run(&["info", dst.s(), "--shards", "2"]).is_err());
    }

    #[test]
    fn index_daemon_through_dispatch() {
        let dir = TempDir::new("idxd");
        run(&["demo", dir.s(), "ds3", "--scale", "300"]).unwrap();
        // One-shot catch-up from block 0, then queries ride the index.
        run(&["index-daemon", dir.s(), "--index-lag", "4", "--u", "500"]).unwrap();
        run(&["events", dir.s(), "S00000", "0", "5000", "--engine", "m1"]).unwrap();
        run(&["events", dir.s(), "S00000", "0", "5000", "--engine", "auto"]).unwrap();
        run(&["info", dir.s()]).unwrap();
        run(&["plan", dir.s(), "S00000", "0", "5000"]).unwrap();
        // A second invocation resumes from the watermark (no-op here).
        run(&["index-daemon", dir.s(), "--u", "500"]).unwrap();
        // Policy mismatch against the persisted index is rejected.
        assert!(run(&["index-daemon", dir.s(), "--u", "123"]).is_err());
        assert!(run(&["index-daemon", dir.s(), "--adaptive", "8"]).is_err());
        // Flag validation.
        assert!(run(&["index-daemon", dir.s(), "--adaptive", "0"]).is_err());
        assert!(run(&["index-daemon", dir.s(), "--adaptive", "8", "--u", "9"]).is_err());
    }

    #[test]
    fn index_daemon_sharded_and_adaptive_through_dispatch() {
        let dir = TempDir::new("idxd-sh");
        run(&["demo", dir.s(), "ds3", "--scale", "4", "--shards", "2"]).unwrap();
        run(&["index-daemon", dir.s(), "--shards", "2", "--adaptive", "8"]).unwrap();
        run(&["info", dir.s(), "--shards", "2"]).unwrap();
        run(&["events", dir.s(), "S00001", "0", "5000", "--shards", "2"]).unwrap();
        run(&["plan", dir.s(), "S00001", "0", "5000", "--shards", "2"]).unwrap();
    }

    #[test]
    fn demo_with_live_daemon_indexes_during_ingest() {
        let dir = TempDir::new("demo-daemon");
        run(&[
            "demo",
            dir.s(),
            "ds3",
            "--scale",
            "300",
            "--mode",
            "se",
            "--index-lag",
            "2",
            "--u",
            "500",
        ])
        .unwrap();
        // The daemon's index answers M1 queries with no batch build step.
        run(&["events", dir.s(), "S00000", "0", "5000", "--engine", "m1"]).unwrap();
        run(&["verify", dir.s()]).unwrap();
    }

    #[test]
    fn sharded_join_matches_single_shard() {
        let plain = TempDir::new("parity-plain");
        let sharded = TempDir::new("parity-sharded");
        run(&["demo", plain.s(), "ds3", "--scale", "4"]).unwrap();
        run(&["demo", sharded.s(), "ds3", "--scale", "4", "--shards", "4"]).unwrap();
        let q = |dir: &str, extra: &[&str]| {
            let ledger_args: Vec<&str> = ["join", dir, "0", "5000"]
                .iter()
                .chain(extra)
                .copied()
                .collect();
            run(&ledger_args).unwrap()
        };
        // Both succeed; record-level parity is asserted in the core and
        // integration tests — here we exercise the full dispatch path.
        q(plain.s(), &[]);
        q(sharded.s(), &["--shards", "4"]);
    }

    #[test]
    fn validate_threads_flag_commits_identically() {
        let serial = TempDir::new("vt-serial");
        let parallel = TempDir::new("vt-par");
        run(&["demo", serial.s(), "ds3", "--scale", "300"]).unwrap();
        run(&[
            "demo",
            parallel.s(),
            "ds3",
            "--scale",
            "300",
            "--validate-threads",
            "4",
        ])
        .unwrap();
        run(&["verify", parallel.s()]).unwrap();
        // Parallel validation must leave bit-identical blockfiles.
        let read = |d: &TempDir| {
            let mut out = Vec::new();
            for entry in std::fs::read_dir(d.0.join("blocks")).unwrap() {
                let entry = entry.unwrap();
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.starts_with("blockfile_") {
                    out.push((name, std::fs::read(entry.path()).unwrap()));
                }
            }
            out.sort();
            out
        };
        assert_eq!(read(&serial), read(&parallel));
        // 0 = auto thread count, also accepted.
        let auto = TempDir::new("vt-auto");
        run(&[
            "demo",
            auto.s(),
            "ds3",
            "--scale",
            "300",
            "--validate-threads",
            "0",
        ])
        .unwrap();
        assert_eq!(read(&serial), read(&auto));
    }

    #[test]
    fn backend_flag_selects_and_persists_the_engine() {
        let dir = TempDir::new("backend");
        // Build on the value-log engine; the marker persists the choice.
        run(&["demo", dir.s(), "ds3", "--scale", "400", "--backend", "log"]).unwrap();
        assert!(dir.0.join("state").join("ENGINE").exists());
        assert!(dir.0.join("index").join("ENGINE").exists());
        // Auto (default) resolves the marker; explicit log matches too.
        run(&["verify", dir.s()]).unwrap();
        run(&["info", dir.s(), "--backend", "log"]).unwrap();
        run(&["history", dir.s(), "S00000", "--backend", "auto"]).unwrap();
        run(&["join", dir.s(), "0", "5000"]).unwrap();
        // Reopening a marked directory as lsm is a refused mismatch.
        assert!(run(&["info", dir.s(), "--backend", "lsm"]).is_err());
        assert!(run(&["info", dir.s(), "--backend", "rocks"]).is_err());
        // An LSM ledger stays marker-free and refuses --backend log.
        let lsm = TempDir::new("backend-lsm");
        run(&["demo", lsm.s(), "ds3", "--scale", "400", "--backend", "lsm"]).unwrap();
        assert!(!lsm.0.join("state").join("ENGINE").exists());
        assert!(run(&["info", lsm.s(), "--backend", "log"]).is_err());
        run(&["info", lsm.s()]).unwrap();
    }

    #[test]
    fn bad_arguments_are_reported() {
        let dir = TempDir::new("bad");
        run(&["demo", dir.s(), "ds3", "--scale", "400"]).unwrap();
        assert!(run(&["demo", dir.s(), "ds9"]).is_err());
        assert!(run(&["block", dir.s(), "notanumber"]).is_err());
        assert!(run(&["events", dir.s(), "BADKEY", "0", "10"]).is_err());
        assert!(run(&["events", dir.s(), "S00000", "10", "10"]).is_err());
        assert!(run(&["events", dir.s(), "S00000", "0", "10", "--engine", "m2"]).is_err());
        assert!(run(&["index", dir.s()]).is_err());
        assert!(run(&["tx", dir.s(), "nothex"]).is_err());
        assert!(run(&["plan", dir.s(), "BADKEY", "0", "10"]).is_err());
        assert!(run(&["events", dir.s(), "S00000", "0", "10", "--engine", "x"]).is_err());
    }
}
