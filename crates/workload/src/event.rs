//! Load/unload events and their ledger value encoding.
//!
//! An event is one state of a shipment or container key:
//!
//! * `⟨s, (c, t, "l")⟩` — shipment `s` loaded into container `c` at `t`
//! * `⟨s, (c, t, "ul")⟩` — shipment `s` unloaded from container `c` at `t`
//! * `⟨c, (tr, t, "l"/"ul")⟩` — container `c` loaded onto / unloaded from
//!   truck `tr` at `t`
//!
//! The value encoding is a compact fixed layout (`kind: u8`, `time: u64 LE`,
//! `target: 6 ASCII bytes`) so that a million-event dataset stays small and
//! decoding during joins is branch-free.

use bytes::Bytes;

use crate::entity::EntityId;

/// Load or unload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The subject enters the target (shipment→container,
    /// container→truck).
    Load,
    /// The subject leaves the target.
    Unload,
}

impl EventKind {
    /// Wire byte.
    pub fn to_byte(self) -> u8 {
        match self {
            EventKind::Load => b'l',
            EventKind::Unload => b'u',
        }
    }

    /// Inverse of [`EventKind::to_byte`].
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            b'l' => Some(EventKind::Load),
            b'u' => Some(EventKind::Unload),
            _ => None,
        }
    }
}

/// One load/unload event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Event {
    /// The ledger key this event is a state of (shipment or container).
    pub subject: EntityId,
    /// Where the subject was loaded/unloaded (container or truck).
    pub target: EntityId,
    /// Event time on the paper's dimensionless clock.
    pub time: u64,
    /// Load or unload.
    pub kind: EventKind,
}

/// Encoded length of an event value.
pub const EVENT_VALUE_LEN: usize = 1 + 8 + 6;

impl Event {
    /// Encode the `(target, t, kind)` value stored on the ledger.
    pub fn encode_value(&self) -> Bytes {
        let mut out = Vec::with_capacity(EVENT_VALUE_LEN);
        out.push(self.kind.to_byte());
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&self.target.key());
        Bytes::from(out)
    }

    /// Decode a value for the given subject key. Returns `None` on any
    /// structural mismatch.
    pub fn decode_value(subject: EntityId, value: &[u8]) -> Option<Event> {
        if value.len() != EVENT_VALUE_LEN {
            return None;
        }
        let kind = EventKind::from_byte(value[0])?;
        let time = u64::from_le_bytes(value[1..9].try_into().ok()?);
        let target = EntityId::from_key(&value[9..15])?;
        Some(Event {
            subject,
            target,
            time,
            kind,
        })
    }

    /// The ledger key of the subject.
    pub fn key(&self) -> Bytes {
        self.subject.key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let ev = Event {
            subject: EntityId::shipment(3),
            target: EntityId::container(17),
            time: 123_456,
            kind: EventKind::Load,
        };
        let value = ev.encode_value();
        assert_eq!(value.len(), EVENT_VALUE_LEN);
        let decoded = Event::decode_value(EntityId::shipment(3), &value).unwrap();
        assert_eq!(decoded, ev);
    }

    #[test]
    fn unload_roundtrip() {
        let ev = Event {
            subject: EntityId::container(5),
            target: EntityId::truck(2),
            time: 0,
            kind: EventKind::Unload,
        };
        let decoded = Event::decode_value(EntityId::container(5), &ev.encode_value()).unwrap();
        assert_eq!(decoded.kind, EventKind::Unload);
        assert_eq!(decoded.target, EntityId::truck(2));
    }

    #[test]
    fn decode_rejects_malformed() {
        let subject = EntityId::shipment(0);
        assert!(Event::decode_value(subject, b"short").is_none());
        let mut bad = vec![b'x']; // unknown kind byte
        bad.extend_from_slice(&0u64.to_le_bytes());
        bad.extend_from_slice(b"C00001");
        assert!(Event::decode_value(subject, &bad).is_none());
        let mut bad_target = vec![b'l'];
        bad_target.extend_from_slice(&0u64.to_le_bytes());
        bad_target.extend_from_slice(b"Zabcde");
        assert!(Event::decode_value(subject, &bad_target).is_none());
    }

    #[test]
    fn kind_bytes_roundtrip() {
        for k in [EventKind::Load, EventKind::Unload] {
            assert_eq!(EventKind::from_byte(k.to_byte()), Some(k));
        }
        assert_eq!(EventKind::from_byte(b'z'), None);
    }
}
