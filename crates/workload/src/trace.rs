//! Trace export/import: persist a generated workload as a CSV event trace.
//!
//! Useful for sharing exact benchmark inputs (the paper's datasets are
//! synthetic and seeded, but a pinned trace survives generator changes),
//! and for replaying production-shaped traces from other systems.
//!
//! Format: a header line, then one event per line —
//! `subject,target,time,kind` with `kind ∈ {l, ul}` (the paper's own
//! symbols for load/unload).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::entity::EntityId;
use crate::event::{Event, EventKind};

/// Header written at the top of every trace.
pub const TRACE_HEADER: &str = "subject,target,time,kind";

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Malformed { line, detail } => {
                write!(f, "malformed trace line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Serialise `events` as a CSV trace.
pub fn write_trace(events: &[Event], out: impl Write) -> Result<(), TraceError> {
    let mut w = BufWriter::new(out);
    writeln!(w, "{TRACE_HEADER}")?;
    for ev in events {
        writeln!(
            w,
            "{},{},{},{}",
            ev.subject,
            ev.target,
            ev.time,
            match ev.kind {
                EventKind::Load => "l",
                EventKind::Unload => "ul",
            }
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Parse a CSV trace produced by [`write_trace`] (or hand-written in the
/// same format). The header line is required; blank lines are ignored.
pub fn read_trace(input: impl Read) -> Result<Vec<Event>, TraceError> {
    let reader = BufReader::new(input);
    let mut events = Vec::new();
    let mut saw_header = false;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if !saw_header {
            if trimmed != TRACE_HEADER {
                return Err(TraceError::Malformed {
                    line: line_no,
                    detail: format!("expected header '{TRACE_HEADER}'"),
                });
            }
            saw_header = true;
            continue;
        }
        let mut parts = trimmed.split(',');
        let bad = |detail: &str| TraceError::Malformed {
            line: line_no,
            detail: detail.to_string(),
        };
        let subject = parts
            .next()
            .and_then(|s| EntityId::from_key(s.as_bytes()))
            .ok_or_else(|| bad("bad subject id"))?;
        let target = parts
            .next()
            .and_then(|s| EntityId::from_key(s.as_bytes()))
            .ok_or_else(|| bad("bad target id"))?;
        let time: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad time"))?;
        let kind = match parts.next() {
            Some("l") => EventKind::Load,
            Some("ul") => EventKind::Unload,
            _ => return Err(bad("kind must be 'l' or 'ul'")),
        };
        if parts.next().is_some() {
            return Err(bad("trailing fields"));
        }
        events.push(Event {
            subject,
            target,
            time,
            kind,
        });
    }
    if !saw_header {
        return Err(TraceError::Malformed {
            line: 0,
            detail: "empty trace (missing header)".to_string(),
        });
    }
    Ok(events)
}

/// Convenience: write a trace to a file path.
pub fn save_trace(events: &[Event], path: impl AsRef<std::path::Path>) -> Result<(), TraceError> {
    write_trace(events, std::fs::File::create(path)?)
}

/// Convenience: read a trace from a file path.
pub fn load_trace(path: impl AsRef<std::path::Path>) -> Result<Vec<Event>, TraceError> {
    read_trace(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_scaled, DatasetId};

    #[test]
    fn roundtrip_generated_workload() {
        let w = generate_scaled(DatasetId::Ds3, 100);
        let mut buf = Vec::new();
        write_trace(&w.events, &mut buf).unwrap();
        let parsed = read_trace(&buf[..]).unwrap();
        assert_eq!(parsed, w.events);
    }

    #[test]
    fn file_roundtrip() {
        let w = generate_scaled(DatasetId::Ds3, 200);
        let path = std::env::temp_dir().join(format!("trace-test-{}.csv", std::process::id()));
        save_trace(&w.events, &path).unwrap();
        let parsed = load_trace(&path).unwrap();
        assert_eq!(parsed, w.events);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn handcrafted_trace_parses() {
        let text = "subject,target,time,kind\nS00001,C00002,100,l\nS00001,C00002,200,ul\n\n";
        let events = read_trace(text.as_bytes()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Load);
        assert_eq!(events[1].time, 200);
    }

    #[test]
    fn missing_header_rejected() {
        let text = "S00001,C00002,100,l\n";
        assert!(matches!(
            read_trace(text.as_bytes()),
            Err(TraceError::Malformed { line: 1, .. })
        ));
        assert!(read_trace(&b""[..]).is_err());
    }

    #[test]
    fn malformed_lines_report_position() {
        let cases = [
            (
                "subject,target,time,kind\nXXXXXX,C00002,100,l",
                "bad subject",
            ),
            ("subject,target,time,kind\nS00001,C00002,abc,l", "bad time"),
            ("subject,target,time,kind\nS00001,C00002,100,x", "bad kind"),
            (
                "subject,target,time,kind\nS00001,C00002,100,l,extra",
                "trailing",
            ),
        ];
        for (text, what) in cases {
            match read_trace(text.as_bytes()) {
                Err(TraceError::Malformed { line: 2, .. }) => {}
                other => panic!("{what}: expected malformed line 2, got {other:?}"),
            }
        }
    }
}
