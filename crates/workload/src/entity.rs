//! Supply-chain entities: shipments, containers, trucks.
//!
//! Shipments and containers are *keys* on the ledger (their load/unload
//! events are states of those keys); trucks appear only inside event values
//! (a container is loaded *onto* a truck). Key encoding is a fixed-width
//! ASCII scheme (`S00042`) so lexicographic order matches numeric order and
//! range scans like "all shipments" are single prefix scans.

use bytes::Bytes;

/// Kind of entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityKind {
    /// A shipment (placed in containers).
    Shipment,
    /// A container (carries shipments, rides on trucks).
    Container,
    /// A truck (carries containers; never a ledger key).
    Truck,
}

impl EntityKind {
    /// One-letter key prefix.
    pub fn prefix(self) -> u8 {
        match self {
            EntityKind::Shipment => b'S',
            EntityKind::Container => b'C',
            EntityKind::Truck => b'T',
        }
    }

    /// Inverse of [`EntityKind::prefix`].
    pub fn from_prefix(b: u8) -> Option<Self> {
        match b {
            b'S' => Some(EntityKind::Shipment),
            b'C' => Some(EntityKind::Container),
            b'T' => Some(EntityKind::Truck),
            _ => None,
        }
    }
}

/// A typed entity identifier (kind + ordinal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId {
    /// What kind of entity this is.
    pub kind: EntityKind,
    /// Zero-based ordinal within its kind.
    pub index: u32,
}

impl EntityId {
    /// A shipment id.
    pub fn shipment(index: u32) -> Self {
        EntityId {
            kind: EntityKind::Shipment,
            index,
        }
    }

    /// A container id.
    pub fn container(index: u32) -> Self {
        EntityId {
            kind: EntityKind::Container,
            index,
        }
    }

    /// A truck id.
    pub fn truck(index: u32) -> Self {
        EntityId {
            kind: EntityKind::Truck,
            index,
        }
    }

    /// The ledger key: `S00042` (fixed width, sorts numerically).
    pub fn key(&self) -> Bytes {
        Bytes::from(format!("{}{:05}", self.kind.prefix() as char, self.index))
    }

    /// Parse a ledger key produced by [`EntityId::key`].
    pub fn from_key(key: &[u8]) -> Option<Self> {
        if key.len() != 6 {
            return None;
        }
        let kind = EntityKind::from_prefix(key[0])?;
        let index: u32 = std::str::from_utf8(&key[1..]).ok()?.parse().ok()?;
        Some(EntityId { kind, index })
    }

    /// Key prefix selecting every entity of `kind` (for range scans).
    pub fn kind_prefix(kind: EntityKind) -> Bytes {
        Bytes::copy_from_slice(&[kind.prefix()])
    }
}

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{:05}", self.kind.prefix() as char, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        for id in [
            EntityId::shipment(0),
            EntityId::container(42),
            EntityId::truck(99_999),
        ] {
            assert_eq!(EntityId::from_key(&id.key()), Some(id));
        }
    }

    #[test]
    fn keys_sort_numerically() {
        let k9 = EntityId::shipment(9).key();
        let k10 = EntityId::shipment(10).key();
        assert!(k9 < k10);
    }

    #[test]
    fn kinds_partition_keyspace() {
        let c = EntityId::container(999).key();
        let s = EntityId::shipment(0).key();
        let t = EntityId::truck(0).key();
        assert!(c < s && s < t, "C* < S* < T*");
    }

    #[test]
    fn from_key_rejects_garbage() {
        assert_eq!(EntityId::from_key(b"X00001"), None);
        assert_eq!(EntityId::from_key(b"S1"), None);
        assert_eq!(EntityId::from_key(b"Sabcde"), None);
        assert_eq!(EntityId::from_key(b""), None);
    }

    #[test]
    fn display_matches_key() {
        let id = EntityId::container(7);
        assert_eq!(id.to_string().as_bytes(), &id.key()[..]);
    }
}
