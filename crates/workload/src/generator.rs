//! The synthetic event generator (paper §IV-2).
//!
//! Parameters: number of shipments / containers / trucks (`nS`, `nC`,
//! `nTr`), events per key (`nEv`), load-event distribution (`dEv` — uniform
//! or per-key zipf with `α ~ U(0,1)`), and the total time length `t_max`.
//!
//! Pairing rule: the paper draws load events from the distribution and picks
//! each unload "randomly at any point before the start of the next load
//! event". We implement the equivalent direct construction: draw `nEv`
//! times per key from the distribution, sort them, and take consecutive
//! pairs as (load, unload). The unload then always precedes the next load
//! and follows the same marginal law.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::entity::{EntityId, EntityKind};
use crate::event::{Event, EventKind};
use crate::zipf::ZipfTime;

/// Load-event time distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventDistribution {
    /// Uniform over `[1, t_max]`.
    Uniform,
    /// Per-key truncated power law with exponent drawn from `U(0,1)`.
    Zipf,
}

/// Generator parameters (paper Table-of-§IV naming in comments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// `nS` — number of shipments.
    pub shipments: u32,
    /// `nC` — number of containers.
    pub containers: u32,
    /// `nTr` — number of trucks.
    pub trucks: u32,
    /// `nEv` — events per key (must be even: load/unload pairs).
    pub events_per_key: u32,
    /// `dEv` — load-event distribution.
    pub distribution: EventDistribution,
    /// `t_max` — all events lie within `(0, t_max]`.
    pub t_max: u64,
    /// RNG seed (datasets are fully deterministic given the seed).
    pub seed: u64,
}

impl WorkloadParams {
    /// Total number of events this parameterisation produces.
    pub fn total_events(&self) -> u64 {
        u64::from(self.shipments + self.containers) * u64::from(self.events_per_key)
    }

    /// Number of ledger keys (shipments + containers).
    pub fn total_keys(&self) -> u32 {
        self.shipments + self.containers
    }
}

/// A generated dataset: all events, globally sorted by time.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// The parameters that produced this dataset.
    pub params: WorkloadParams,
    /// Events sorted by `(time, subject)`.
    pub events: Vec<Event>,
}

impl GeneratedWorkload {
    /// Generate the dataset for `params`.
    pub fn generate(params: WorkloadParams) -> Self {
        assert!(
            params.events_per_key.is_multiple_of(2),
            "events_per_key must be even (load/unload pairs)"
        );
        assert!(params.t_max >= 2, "t_max too small");
        assert!(params.shipments > 0 && params.containers > 0 && params.trucks > 0);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut events = Vec::with_capacity(params.total_events() as usize);
        // Shipments load into containers; containers load onto trucks.
        for s in 0..params.shipments {
            let subject = EntityId::shipment(s);
            Self::generate_key_events(
                &params,
                &mut rng,
                subject,
                EntityKind::Container,
                params.containers,
                &mut events,
            );
        }
        for c in 0..params.containers {
            let subject = EntityId::container(c);
            Self::generate_key_events(
                &params,
                &mut rng,
                subject,
                EntityKind::Truck,
                params.trucks,
                &mut events,
            );
        }
        events.sort_by_key(|e| (e.time, e.subject));
        GeneratedWorkload { params, events }
    }

    fn generate_key_events(
        params: &WorkloadParams,
        rng: &mut StdRng,
        subject: EntityId,
        target_kind: EntityKind,
        target_count: u32,
        out: &mut Vec<Event>,
    ) {
        let n = params.events_per_key as usize;
        let zipf = match params.distribution {
            EventDistribution::Uniform => None,
            EventDistribution::Zipf => {
                let alpha: f64 = rng.gen_range(0.0..1.0);
                Some(ZipfTime::new(alpha, params.t_max))
            }
        };
        let mut times: Vec<u64> = (0..n)
            .map(|_| match &zipf {
                Some(z) => z.sample(rng),
                None => rng.gen_range(1..=params.t_max),
            })
            .collect();
        times.sort_unstable();
        for pair in times.chunks_exact(2) {
            let target = EntityId {
                kind: target_kind,
                index: rng.gen_range(0..target_count),
            };
            out.push(Event {
                subject,
                target,
                time: pair[0],
                kind: EventKind::Load,
            });
            out.push(Event {
                subject,
                target,
                time: pair[1],
                kind: EventKind::Unload,
            });
        }
    }

    /// All ledger keys in this workload (shipments then containers).
    pub fn keys(&self) -> Vec<EntityId> {
        let mut keys =
            Vec::with_capacity((self.params.shipments + self.params.containers) as usize);
        keys.extend((0..self.params.shipments).map(EntityId::shipment));
        keys.extend((0..self.params.containers).map(EntityId::container));
        keys
    }

    /// Events of one subject, in time order.
    pub fn events_for(&self, subject: EntityId) -> Vec<Event> {
        let mut evs: Vec<Event> = self
            .events
            .iter()
            .filter(|e| e.subject == subject)
            .copied()
            .collect();
        evs.sort_by_key(|e| e.time);
        evs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_params(distribution: EventDistribution) -> WorkloadParams {
        WorkloadParams {
            shipments: 8,
            containers: 4,
            trucks: 2,
            events_per_key: 40,
            distribution,
            t_max: 10_000,
            seed: 42,
        }
    }

    #[test]
    fn event_counts_match_params() {
        let w = GeneratedWorkload::generate(small_params(EventDistribution::Uniform));
        assert_eq!(w.events.len() as u64, w.params.total_events());
        let mut per_key: HashMap<EntityId, usize> = HashMap::new();
        for e in &w.events {
            *per_key.entry(e.subject).or_default() += 1;
        }
        assert_eq!(per_key.len(), 12);
        assert!(per_key.values().all(|&n| n == 40));
    }

    #[test]
    fn events_globally_sorted_by_time() {
        let w = GeneratedWorkload::generate(small_params(EventDistribution::Uniform));
        assert!(w.events.windows(2).all(|p| p[0].time <= p[1].time));
    }

    #[test]
    fn per_key_loads_and_unloads_alternate() {
        let w = GeneratedWorkload::generate(small_params(EventDistribution::Uniform));
        for key in w.keys() {
            let evs = w.events_for(key);
            assert_eq!(evs.len(), 40);
            for (i, e) in evs.iter().enumerate() {
                let expected = if i % 2 == 0 {
                    EventKind::Load
                } else {
                    EventKind::Unload
                };
                // Ties in time can swap load/unload order after the stable
                // sort; verify the multiset structure instead when tied.
                if e.kind != expected {
                    assert_eq!(
                        evs[i - 1].time,
                        e.time,
                        "kind violation not explained by a time tie at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn unload_matches_load_target() {
        let w = GeneratedWorkload::generate(small_params(EventDistribution::Uniform));
        for key in w.keys() {
            let evs = w.events_for(key);
            // Pairs share a target: reconstruct pairs by order of generation
            // (load then unload with same target).
            let loads: Vec<_> = evs.iter().filter(|e| e.kind == EventKind::Load).collect();
            let unloads: Vec<_> = evs.iter().filter(|e| e.kind == EventKind::Unload).collect();
            assert_eq!(loads.len(), unloads.len());
        }
    }

    #[test]
    fn targets_have_correct_kind() {
        let w = GeneratedWorkload::generate(small_params(EventDistribution::Uniform));
        for e in &w.events {
            match e.subject.kind {
                EntityKind::Shipment => assert_eq!(e.target.kind, EntityKind::Container),
                EntityKind::Container => assert_eq!(e.target.kind, EntityKind::Truck),
                EntityKind::Truck => panic!("trucks are never subjects"),
            }
            assert!(e.time >= 1 && e.time <= w.params.t_max);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = GeneratedWorkload::generate(small_params(EventDistribution::Zipf));
        let b = GeneratedWorkload::generate(small_params(EventDistribution::Zipf));
        assert_eq!(a.events, b.events);
        let mut p = small_params(EventDistribution::Zipf);
        p.seed = 43;
        let c = GeneratedWorkload::generate(p);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn zipf_workload_skews_early() {
        let mut p = small_params(EventDistribution::Zipf);
        p.events_per_key = 400;
        let w = GeneratedWorkload::generate(p);
        let first_decile = w.events.iter().filter(|e| e.time <= p.t_max / 10).count() as f64
            / w.events.len() as f64;
        // Average over α∈U(0,1): substantially more than uniform's 10%.
        assert!(first_decile > 0.2, "first_decile={first_decile}");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_events_per_key_rejected() {
        let mut p = small_params(EventDistribution::Uniform);
        p.events_per_key = 3;
        GeneratedWorkload::generate(p);
    }
}
