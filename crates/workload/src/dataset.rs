//! The paper's dataset presets (§IV-2) and scaled variants.
//!
//! | Dataset | nS | nC | nTr | nEv | dEv | t_max | total events |
//! |---------|----|----|-----|-----|-----|-------|--------------|
//! | DS1 | 400 | 100 | 20 | 2000 | uniform | 150K | 1M |
//! | DS2 | 400 | 100 | 20 | 2000 | zipf    | 150K | 1M |
//! | DS3 | 15  | 5   | 2  | 2000 | uniform | 150K | 40K |
//!
//! The `*_scaled` constructors shrink entity and event counts while keeping
//! `t_max` proportions, for CI-friendly tests and criterion benches; the
//! harness binaries use the full presets.

use crate::generator::{EventDistribution, GeneratedWorkload, WorkloadParams};

/// Which paper dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// 1M events, uniform.
    Ds1,
    /// 1M events, zipf.
    Ds2,
    /// 40K events, uniform.
    Ds3,
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetId::Ds1 => f.write_str("DS1"),
            DatasetId::Ds2 => f.write_str("DS2"),
            DatasetId::Ds3 => f.write_str("DS3"),
        }
    }
}

/// Default seed used by all presets so that every run of the harness sees
/// the same data.
pub const DEFAULT_SEED: u64 = 0x1CDE_2018;

/// Parameters for a paper dataset at full scale.
pub fn params(id: DatasetId) -> WorkloadParams {
    match id {
        DatasetId::Ds1 => WorkloadParams {
            shipments: 400,
            containers: 100,
            trucks: 20,
            events_per_key: 2000,
            distribution: EventDistribution::Uniform,
            t_max: 150_000,
            seed: DEFAULT_SEED,
        },
        DatasetId::Ds2 => WorkloadParams {
            distribution: EventDistribution::Zipf,
            ..params(DatasetId::Ds1)
        },
        DatasetId::Ds3 => WorkloadParams {
            shipments: 15,
            containers: 5,
            trucks: 2,
            ..params(DatasetId::Ds1)
        },
    }
}

/// Parameters for a dataset scaled down by `factor` (entities and events
/// per key shrink by √factor each so total events shrink by ~`factor`;
/// `t_max` shrinks by √factor to keep event density comparable).
pub fn params_scaled(id: DatasetId, factor: u32) -> WorkloadParams {
    let base = params(id);
    let f = (factor as f64).sqrt();
    let scale = |v: u32| ((v as f64 / f).round() as u32).max(1);
    let mut p = WorkloadParams {
        shipments: scale(base.shipments),
        containers: scale(base.containers),
        trucks: scale(base.trucks),
        events_per_key: (scale(base.events_per_key) / 2).max(1) * 2,
        distribution: base.distribution,
        t_max: ((base.t_max as f64 / f) as u64).max(100),
        seed: base.seed,
    };
    // DS3 is already tiny; keep at least a handful of entities.
    p.shipments = p.shipments.max(3);
    p.containers = p.containers.max(2);
    p.trucks = p.trucks.max(1);
    p
}

/// Generate a full-scale paper dataset.
pub fn generate(id: DatasetId) -> GeneratedWorkload {
    GeneratedWorkload::generate(params(id))
}

/// Generate a scaled-down dataset (see [`params_scaled`]).
pub fn generate_scaled(id: DatasetId, factor: u32) -> GeneratedWorkload {
    GeneratedWorkload::generate(params_scaled(id, factor))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ds1_matches_paper() {
        let p = params(DatasetId::Ds1);
        assert_eq!(p.total_events(), 1_000_000);
        assert_eq!(p.total_keys(), 500);
        assert_eq!(p.t_max, 150_000);
    }

    #[test]
    fn ds2_differs_only_in_distribution() {
        let p1 = params(DatasetId::Ds1);
        let p2 = params(DatasetId::Ds2);
        assert_eq!(p2.distribution, EventDistribution::Zipf);
        assert_eq!(
            (
                p1.shipments,
                p1.containers,
                p1.trucks,
                p1.events_per_key,
                p1.t_max
            ),
            (
                p2.shipments,
                p2.containers,
                p2.trucks,
                p2.events_per_key,
                p2.t_max
            )
        );
    }

    #[test]
    fn ds3_matches_paper() {
        let p = params(DatasetId::Ds3);
        assert_eq!(p.total_events(), 40_000);
        assert_eq!(p.total_keys(), 20);
    }

    #[test]
    fn scaling_reduces_size() {
        let p = params_scaled(DatasetId::Ds1, 100);
        assert!(p.total_events() <= 12_000, "{}", p.total_events());
        assert!(p.shipments >= 3);
        // And actually generates.
        let w = GeneratedWorkload::generate(p);
        assert_eq!(w.events.len() as u64, p.total_events());
    }

    #[test]
    fn scale_factor_one_is_identity() {
        assert_eq!(params_scaled(DatasetId::Ds3, 1), params(DatasetId::Ds3));
    }
}
