//! Power-law ("zipf") time sampling.
//!
//! The paper's DS2 draws event times "zipf distributed" with "the zipf
//! parameter ... chosen randomly between 0 and 1" per key, and observes
//! that "more than half the events occur within interval (0-10K]". A
//! bounded Pareto / truncated power law over `[1, t_max]` with density
//! `f(x) ∝ x^{-α}` reproduces exactly that: for `α → 1`,
//! `P(x ≤ 10K) = ln(10K)/ln(150K) ≈ 0.77`.
//!
//! Sampling uses the closed-form inverse CDF, so it is O(1) per draw and
//! exact (no rejection loops).

use rand::Rng;

/// A truncated power-law sampler over `[1, max]` with exponent `alpha`.
#[derive(Debug, Clone, Copy)]
pub struct ZipfTime {
    alpha: f64,
    max: u64,
}

impl ZipfTime {
    /// Create a sampler. `alpha` must be in `[0, 1]` (the paper's range) and
    /// `max ≥ 1`.
    pub fn new(alpha: f64, max: u64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!(max >= 1, "max must be >= 1");
        ZipfTime { alpha, max }
    }

    /// Draw one time in `[1, max]`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let n = self.max as f64;
        let x = if (self.alpha - 1.0).abs() < 1e-9 {
            // f(x) ∝ 1/x  ⇒  F⁻¹(u) = n^u
            n.powf(u)
        } else {
            // f(x) ∝ x^{-α}  ⇒  F⁻¹(u) = (1 + u·(n^{1-α} − 1))^{1/(1-α)}
            let one_minus = 1.0 - self.alpha;
            (1.0 + u * (n.powf(one_minus) - 1.0)).powf(1.0 / one_minus)
        };
        (x as u64).clamp(1, self.max)
    }

    /// The exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fraction_below(alpha: f64, max: u64, cut: u64, n: usize) -> f64 {
        let z = ZipfTime::new(alpha, max);
        let mut rng = StdRng::seed_from_u64(7);
        let below = (0..n).filter(|_| z.sample(&mut rng) <= cut).count();
        below as f64 / n as f64
    }

    #[test]
    fn alpha_zero_is_uniform() {
        // With α=0 the law is uniform: ~6.7% of draws land in the first 10K
        // of 150K.
        let frac = fraction_below(0.0, 150_000, 10_000, 50_000);
        assert!((frac - 0.0667).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn alpha_near_one_concentrates_early() {
        // ln(10K)/ln(150K) ≈ 0.772 — "more than half the events" early,
        // matching the paper's DS2 description.
        let frac = fraction_below(1.0, 150_000, 10_000, 50_000);
        assert!(frac > 0.5, "frac={frac}");
        assert!((frac - 0.772).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn intermediate_alpha_is_monotone() {
        let f0 = fraction_below(0.0, 150_000, 10_000, 30_000);
        let f5 = fraction_below(0.5, 150_000, 10_000, 30_000);
        let f9 = fraction_below(0.95, 150_000, 10_000, 30_000);
        assert!(f0 < f5 && f5 < f9, "{f0} {f5} {f9}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfTime::new(0.7, 1000);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = z.sample(&mut rng);
            assert!((1..=1000).contains(&x));
        }
    }

    #[test]
    fn degenerate_max_one() {
        let z = ZipfTime::new(0.5, 1);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        ZipfTime::new(1.5, 100);
    }
}
