//! # fabric-workload
//!
//! The paper's synthetic supply-chain workload (§IV): shipments are loaded
//! into / unloaded from containers, containers onto/from trucks; every
//! load/unload is an event ingested on the ledger as a state of the
//! shipment's or container's key.
//!
//! * [`entity`] — typed entity ids and their ledger key encoding.
//! * [`event`] — load/unload events and the on-chain value codec.
//! * [`zipf`] — the truncated power-law time sampler behind DS2.
//! * [`generator`] — the parameterised event generator.
//! * [`dataset`] — the paper's DS1/DS2/DS3 presets plus scaled variants.
//! * [`ingest`](ingest/index.html) — SE and ME transaction batching and the ingestion driver.
//! * [`trace`] — CSV export/import of event traces for pinned benchmarks.
//!
//! ## Example
//!
//! ```
//! use fabric_workload::dataset::{generate_scaled, DatasetId};
//! use fabric_workload::ingest::{ingest, IdentityEncoder, IngestMode};
//! use fabric_ledger::{Ledger, LedgerConfig};
//!
//! let dir = std::env::temp_dir().join(format!("wl-doc-{}", std::process::id()));
//! let ledger = Ledger::open(&dir, LedgerConfig::default())?;
//! let workload = generate_scaled(DatasetId::Ds3, 100);
//! let report = ingest(&ledger, &workload.events, IngestMode::MultiEvent, &IdentityEncoder)?;
//! assert_eq!(report.events as usize, workload.events.len());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), fabric_ledger::Error>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dataset;
pub mod entity;
pub mod event;
pub mod generator;
pub mod ingest;
pub mod trace;
pub mod zipf;

pub use dataset::DatasetId;
pub use entity::{EntityId, EntityKind};
pub use event::{Event, EventKind};
pub use generator::{EventDistribution, GeneratedWorkload, WorkloadParams};
pub use ingest::{ingest, ingest_sharded, EventEncoder, IdentityEncoder, IngestMode, IngestReport};
