//! Ingestion strategies: SE (single event per transaction) and ME
//! (multiple events per transaction), per paper §IV-2.
//!
//! ME batching rule, verbatim from the paper: events are taken in time
//! order and each batch is "a maximal set of consecutive events s.t. in
//! this set no two events share the same key" — because one Fabric
//! transaction persists only one state per key.
//!
//! The driver is parameterised by an [`EventEncoder`] so the same pipeline
//! ingests base data (identity encoding) and Model-M2 data (interval-tagged
//! keys, provided by `temporal-core`).

use std::collections::HashSet;
use std::time::Instant;

use bytes::Bytes;

use fabric_ledger::sharded::SHARD_COMMIT_SPAN;
use fabric_ledger::{Error, Ledger, Result, ShardedLedger, TxSimulator};

use crate::event::Event;

/// How events map to transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// One event per transaction (paper's SE).
    SingleEvent,
    /// Maximal distinct-key batches per transaction (paper's ME).
    MultiEvent,
}

impl std::fmt::Display for IngestMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestMode::SingleEvent => f.write_str("SE"),
            IngestMode::MultiEvent => f.write_str("ME"),
        }
    }
}

/// Maps an event to the `(key, value)` pair actually written on-chain.
pub trait EventEncoder {
    /// The ledger key and value for `event`.
    fn encode(&self, event: &Event) -> (Bytes, Bytes);
}

/// Writes events under their subject's key, untransformed (TQF / M1 base
/// data).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityEncoder;

impl EventEncoder for IdentityEncoder {
    fn encode(&self, event: &Event) -> (Bytes, Bytes) {
        (event.key(), event.encode_value())
    }
}

/// Outcome of an ingestion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Events written.
    pub events: u64,
    /// Transactions submitted.
    pub txs: u64,
    /// Blocks committed (including the final forced cut).
    pub blocks: u64,
    /// Wall-clock duration of the run.
    pub wall: std::time::Duration,
}

/// Ingest `events` (already in time order) into `ledger`.
///
/// The final partial block is force-cut so all events are committed on
/// return.
pub fn ingest(
    ledger: &Ledger,
    events: &[Event],
    mode: IngestMode,
    encoder: &dyn EventEncoder,
) -> Result<IngestReport> {
    let start = Instant::now();
    let blocks_before = ledger.stats().blocks_committed;
    let mut txs = 0u64;
    match mode {
        IngestMode::SingleEvent => {
            for ev in events {
                let (key, value) = encoder.encode(ev);
                let mut sim = TxSimulator::new(ledger);
                sim.put_state(key, value);
                ledger.submit(sim.into_transaction(ev.time)?)?;
                txs += 1;
            }
        }
        IngestMode::MultiEvent => {
            let mut batch_keys: HashSet<Bytes> = HashSet::new();
            let mut sim = TxSimulator::new(ledger);
            let mut batch_last_time = 0u64;
            let mut batch_len = 0usize;
            for ev in events {
                let subject_key = ev.key();
                if batch_keys.contains(&subject_key) {
                    // Maximal run ended: seal the batch as one transaction.
                    let tx = std::mem::replace(&mut sim, TxSimulator::new(ledger))
                        .into_transaction(batch_last_time)?;
                    ledger.submit(tx)?;
                    txs += 1;
                    batch_keys.clear();
                    batch_len = 0;
                }
                let (key, value) = encoder.encode(ev);
                sim.put_state(key, value);
                batch_keys.insert(subject_key);
                batch_last_time = ev.time;
                batch_len += 1;
            }
            if batch_len > 0 {
                ledger.submit(sim.into_transaction(batch_last_time)?)?;
                txs += 1;
            }
        }
    }
    ledger.cut_block()?;
    // On the pipelined commit path blocks may still be in flight; wait
    // until everything is durable so `wall` measures the full cost.
    ledger.drain_commits()?;
    let blocks = ledger.stats().blocks_committed - blocks_before;
    Ok(IngestReport {
        events: events.len() as u64,
        txs,
        blocks,
        wall: start.elapsed(),
    })
}

/// Ingest `events` (in time order) into a [`ShardedLedger`]: the stream
/// is split by routed on-chain key and each shard ingests its slice
/// concurrently on a scoped thread (wrapped in a `shard.commit` span, so
/// traces show one lane per shard).
///
/// Within a shard, events keep their global time order, and every
/// entity's events land wholly on its owning shard — so per-key history
/// is identical to a single-shard ingest of the same stream. ME batching
/// applies *per shard*: batch boundaries differ from the single-ledger
/// run (each shard sees only its own key subset), but the set of
/// committed events is the same.
///
/// The returned report sums `events`/`txs`/`blocks` across shards; its
/// `wall` is the whole fan-out's duration (the slowest shard).
pub fn ingest_sharded(
    ledger: &ShardedLedger,
    events: &[Event],
    mode: IngestMode,
    encoder: &(dyn EventEncoder + Sync),
) -> Result<IngestReport> {
    let start = Instant::now();
    let n = ledger.shard_count();
    let mut per_shard: Vec<Vec<Event>> = vec![Vec::new(); n];
    for ev in events {
        let (key, _) = encoder.encode(ev);
        per_shard[ledger.shard_index_for_key(&key)].push(*ev);
    }
    let ctx = ledger.telemetry().current_context();
    let results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (i, slice) in per_shard.iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let shard = ledger.shard(i);
            let tel = ledger.telemetry();
            handles.push(scope.spawn(move || -> Result<IngestReport> {
                let _s = tel
                    .span_in(SHARD_COMMIT_SPAN, ctx)
                    .with_label(format!("shard {i}"));
                ingest(shard, slice, mode, encoder)
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(Error::Io {
                    context: "shard.commit".to_string(),
                    source: std::io::Error::other("shard ingest worker panicked"),
                }),
            })
            .collect::<Vec<_>>()
    });
    let mut txs = 0u64;
    let mut blocks = 0u64;
    for r in results {
        let r = r?;
        txs += r.txs;
        blocks += r.blocks;
    }
    Ok(IngestReport {
        events: events.len() as u64,
        txs,
        blocks,
        wall: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_scaled, DatasetId};
    use crate::entity::EntityId;
    use crate::event::EventKind;
    use fabric_ledger::LedgerConfig;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "ingest-test-{}-{tag}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn events() -> Vec<Event> {
        // s0, s1, s0 again (forces ME batch break), s2
        let s = EntityId::shipment;
        let c = EntityId::container;
        vec![
            Event {
                subject: s(0),
                target: c(0),
                time: 10,
                kind: EventKind::Load,
            },
            Event {
                subject: s(1),
                target: c(0),
                time: 20,
                kind: EventKind::Load,
            },
            Event {
                subject: s(0),
                target: c(0),
                time: 30,
                kind: EventKind::Unload,
            },
            Event {
                subject: s(2),
                target: c(1),
                time: 40,
                kind: EventKind::Load,
            },
        ]
    }

    #[test]
    fn se_makes_one_tx_per_event() {
        let dir = TempDir::new("se");
        let ledger = Ledger::open(&dir.0, LedgerConfig::small_for_tests()).unwrap();
        let report = ingest(
            &ledger,
            &events(),
            IngestMode::SingleEvent,
            &IdentityEncoder,
        )
        .unwrap();
        assert_eq!(report.events, 4);
        assert_eq!(report.txs, 4);
        assert!(report.blocks >= 1);
        // Every event visible in history.
        let h = ledger
            .get_history_for_key(&EntityId::shipment(0).key())
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn me_batches_break_on_repeated_key() {
        let dir = TempDir::new("me");
        let ledger = Ledger::open(&dir.0, LedgerConfig::small_for_tests()).unwrap();
        let report = ingest(&ledger, &events(), IngestMode::MultiEvent, &IdentityEncoder).unwrap();
        // Batch 1 = {s0,s1} (breaks at second s0), batch 2 = {s0,s2}.
        assert_eq!(report.txs, 2);
        assert_eq!(report.events, 4);
        // No event lost.
        for (key, expect) in [
            (EntityId::shipment(0), 2usize),
            (EntityId::shipment(1), 1),
            (EntityId::shipment(2), 1),
        ] {
            let h = ledger
                .get_history_for_key(&key.key())
                .unwrap()
                .collect_all()
                .unwrap();
            assert_eq!(h.len(), expect, "history of {key}");
        }
    }

    #[test]
    fn me_ingests_whole_scaled_dataset_without_loss() {
        let dir = TempDir::new("me-ds");
        let ledger = Ledger::open(&dir.0, LedgerConfig::default()).unwrap();
        let w = generate_scaled(DatasetId::Ds3, 50);
        let report = ingest(&ledger, &w.events, IngestMode::MultiEvent, &IdentityEncoder).unwrap();
        assert_eq!(report.events as usize, w.events.len());
        assert!(report.txs < report.events, "ME must batch");
        let mut total = 0usize;
        for key in w.keys() {
            total += ledger
                .get_history_for_key(&key.key())
                .unwrap()
                .collect_all()
                .unwrap()
                .len();
        }
        assert_eq!(total, w.events.len());
    }

    /// Read every blockfile's raw bytes, sorted by file name.
    fn blockfile_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir.join("blocks")).unwrap() {
            let entry = entry.unwrap();
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("blockfile_") {
                out.push((name, std::fs::read(entry.path()).unwrap()));
            }
        }
        out.sort();
        out
    }

    /// The tentpole acceptance test: pipelined ingest must leave the
    /// ledger byte-identical to serial ingest — blockfile bytes, chain
    /// tip, state-db contents and deterministic IoStats counters.
    fn assert_ingest_equivalence(mode: IngestMode, tag: &str) {
        let dir_serial = TempDir::new(&format!("eq-serial-{tag}"));
        let dir_pipe = TempDir::new(&format!("eq-pipe-{tag}"));
        let serial = Ledger::open(&dir_serial.0, LedgerConfig::small_for_tests()).unwrap();
        let pipelined = Ledger::open(
            &dir_pipe.0,
            LedgerConfig::small_for_tests().with_pipeline(true),
        )
        .unwrap();
        let w = generate_scaled(DatasetId::Ds3, 40);
        let r_serial = ingest(&serial, &w.events, mode, &IdentityEncoder).unwrap();
        let r_pipe = ingest(&pipelined, &w.events, mode, &IdentityEncoder).unwrap();
        assert_eq!(r_serial.events, r_pipe.events);
        assert_eq!(r_serial.txs, r_pipe.txs);
        assert_eq!(r_serial.blocks, r_pipe.blocks);
        assert_eq!(serial.height(), pipelined.height());
        assert_eq!(serial.last_hash(), pipelined.last_hash());
        assert_eq!(
            blockfile_bytes(&dir_serial.0),
            blockfile_bytes(&dir_pipe.0),
            "{mode}: blockfiles must be byte-identical"
        );
        assert_eq!(
            serial.get_state_by_range(None, None).unwrap(),
            pipelined.get_state_by_range(None, None).unwrap(),
            "{mode}: state dbs must hold identical contents"
        );
        let (s, p) = (serial.stats(), pipelined.stats());
        assert_eq!(s.blocks_written, p.blocks_written);
        assert_eq!(s.block_bytes_written, p.block_bytes_written);
        assert_eq!(s.txs_committed, p.txs_committed);
        assert_eq!(s.blocks_committed, p.blocks_committed);
    }

    #[test]
    fn pipelined_se_ingest_is_byte_identical_to_serial() {
        assert_ingest_equivalence(IngestMode::SingleEvent, "se");
    }

    #[test]
    fn pipelined_me_ingest_is_byte_identical_to_serial() {
        assert_ingest_equivalence(IngestMode::MultiEvent, "me");
    }

    /// Satellite: `IngestReport` invariants — `blocks` equals the ledger
    /// height delta and `txs` equals the sum of per-block tx counts,
    /// including the forced final cut of a partial batch.
    fn assert_report_invariants(mode: IngestMode, pipeline: bool, tag: &str) {
        let dir = TempDir::new(tag);
        let config = LedgerConfig::small_for_tests().with_pipeline(pipeline);
        let ledger = Ledger::open(&dir.0, config).unwrap();
        let height_before = ledger.height();
        // 10 events over 3-tx blocks: SE ends in a forced partial cut.
        let w = generate_scaled(DatasetId::Ds3, 10);
        let report = ingest(&ledger, &w.events, mode, &IdentityEncoder).unwrap();
        assert_eq!(report.events as usize, w.events.len());
        assert_eq!(
            report.blocks,
            ledger.height() - height_before,
            "{mode}: blocks must equal the height delta"
        );
        let mut txs_in_blocks = 0u64;
        let mut events_in_blocks = 0u64;
        for num in height_before..ledger.height() {
            let block = ledger.get_block(num).unwrap();
            txs_in_blocks += block.txs.len() as u64;
            events_in_blocks += block.txs.iter().map(|t| t.writes.len() as u64).sum::<u64>();
        }
        assert_eq!(
            report.txs, txs_in_blocks,
            "{mode}: txs must match block contents"
        );
        assert_eq!(
            report.events, events_in_blocks,
            "{mode}: every event is exactly one write"
        );
        // The final cut really was partial: the last block is under-full.
        let last = ledger.get_block(ledger.height() - 1).unwrap();
        assert!(last.txs.len() <= 3);
    }

    #[test]
    fn report_invariants_hold_for_se() {
        assert_report_invariants(IngestMode::SingleEvent, false, "inv-se");
    }

    #[test]
    fn report_invariants_hold_for_me() {
        assert_report_invariants(IngestMode::MultiEvent, false, "inv-me");
    }

    #[test]
    fn report_invariants_hold_for_pipelined_se() {
        assert_report_invariants(IngestMode::SingleEvent, true, "inv-se-pipe");
    }

    /// Satellite: a 1-shard [`ShardedLedger`] ingest is byte-identical to
    /// a plain [`Ledger`] fed the same stream — the router is a no-op and
    /// the single shard sees the exact same batches.
    #[test]
    fn one_shard_sharded_ingest_matches_plain_ledger() {
        use fabric_ledger::ShardedLedger;
        let w = generate_scaled(DatasetId::Ds3, 40);
        let plain_dir = TempDir::new("shard1-plain");
        let sharded_dir = TempDir::new("shard1-sharded");
        let config = LedgerConfig::small_for_tests();
        let plain = Ledger::open(&plain_dir.0, config.clone()).unwrap();
        let plain_report = ingest(&plain, &w.events, IngestMode::MultiEvent, &IdentityEncoder);
        let plain_report = plain_report.unwrap();
        plain.flush_stores().unwrap();
        let sharded = ShardedLedger::open(&sharded_dir.0, config, 1).unwrap();
        let report = ingest_sharded(
            &sharded,
            &w.events,
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        sharded.flush_stores().unwrap();
        assert_eq!(report.events, plain_report.events);
        assert_eq!(report.txs, plain_report.txs);
        assert_eq!(report.blocks, plain_report.blocks);
        assert_eq!(
            blockfile_bytes(&plain_dir.0),
            blockfile_bytes(&sharded_dir.0.join("shard-00")),
            "1-shard blockfiles must be byte-identical to the plain ledger"
        );
    }

    /// Satellite: a 4-shard ingest loses no events — every entity's
    /// history is complete on its owning shard and the report totals add
    /// up across shards.
    #[test]
    fn four_shard_ingest_preserves_per_key_histories() {
        use fabric_ledger::ShardedLedger;
        // Factor 4 keeps ~7 shipments — enough distinct entity ordinals
        // to cover all four shards.
        let w = generate_scaled(DatasetId::Ds3, 4);
        let plain_dir = TempDir::new("shard4-plain");
        let sharded_dir = TempDir::new("shard4-sharded");
        let config = LedgerConfig::small_for_tests();
        let plain = Ledger::open(&plain_dir.0, config.clone()).unwrap();
        ingest(&plain, &w.events, IngestMode::MultiEvent, &IdentityEncoder).unwrap();
        let sharded = ShardedLedger::open(&sharded_dir.0, config, 4).unwrap();
        let report = ingest_sharded(
            &sharded,
            &w.events,
            IngestMode::MultiEvent,
            &IdentityEncoder,
        )
        .unwrap();
        assert_eq!(report.events as usize, w.events.len());
        assert_eq!(report.blocks, sharded.height());
        assert_eq!(sharded.stats().events_committed, report.events);
        // At this scale the workload spreads across all four shards.
        assert!(
            sharded.heights().iter().all(|&h| h > 0),
            "expected every shard to commit blocks: {:?}",
            sharded.heights()
        );
        // Per-key histories match the single-ledger run exactly.
        let mut keys: Vec<_> = w.events.iter().map(|e| e.subject.key().to_vec()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let want = plain
                .get_history_for_key(&key)
                .unwrap()
                .collect_all()
                .unwrap();
            let got = sharded
                .get_history_for_key(&key)
                .unwrap()
                .collect_all()
                .unwrap();
            assert_eq!(
                want.len(),
                got.len(),
                "history length for {:?}",
                String::from_utf8_lossy(&key)
            );
            // ME batch boundaries (and so tx timestamps) differ per
            // shard; the committed event sequence — the values — must
            // not.
            for (a, b) in want.iter().zip(got.iter()) {
                assert_eq!(a.value, b.value);
            }
        }
    }

    #[test]
    fn event_timestamps_preserved_in_history_values() {
        let dir = TempDir::new("stamps");
        let ledger = Ledger::open(&dir.0, LedgerConfig::small_for_tests()).unwrap();
        ingest(
            &ledger,
            &events(),
            IngestMode::SingleEvent,
            &IdentityEncoder,
        )
        .unwrap();
        let h = ledger
            .get_history_for_key(&EntityId::shipment(0).key())
            .unwrap()
            .collect_all()
            .unwrap();
        let decoded: Vec<Event> = h
            .iter()
            .map(|s| Event::decode_value(EntityId::shipment(0), s.value.as_ref().unwrap()).unwrap())
            .collect();
        assert_eq!(decoded[0].time, 10);
        assert_eq!(decoded[1].time, 30);
        assert_eq!(decoded[1].kind, EventKind::Unload);
    }
}
