//! Property-based tests for the ledger's wire formats and commit pipeline.

use bytes::Bytes;
use proptest::prelude::*;

use fabric_ledger::hash::{sha256, Sha256};
use fabric_ledger::{
    Block, KvRead, KvWrite, Ledger, LedgerConfig, Transaction, ValidationCode, Version,
};

fn key_strategy() -> impl Strategy<Value = Bytes> {
    // Valid ledger keys: non-empty, no NUL byte.
    prop::collection::vec(1u8..=255, 1..16).prop_map(Bytes::from)
}

fn write_strategy() -> impl Strategy<Value = KvWrite> {
    (
        key_strategy(),
        prop::option::of(prop::collection::vec(any::<u8>(), 0..32)),
    )
        .prop_map(|(key, value)| KvWrite {
            key,
            value: value.map(Bytes::from),
        })
}

fn read_strategy() -> impl Strategy<Value = KvRead> {
    (
        key_strategy(),
        prop::option::of((any::<u64>(), any::<u32>())),
    )
        .prop_map(|(key, v)| KvRead {
            key,
            version: v.map(|(block_num, tx_num)| Version { block_num, tx_num }),
        })
}

fn tx_strategy() -> impl Strategy<Value = Transaction> {
    (
        any::<u64>(),
        prop::collection::vec(read_strategy(), 0..4),
        prop::collection::vec(write_strategy(), 0..6),
    )
        .prop_map(|(ts, reads, writes)| Transaction::new(ts, reads, writes).unwrap())
}

proptest! {
    #[test]
    fn transaction_roundtrip(tx in tx_strategy()) {
        let decoded = Transaction::decode(&tx.encode()).unwrap();
        prop_assert_eq!(&tx, &decoded);
        let trusted = Transaction::decode_trusted(&tx.encode()).unwrap();
        prop_assert_eq!(tx, trusted);
    }

    #[test]
    fn transaction_writes_have_unique_keys(tx in tx_strategy()) {
        let mut keys: Vec<&[u8]> = tx.writes.iter().map(|w| &w.key[..]).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(before, keys.len(), "duplicate key survived dedup");
    }

    #[test]
    fn single_bit_flip_never_decodes_as_same_tx(tx in tx_strategy(), byte in any::<usize>(), bit in 0u8..8) {
        let mut enc = tx.encode();
        let idx = byte % enc.len();
        enc[idx] ^= 1 << bit;
        match Transaction::decode(&enc) {
            // Either the flip is detected...
            Err(_) => {}
            // ...or (flip in the stored id region making it still match?
            // impossible — id is the hash) decode may only succeed if the
            // payload re-hashes to the stored id, which a 1-bit flip
            // cannot achieve.
            Ok(decoded) => prop_assert_eq!(decoded, tx),
        }
    }

    #[test]
    fn block_roundtrip(txs in prop::collection::vec(tx_strategy(), 0..6), number in any::<u64>()) {
        let validation = vec![ValidationCode::Valid; txs.len()];
        let block = Block::new(number, sha256(b"prev"), txs, validation).unwrap();
        let decoded = Block::decode(&block.encode()).unwrap();
        prop_assert_eq!(&block, &decoded);
        let trusted = Block::decode_trusted(&block.encode()).unwrap();
        prop_assert_eq!(block, trusted);
    }

    #[test]
    fn sha256_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..2048), split in any::<usize>()) {
        let oneshot = sha256(&data);
        let cut = if data.is_empty() { 0 } else { split % data.len() };
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn committed_state_reflects_last_write(
        writes in prop::collection::vec((key_strategy(), prop::collection::vec(any::<u8>(), 0..16)), 1..25),
        seed in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "ledger-prop-{}-{seed}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ledger = Ledger::open(&dir, LedgerConfig::small_for_tests()).unwrap();
        let mut model: std::collections::HashMap<Bytes, Bytes> = Default::default();
        for (i, (key, value)) in writes.iter().enumerate() {
            let value = Bytes::from(value.clone());
            let tx = Transaction::new(
                i as u64,
                vec![],
                vec![KvWrite { key: key.clone(), value: Some(value.clone()) }],
            )
            .unwrap();
            ledger.submit(tx).unwrap();
            model.insert(key.clone(), value);
        }
        ledger.cut_block().unwrap();
        for (key, value) in &model {
            let got = ledger.get_state(key).unwrap().unwrap();
            prop_assert_eq!(&got.value, value);
        }
        // History length per key equals the number of writes to it.
        for key in model.keys() {
            let n_writes = writes.iter().filter(|(k, _)| k == key).count();
            let history = ledger.get_history_for_key(key).unwrap().collect_all().unwrap();
            prop_assert_eq!(history.len(), n_writes);
        }
        ledger.verify_chain().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
