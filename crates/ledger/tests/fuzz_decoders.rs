//! Decoder robustness: every wire-format decoder must reject arbitrary
//! bytes with an error — never panic, never loop, never allocate absurdly.
//! (The block read path feeds decoders straight from disk; a corrupt or
//! hostile file must surface as `Error::Corruption`, not a crash.)

use proptest::prelude::*;

use fabric_ledger::blockfile::BlockLocation;
use fabric_ledger::codec::Cursor;
use fabric_ledger::{Block, Transaction};

proptest! {
    #![proptest_config(ProptestConfig { cases: 512 })]

    #[test]
    fn transaction_decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Transaction::decode(&data);
        let _ = Transaction::decode_trusted(&data);
    }

    #[test]
    fn block_decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Block::decode(&data);
        let _ = Block::decode_trusted(&data);
    }

    #[test]
    fn block_location_decode_never_panics(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = BlockLocation::decode(&data);
    }

    #[test]
    fn cursor_primitives_never_panic(data in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut c = Cursor::new(&data, "fuzz");
        let _ = c.get_uvarint();
        let _ = c.get_bytes();
        let _ = c.get_u64();
        let _ = c.get_u32();
        let _ = c.get_raw(7);
        let _ = c.expect_end();
    }

    #[test]
    fn mutated_valid_block_never_panics(
        flips in prop::collection::vec((any::<usize>(), 0u8..8), 1..8),
    ) {
        // Start from a VALID encoded block, then flip random bits: decode
        // must either fail cleanly or produce a block (when the flip hits
        // redundant bytes under trusted decode).
        use bytes::Bytes;
        use fabric_ledger::{Digest, KvWrite, ValidationCode};
        let tx = Transaction::new(
            7,
            vec![],
            vec![KvWrite {
                key: Bytes::from_static(b"some-key"),
                value: Some(Bytes::from_static(b"some-value")),
            }],
        )
        .unwrap();
        let block = Block::new(3, Digest::ZERO, vec![tx], vec![ValidationCode::Valid]).unwrap();
        let mut enc = block.encode();
        for (pos, bit) in flips {
            let n = enc.len();
            enc[pos % n] ^= 1 << bit;
        }
        let _ = Block::decode(&enc);
        let _ = Block::decode_trusted(&enc);
    }
}

#[test]
fn evset_and_batch_decoders_never_panic() {
    // Smaller hand-rolled fuzz for the remaining decoders (keeps this file
    // self-contained without cross-crate proptest wiring).
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for _ in 0..2000 {
        let len = rng.gen_range(0..200);
        let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let _ = fabric_kvstore::WriteBatch::decode(&data);
    }
}
