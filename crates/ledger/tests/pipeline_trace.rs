//! Trace-context propagation under the pipelined commit path.
//!
//! The commit pipeline hands blocks from the submitting thread (stage A)
//! to the append worker and onward to the index and state-db workers over
//! bounded channels. Each hand-off item carries the submitter's
//! [`SpanContext`], so every worker-side span must parent under the
//! `ledger.commit` span that submitted its block: `build_tree` over the
//! flight recorder must yield rooted trees with **no orphaned worker
//! spans**, even though four thread lanes record concurrently.

use bytes::Bytes;
use fabric_ledger::{KvWrite, Ledger, LedgerConfig, Transaction};
use fabric_telemetry::{build_tree, SpanNode};

struct TempDir(std::path::PathBuf);
impl TempDir {
    fn new() -> Self {
        let p = std::env::temp_dir().join(format!(
            "tf-pipeline-trace-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Collect every span name in a subtree.
fn names(node: &SpanNode, out: &mut Vec<&'static str>) {
    out.push(node.record.name);
    for child in &node.children {
        names(child, out);
    }
}

#[test]
fn pipelined_commit_yields_single_rooted_span_trees() {
    const BLOCKS: u64 = 12;
    let dir = TempDir::new();
    let config = LedgerConfig {
        pipeline: true,
        ..LedgerConfig::default()
    };
    let ledger = Ledger::open(&dir.0, config).unwrap();
    let tel = ledger.telemetry().clone();
    tel.enable();
    // Keep every span of the run: BLOCKS commits × ~6 spans each is far
    // below this, so nothing is evicted mid-assertion.
    tel.flight().set_capacity(8192, 1024);
    let _ = tel.drain_spans();

    for b in 0..BLOCKS {
        for i in 0..4u64 {
            let tx = Transaction::new(
                b * 10 + i,
                vec![],
                vec![KvWrite {
                    key: Bytes::from(format!("k{i:02}")),
                    value: Some(Bytes::from(vec![b as u8; 8])),
                }],
            )
            .unwrap();
            ledger.submit(tx).unwrap();
        }
        ledger.cut_block().unwrap();
    }
    ledger.drain_commits().unwrap();

    let records = tel.flight().recent();
    let worker_stages = ["commit.append", "commit.index", "commit.statedb"];
    for stage in worker_stages {
        assert!(
            records.iter().any(|r| r.name == stage),
            "pipelined run recorded no {stage} span"
        );
    }

    // Worker spans must carry the trace id of a `ledger.commit` root —
    // the follows-from token crossed the channel intact.
    let commit_traces: std::collections::HashSet<u64> = records
        .iter()
        .filter(|r| r.name == "ledger.commit")
        .map(|r| r.trace)
        .collect();
    assert_eq!(commit_traces.len(), BLOCKS as usize);
    for r in records.iter().filter(|r| worker_stages.contains(&r.name)) {
        assert!(
            commit_traces.contains(&r.trace),
            "{} span has trace {} not owned by any ledger.commit root",
            r.name,
            r.trace
        );
    }

    // build_tree: every worker span hangs off a ledger.commit root; none
    // floats up as its own root (which is what a dropped parent link —
    // an orphan — would look like).
    let tree = build_tree(records);
    for root in &tree {
        assert!(
            !worker_stages.contains(&root.record.name),
            "orphaned worker span surfaced as a root: {}",
            root.record.name
        );
    }
    let commit_roots: Vec<&SpanNode> = tree
        .iter()
        .filter(|n| n.record.name == "ledger.commit")
        .collect();
    assert_eq!(commit_roots.len(), BLOCKS as usize, "one tree per commit");
    // Every pipeline stage appears under some commit root. (Index/state
    // workers batch-drain, so one worker span may serve several commits —
    // parented under the first batched item's submitter.)
    let mut all_stage_names = Vec::new();
    for root in &commit_roots {
        names(root, &mut all_stage_names);
    }
    for stage in worker_stages {
        assert!(
            all_stage_names.contains(&stage),
            "{stage} never parented under a ledger.commit root"
        );
    }
}
