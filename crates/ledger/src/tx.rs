//! Transactions and read/write sets.
//!
//! A transaction carries the read set (keys + the versions observed during
//! simulation, used for MVCC validation at commit) and the write set (the
//! key-value pairs to apply). Exactly as on Hyperledger Fabric, **a
//! transaction persists at most one state per key**: if a simulation writes
//! the same key twice, only the final write survives into the write set.

use bytes::Bytes;

use crate::codec::{put_bytes, put_u32, put_u64, put_uvarint, Cursor};
use crate::error::{Error, Result};
use crate::hash::{sha256, Digest};

/// Logical timestamp. The workloads in this workspace use the paper's
/// dimensionless event clock (0..=150K); nothing in the engine assumes a
/// unit.
pub type Timestamp = u64;

/// Block sequence number (genesis = 0).
pub type BlockNum = u64;

/// Position of a transaction within its block.
pub type TxNum = u32;

/// A committed key version: which block/transaction last wrote it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// Block that committed the write.
    pub block_num: BlockNum,
    /// Transaction index within that block.
    pub tx_num: TxNum,
}

/// Transaction identifier: the SHA-256 of the transaction payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub Digest);

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0.short())
    }
}

/// One entry of a transaction's write set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvWrite {
    /// Key being written. Keys must not contain the `0x00` byte (reserved
    /// as the separator in index composite keys).
    pub key: Bytes,
    /// New value; `None` deletes the key from the state database.
    pub value: Option<Bytes>,
}

/// One entry of a transaction's read set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvRead {
    /// Key that was read during simulation.
    pub key: Bytes,
    /// Version observed; `None` when the key did not exist.
    pub version: Option<Version>,
}

/// Commit-time validation outcome, recorded in block metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationCode {
    /// Transaction was applied to the state database.
    Valid,
    /// A read-set version no longer matched at commit time; the transaction
    /// is in the block but its writes were discarded.
    MvccConflict,
}

impl ValidationCode {
    /// Single-byte wire encoding.
    pub fn to_byte(self) -> u8 {
        match self {
            ValidationCode::Valid => 0,
            ValidationCode::MvccConflict => 1,
        }
    }

    /// Inverse of [`ValidationCode::to_byte`].
    pub fn from_byte(b: u8) -> Result<Self> {
        match b {
            0 => Ok(ValidationCode::Valid),
            1 => Ok(ValidationCode::MvccConflict),
            other => Err(Error::InvalidArgument(format!(
                "unknown validation code {other}"
            ))),
        }
    }
}

/// A transaction as submitted to the orderer and stored in a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Content-derived identifier.
    pub id: TxId,
    /// Logical commit timestamp assigned by the submitting client.
    pub timestamp: Timestamp,
    /// Keys read during simulation with their observed versions.
    pub reads: Vec<KvRead>,
    /// Key-value pairs to apply (at most one entry per key).
    pub writes: Vec<KvWrite>,
}

impl Transaction {
    /// Assemble a transaction, deduplicating writes (last write per key
    /// wins — the Fabric rule) and deriving the content id.
    pub fn new(timestamp: Timestamp, reads: Vec<KvRead>, writes: Vec<KvWrite>) -> Result<Self> {
        for w in &writes {
            if w.key.contains(&0u8) {
                return Err(Error::InvalidArgument(format!(
                    "key contains reserved 0x00 byte: {:?}",
                    String::from_utf8_lossy(&w.key)
                )));
            }
            if w.key.is_empty() {
                return Err(Error::InvalidArgument("empty key".into()));
            }
        }
        let writes = dedup_last_write_wins(writes);
        let mut tx = Transaction {
            id: TxId(Digest::ZERO),
            timestamp,
            reads,
            writes,
        };
        tx.id = TxId(sha256(&tx.encode_payload()));
        Ok(tx)
    }

    /// Encode the payload (everything except the id, which is derived).
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.writes.len() * 32);
        put_u64(&mut out, self.timestamp);
        put_uvarint(&mut out, self.reads.len() as u64);
        for r in &self.reads {
            put_bytes(&mut out, &r.key);
            match r.version {
                Some(v) => {
                    out.push(1);
                    put_u64(&mut out, v.block_num);
                    put_u32(&mut out, v.tx_num);
                }
                None => out.push(0),
            }
        }
        put_uvarint(&mut out, self.writes.len() as u64);
        for w in &self.writes {
            put_bytes(&mut out, &w.key);
            match &w.value {
                Some(v) => {
                    out.push(1);
                    put_bytes(&mut out, v);
                }
                None => out.push(0),
            }
        }
        out
    }

    /// Full wire encoding (id + payload).
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(32 + payload.len());
        out.extend_from_slice(&self.id.0 .0);
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a transaction and verify its content id.
    pub fn decode(data: &[u8]) -> Result<Self> {
        Self::decode_impl(data, true)
    }

    /// Decode without re-hashing the payload to check the stored id.
    ///
    /// Used on the block read path, where the enclosing block frame's CRC
    /// already guarantees integrity; re-verifying every transaction id
    /// would double the cost of the hot operation the whole evaluation
    /// counts (block deserialization). [`Transaction::decode`] remains the
    /// default for untrusted input.
    pub fn decode_trusted(data: &[u8]) -> Result<Self> {
        Self::decode_impl(data, false)
    }

    fn decode_impl(data: &[u8], verify: bool) -> Result<Self> {
        let mut c = Cursor::new(data, "transaction");
        let id_bytes: [u8; 32] = c
            .get_raw(32)?
            .try_into()
            .expect("get_raw(32) returns 32 bytes");
        let id = TxId(Digest(id_bytes));
        let payload_start = c.position();
        let timestamp = c.get_u64()?;
        let read_count = c.get_uvarint()?;
        let mut reads = Vec::with_capacity(read_count.min(1 << 20) as usize);
        for _ in 0..read_count {
            let key = c.get_bytes_owned()?;
            let has_version = c.get_raw(1)?[0];
            let version = match has_version {
                0 => None,
                1 => Some(Version {
                    block_num: c.get_u64()?,
                    tx_num: c.get_u32()?,
                }),
                other => return Err(Error::InvalidArgument(format!("bad version flag {other}"))),
            };
            reads.push(KvRead { key, version });
        }
        let write_count = c.get_uvarint()?;
        let mut writes = Vec::with_capacity(write_count.min(1 << 20) as usize);
        for _ in 0..write_count {
            let key = c.get_bytes_owned()?;
            let has_value = c.get_raw(1)?[0];
            let value = match has_value {
                0 => None,
                1 => Some(c.get_bytes_owned()?),
                other => return Err(Error::InvalidArgument(format!("bad value flag {other}"))),
            };
            writes.push(KvWrite { key, value });
        }
        c.expect_end()?;
        if verify {
            let computed = TxId(sha256(&data[payload_start..]));
            if computed != id {
                return Err(Error::InvalidArgument(format!(
                    "transaction id mismatch: stored {id} computed {computed}"
                )));
            }
        }
        Ok(Transaction {
            id,
            timestamp,
            reads,
            writes,
        })
    }
}

/// Keep only the final write for each key, preserving the order of final
/// occurrences (Fabric persists one state per key per transaction).
fn dedup_last_write_wins(writes: Vec<KvWrite>) -> Vec<KvWrite> {
    if writes.len() <= 1 {
        return writes;
    }
    let mut last_index: std::collections::HashMap<Bytes, usize> = std::collections::HashMap::new();
    for (i, w) in writes.iter().enumerate() {
        last_index.insert(w.key.clone(), i);
    }
    writes
        .into_iter()
        .enumerate()
        .filter(|(i, w)| last_index[&w.key] == *i)
        .map(|(_, w)| w)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn simple_tx() -> Transaction {
        Transaction::new(
            42,
            vec![KvRead {
                key: b("read-key"),
                version: Some(Version {
                    block_num: 3,
                    tx_num: 1,
                }),
            }],
            vec![
                KvWrite {
                    key: b("write-key"),
                    value: Some(b("value")),
                },
                KvWrite {
                    key: b("deleted-key"),
                    value: None,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let tx = simple_tx();
        let decoded = Transaction::decode(&tx.encode()).unwrap();
        assert_eq!(tx, decoded);
    }

    #[test]
    fn id_is_content_derived_and_stable() {
        let a = simple_tx();
        let b = simple_tx();
        assert_eq!(a.id, b.id);
        let c = Transaction::new(43, a.reads.clone(), a.writes.clone()).unwrap();
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn tampered_payload_detected() {
        let tx = simple_tx();
        let mut enc = tx.encode();
        let n = enc.len();
        enc[n - 1] ^= 0xFF;
        assert!(Transaction::decode(&enc).is_err());
    }

    #[test]
    fn last_write_wins_per_key() {
        let tx = Transaction::new(
            1,
            vec![],
            vec![
                KvWrite {
                    key: b("k"),
                    value: Some(b("first")),
                },
                KvWrite {
                    key: b("other"),
                    value: Some(b("x")),
                },
                KvWrite {
                    key: b("k"),
                    value: Some(b("second")),
                },
            ],
        )
        .unwrap();
        assert_eq!(tx.writes.len(), 2);
        let k_write = tx.writes.iter().find(|w| w.key == b("k")).unwrap();
        assert_eq!(k_write.value.as_ref().unwrap(), &b("second"));
    }

    #[test]
    fn rejects_nul_in_key() {
        let res = Transaction::new(
            1,
            vec![],
            vec![KvWrite {
                key: Bytes::from_static(b"bad\0key"),
                value: Some(b("v")),
            }],
        );
        assert!(res.is_err());
    }

    #[test]
    fn rejects_empty_key() {
        let res = Transaction::new(
            1,
            vec![],
            vec![KvWrite {
                key: Bytes::new(),
                value: Some(b("v")),
            }],
        );
        assert!(res.is_err());
    }

    #[test]
    fn empty_read_write_sets_roundtrip() {
        let tx = Transaction::new(0, vec![], vec![]).unwrap();
        let decoded = Transaction::decode(&tx.encode()).unwrap();
        assert_eq!(tx, decoded);
        assert!(decoded.writes.is_empty());
    }

    #[test]
    fn validation_code_roundtrip() {
        for code in [ValidationCode::Valid, ValidationCode::MvccConflict] {
            assert_eq!(ValidationCode::from_byte(code.to_byte()).unwrap(), code);
        }
        assert!(ValidationCode::from_byte(9).is_err());
    }

    #[test]
    fn truncated_tx_rejected() {
        let enc = simple_tx().encode();
        for cut in [0, 10, 31, 40, enc.len() - 1] {
            assert!(Transaction::decode(&enc[..cut]).is_err(), "cut={cut}");
        }
    }
}
