//! Binary codec primitives shared by the block and transaction formats.
//!
//! A small, explicit, versionless TLV-free format: unsigned LEB128 varints,
//! length-prefixed byte strings, fixed-width little-endian integers. Every
//! decoder consumes from a [`Cursor`] that yields structured errors on
//! truncation instead of panicking.

use bytes::Bytes;

use crate::error::{Error, Result};

/// Append an unsigned LEB128 varint.
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    put_uvarint(out, data.len() as u64);
    out.extend_from_slice(data);
}

/// Append a fixed-width little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a fixed-width little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked read cursor over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    /// Context used in error messages ("block 17", "tx payload", …).
    what: &'a str,
}

impl<'a> Cursor<'a> {
    /// Wrap `data`; `what` names the structure being decoded for errors.
    pub fn new(data: &'a [u8], what: &'a str) -> Self {
        Cursor { data, pos: 0, what }
    }

    fn truncated(&self, needed: &str) -> Error {
        Error::InvalidArgument(format!(
            "truncated {} at offset {}: expected {needed}",
            self.what, self.pos
        ))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// `true` when all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fail unless the cursor consumed every input byte.
    pub fn expect_end(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(Error::InvalidArgument(format!(
                "{} has {} trailing bytes",
                self.what,
                self.remaining()
            )))
        }
    }

    /// Read an unsigned LEB128 varint.
    pub fn get_uvarint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| self.truncated("varint"))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(Error::InvalidArgument(format!(
                    "overlong varint in {} at offset {}",
                    self.what, self.pos
                )));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a length-prefixed byte string as a borrowed slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_uvarint()? as usize;
        let slice = self
            .data
            .get(self.pos..self.pos + len)
            .ok_or_else(|| self.truncated("byte string"))?;
        self.pos += len;
        Ok(slice)
    }

    /// Read a length-prefixed byte string as owned [`Bytes`].
    pub fn get_bytes_owned(&mut self) -> Result<Bytes> {
        Ok(Bytes::copy_from_slice(self.get_bytes()?))
    }

    /// Read a fixed-width little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let slice = self
            .data
            .get(self.pos..self.pos + 8)
            .ok_or_else(|| self.truncated("u64"))?;
        self.pos += 8;
        Ok(u64::from_le_bytes(slice.try_into().unwrap()))
    }

    /// Read a fixed-width little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let slice = self
            .data
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.truncated("u32"))?;
        self.pos += 4;
        Ok(u32::from_le_bytes(slice.try_into().unwrap()))
    }

    /// Read exactly `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8]> {
        let slice = self
            .data
            .get(self.pos..self.pos + n)
            .ok_or_else(|| self.truncated("raw bytes"))?;
        self.pos += n;
        Ok(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut c = Cursor::new(&buf, "test");
            assert_eq!(c.get_uvarint().unwrap(), v);
            assert!(c.is_empty());
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        put_bytes(&mut buf, b"");
        put_bytes(&mut buf, &[0u8; 300]);
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.get_bytes().unwrap(), b"hello");
        assert_eq!(c.get_bytes().unwrap(), b"");
        assert_eq!(c.get_bytes().unwrap().len(), 300);
        c.expect_end().unwrap();
    }

    #[test]
    fn fixed_width_roundtrip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 0xDEAD_BEEF_0102_0304);
        put_u32(&mut buf, 0xCAFE_BABE);
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.get_u64().unwrap(), 0xDEAD_BEEF_0102_0304);
        assert_eq!(c.get_u32().unwrap(), 0xCAFE_BABE);
    }

    #[test]
    fn truncation_reports_context() {
        let mut c = Cursor::new(&[0x05, b'a'], "my struct");
        let err = c.get_bytes().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("my struct"), "{msg}");
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 7);
        buf.push(0xFF);
        let mut c = Cursor::new(&buf, "test");
        c.get_uvarint().unwrap();
        assert!(c.expect_end().is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = vec![0x80u8; 11];
        let mut c = Cursor::new(&buf, "test");
        assert!(c.get_uvarint().is_err());
    }

    #[test]
    fn get_raw_and_position_track() {
        let buf = [1u8, 2, 3, 4, 5];
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.get_raw(2).unwrap(), &[1, 2]);
        assert_eq!(c.position(), 2);
        assert_eq!(c.remaining(), 3);
        assert!(c.get_raw(4).is_err());
    }
}
