//! MVCC block validation: the serial in-order scan and a dependency-wave
//! parallel validator that is bit-identical to it.
//!
//! Fabric validates a block's transactions serially: each transaction's
//! read set is checked against committed state *plus the writes of every
//! earlier valid transaction in the same block*, so validity is
//! order-sensitive — a transaction that reads a key an earlier valid
//! transaction wrote must observe that write's version or be marked
//! [`ValidationCode::MvccConflict`]. The parallel validator preserves
//! those exact semantics by topologically layering the block:
//!
//! 1. Scan transactions in order, tracking for every key the deepest
//!    *wave* of any earlier transaction that writes it. A transaction's
//!    wave is one past the deepest wave among earlier writers of its read
//!    keys (wave 0 if it reads only committed state).
//! 2. Validate each wave on a scoped thread pool. By construction, every
//!    earlier writer of any key a wave-`w` transaction reads sits in a
//!    wave `< w`, so its validity is already decided; the worker resolves
//!    a read to the latest earlier *valid* writer's version (or the base
//!    lookup — state db plus in-flight overlay — when there is none).
//! 3. Barrier between waves; codes land in block order.
//!
//! Transactions with no read-set intersection all land in wave 0, so a
//! conflict-free block (the ingest workload: put-only transactions)
//! validates in a single fully parallel wave. A worker panic is caught at
//! `join` and surfaced as [`Error`] — it poisons the commit, never the
//! process (the same contract as the pipeline workers).

use std::collections::HashMap;

use bytes::Bytes;

use crate::error::{Error, Result};
use crate::tx::{BlockNum, Transaction, TxNum, ValidationCode, Version};

/// What validation decided for one block, plus the write set the
/// pipelined path publishes to its in-flight overlay.
#[derive(Debug)]
pub struct ValidationOutcome {
    /// Per-transaction codes, in block order.
    pub codes: Vec<ValidationCode>,
    /// Final intra-block write versions: for every key written by at
    /// least one valid transaction, the last valid writer's version
    /// (`None` = the last valid write was a delete).
    pub intra_block: HashMap<Bytes, Option<Version>>,
    /// Number of [`ValidationCode::MvccConflict`] codes.
    pub conflicts: u64,
    /// Worker chunks spawned (0 on the serial scan).
    pub chunks: u64,
    /// Dependency waves executed (0 on the serial scan).
    pub waves: u64,
}

/// Test-only failpoint: when set, the next parallel-validation worker
/// panics, exercising the panic→[`Error`] path from the outside.
#[cfg(test)]
pub(crate) static PANIC_IN_WORKER: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

#[cfg(test)]
fn maybe_injected_panic() {
    if PANIC_IN_WORKER.swap(false, std::sync::atomic::Ordering::SeqCst) {
        panic!("injected validation-pool panic");
    }
}

#[cfg(not(test))]
fn maybe_injected_panic() {}

/// The serial in-order scan — the paper's cost model. `base` resolves a
/// key's version outside the block (state db, or overlay-then-state on
/// the pipelined path).
pub fn validate_serial(
    txs: &[Transaction],
    block_num: BlockNum,
    mut base: impl FnMut(&[u8]) -> Result<Option<Version>>,
) -> Result<ValidationOutcome> {
    let mut intra_block: HashMap<Bytes, Option<Version>> = HashMap::new();
    let mut codes = Vec::with_capacity(txs.len());
    let mut conflicts = 0u64;
    for (i, tx) in txs.iter().enumerate() {
        let mut ok = true;
        for r in &tx.reads {
            let current = match intra_block.get(&r.key) {
                Some(v) => *v,
                None => base(&r.key)?,
            };
            if current != r.version {
                ok = false;
                break;
            }
        }
        let code = if ok {
            ValidationCode::Valid
        } else {
            conflicts += 1;
            ValidationCode::MvccConflict
        };
        if code == ValidationCode::Valid {
            for w in &tx.writes {
                let ver = Version {
                    block_num,
                    tx_num: i as TxNum,
                };
                intra_block.insert(
                    w.key.clone(),
                    if w.value.is_some() { Some(ver) } else { None },
                );
            }
        }
        codes.push(code);
    }
    Ok(ValidationOutcome {
        codes,
        intra_block,
        conflicts,
        chunks: 0,
        waves: 0,
    })
}

/// The version a valid transaction `tx_idx` leaves key `key` at: its
/// *last* write of the key wins (mirroring the serial insert order), and
/// a delete leaves `None`.
fn effective_write(
    tx: &Transaction,
    tx_idx: usize,
    key: &[u8],
    block_num: BlockNum,
) -> Option<Version> {
    let mut out = None;
    for w in &tx.writes {
        if w.key.as_ref() == key {
            out = if w.value.is_some() {
                Some(Version {
                    block_num,
                    tx_num: tx_idx as TxNum,
                })
            } else {
                None
            };
        }
    }
    out
}

/// Dependency-wave parallel validation. Bit-identical to
/// [`validate_serial`] with the same `base` lookup; see the module docs
/// for the algorithm and why order sensitivity is preserved.
pub fn validate_parallel(
    txs: &[Transaction],
    block_num: BlockNum,
    threads: usize,
    base: impl Fn(&[u8]) -> Result<Option<Version>> + Sync,
) -> Result<ValidationOutcome> {
    if txs.is_empty() {
        return Ok(ValidationOutcome {
            codes: Vec::new(),
            intra_block: HashMap::new(),
            conflicts: 0,
            chunks: 0,
            waves: 0,
        });
    }

    // Fast path: no transaction reads anything, so MVCC conflicts are
    // impossible and every code is `Valid` regardless of order — the
    // wave machinery (and its per-block thread spawns) would be pure
    // overhead. Ingest workloads (SE/ME put-only transactions) take
    // this path on every block.
    if txs.iter().all(|tx| tx.reads.is_empty()) {
        let mut intra_block: HashMap<Bytes, Option<Version>> = HashMap::new();
        for (i, tx) in txs.iter().enumerate() {
            for w in &tx.writes {
                let ver = Version {
                    block_num,
                    tx_num: i as TxNum,
                };
                intra_block.insert(w.key.clone(), w.value.is_some().then_some(ver));
            }
        }
        return Ok(ValidationOutcome {
            codes: vec![ValidationCode::Valid; txs.len()],
            intra_block,
            conflicts: 0,
            chunks: 1,
            waves: 1,
        });
    }

    // Pass 1 (serial, cheap): assign waves. `writer_wave[key]` is the
    // deepest wave among transactions seen so far that write `key`;
    // `writers_of[key]` lists them in block order for read resolution.
    let mut writer_wave: HashMap<&[u8], u64> = HashMap::new();
    let mut writers_of: HashMap<&[u8], Vec<usize>> = HashMap::new();
    let mut wave_of: Vec<u64> = Vec::with_capacity(txs.len());
    let mut max_wave = 0u64;
    for (i, tx) in txs.iter().enumerate() {
        let mut wave = 0u64;
        for r in &tx.reads {
            if let Some(w) = writer_wave.get(r.key.as_ref()) {
                wave = wave.max(w + 1);
            }
        }
        for w in &tx.writes {
            let slot = writer_wave.entry(w.key.as_ref()).or_insert(0);
            *slot = (*slot).max(wave);
            writers_of.entry(w.key.as_ref()).or_default().push(i);
        }
        max_wave = max_wave.max(wave);
        wave_of.push(wave);
    }
    let mut waves: Vec<Vec<usize>> = vec![Vec::new(); (max_wave + 1) as usize];
    for (i, w) in wave_of.iter().enumerate() {
        waves[*w as usize].push(i);
    }

    // Pass 2: validate wave by wave. Codes for waves `< w` are final when
    // wave `w` runs, so a read of key `k` by transaction `i` resolves to
    // the latest valid writer `j < i` of `k` — all such writers sit in
    // earlier waves by construction.
    let mut codes: Vec<ValidationCode> = vec![ValidationCode::MvccConflict; txs.len()];
    let mut chunks = 0u64;
    let threads = threads.max(1);
    // `decided` is the codes of all *earlier waves* (later entries are
    // placeholders a wave never inspects, since every earlier writer of a
    // read key sits in an earlier wave).
    let validate_one = |decided: &[ValidationCode], i: usize| -> Result<ValidationCode> {
        let tx = &txs[i];
        for r in &tx.reads {
            let mut current: Option<Option<Version>> = None;
            if let Some(writers) = writers_of.get(r.key.as_ref()) {
                for &j in writers.iter().rev() {
                    if j >= i {
                        continue;
                    }
                    if decided[j] == ValidationCode::Valid {
                        current = Some(effective_write(&txs[j], j, r.key.as_ref(), block_num));
                        break;
                    }
                }
            }
            let current = match current {
                Some(v) => v,
                None => base(&r.key)?,
            };
            if current != r.version {
                return Ok(ValidationCode::MvccConflict);
            }
        }
        Ok(ValidationCode::Valid)
    };
    for wave in &waves {
        let wave_results: Vec<(usize, ValidationCode)> = if threads == 1 || wave.len() == 1 {
            chunks += 1;
            let mut out = Vec::with_capacity(wave.len());
            for &i in wave {
                out.push((i, validate_one(&codes, i)?));
            }
            out
        } else {
            let chunk_len = wave.len().div_ceil(threads);
            let decided: &[ValidationCode] = &codes;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in wave.chunks(chunk_len) {
                    let validate_one = &validate_one;
                    handles.push(scope.spawn(move || {
                        maybe_injected_panic();
                        chunk
                            .iter()
                            .map(|&i| validate_one(decided, i).map(|code| (i, code)))
                            .collect::<Result<Vec<_>>>()
                    }));
                }
                chunks += handles.len() as u64;
                // Join explicitly and consume each result: a panicking
                // worker must become an `Err` here, not re-panic out of
                // the scope.
                let mut out = Vec::with_capacity(wave.len());
                let mut first_err: Option<Error> = None;
                for handle in handles {
                    match handle.join() {
                        Ok(Ok(mut results)) => out.append(&mut results),
                        Ok(Err(e)) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                        Err(_) => {
                            if first_err.is_none() {
                                first_err = Some(Error::io(
                                    "commit.validate".to_string(),
                                    std::io::Error::other("validation worker panicked"),
                                ));
                            }
                        }
                    }
                }
                match first_err {
                    Some(e) => Err(e),
                    None => Ok(out),
                }
            })?
        };
        for (i, code) in wave_results {
            codes[i] = code;
        }
    }

    // Final intra-block write set (what the serial scan's map ends at):
    // per written key, the last valid writer's effective version.
    let mut intra_block: HashMap<Bytes, Option<Version>> = HashMap::new();
    for (key, writers) in &writers_of {
        for &j in writers.iter().rev() {
            if codes[j] == ValidationCode::Valid {
                intra_block.insert(
                    Bytes::copy_from_slice(key),
                    effective_write(&txs[j], j, key, block_num),
                );
                break;
            }
        }
    }

    let conflicts = codes
        .iter()
        .filter(|c| **c == ValidationCode::MvccConflict)
        .count() as u64;
    Ok(ValidationOutcome {
        codes,
        intra_block,
        conflicts,
        chunks,
        waves: waves.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{KvRead, KvWrite};

    fn key(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn tx(reads: Vec<(&str, Option<Version>)>, writes: Vec<(&str, bool)>) -> Transaction {
        Transaction::new(
            1,
            reads
                .into_iter()
                .map(|(k, version)| KvRead {
                    key: key(k),
                    version,
                })
                .collect(),
            writes
                .into_iter()
                .map(|(k, live)| KvWrite {
                    key: key(k),
                    value: live.then(|| Bytes::from_static(b"v")),
                })
                .collect(),
        )
        .unwrap()
    }

    fn assert_equivalent(txs: &[Transaction], base: &HashMap<Bytes, Option<Version>>) {
        let lookup = |k: &[u8]| Ok(base.get(k).copied().flatten());
        let serial = validate_serial(txs, 7, lookup).unwrap();
        for threads in [1, 2, 4] {
            let parallel = validate_parallel(txs, 7, threads, lookup).unwrap();
            assert_eq!(serial.codes, parallel.codes, "threads={threads}");
            assert_eq!(
                serial.intra_block, parallel.intra_block,
                "threads={threads}"
            );
            assert_eq!(serial.conflicts, parallel.conflicts);
        }
    }

    #[test]
    fn blind_write_blocks_skip_the_worker_pool() {
        let txs = vec![
            tx(vec![], vec![("a", true)]),
            tx(vec![], vec![("b", true)]),
            tx(vec![], vec![("a", false)]),
        ];
        // The armed failpoint proves no worker thread ever runs.
        PANIC_IN_WORKER.store(true, std::sync::atomic::Ordering::SeqCst);
        let out = validate_parallel(&txs, 7, 4, |_| Ok(None)).unwrap();
        PANIC_IN_WORKER.store(false, std::sync::atomic::Ordering::SeqCst);
        assert_eq!(out.chunks, 1);
        assert_eq!(out.waves, 1);
        assert_eq!(out.codes, vec![ValidationCode::Valid; 3]);
        // Last write of "a" is the delete.
        assert_eq!(out.intra_block.get(key("a").as_ref()), Some(&None));
        assert_equivalent(&txs, &HashMap::new());
    }

    #[test]
    fn independent_txs_form_one_wave() {
        let txs = vec![
            tx(vec![("a", None)], vec![("a", true)]),
            tx(vec![("b", None)], vec![("b", true)]),
            tx(vec![("c", None)], vec![("c", true)]),
        ];
        let out = validate_parallel(&txs, 0, 2, |_| Ok(None)).unwrap();
        assert_eq!(out.waves, 1);
        assert_eq!(out.conflicts, 0);
        assert_eq!(out.codes, vec![ValidationCode::Valid; 3]);
    }

    #[test]
    fn read_after_write_conflicts_like_serial() {
        // tx0 writes k; tx1 read k@None → conflict (tx0's write intervenes);
        // tx2 reads k at tx0's version → valid.
        let v0 = Version {
            block_num: 7,
            tx_num: 0,
        };
        let txs = vec![
            tx(vec![], vec![("k", true)]),
            tx(vec![("k", None)], vec![("x", true)]),
            tx(vec![("k", Some(v0))], vec![("y", true)]),
        ];
        let out = validate_parallel(&txs, 7, 4, |_| Ok(None)).unwrap();
        assert_eq!(
            out.codes,
            vec![
                ValidationCode::Valid,
                ValidationCode::MvccConflict,
                ValidationCode::Valid
            ]
        );
        assert!(out.waves >= 2, "dependent txs must layer into waves");
        assert_equivalent(&txs, &HashMap::new());
    }

    #[test]
    fn invalid_writer_does_not_shadow_base_state() {
        // tx0 conflicts (stale read), so its write of k must NOT be
        // visible to tx1: tx1 reads k at the committed version and stays
        // valid.
        let committed = Version {
            block_num: 3,
            tx_num: 1,
        };
        let mut base = HashMap::new();
        base.insert(key("k"), Some(committed));
        let txs = vec![
            tx(vec![("k", None)], vec![("k", true)]),
            tx(vec![("k", Some(committed))], vec![("z", true)]),
        ];
        assert_equivalent(&txs, &base);
        let out = validate_parallel(&txs, 7, 2, |k| Ok(base.get(k).copied().flatten())).unwrap();
        assert_eq!(
            out.codes,
            vec![ValidationCode::MvccConflict, ValidationCode::Valid]
        );
    }

    #[test]
    fn later_blind_writer_does_not_leak_backwards() {
        // tx0 writes k (wave 0), tx1 reads k (wave 1), tx2 blind-writes k
        // (no reads → wave 0). tx1 must observe tx0's version, not tx2's,
        // even though tx2 validated in an earlier wave.
        let v0 = Version {
            block_num: 7,
            tx_num: 0,
        };
        let txs = vec![
            tx(vec![], vec![("k", true)]),
            tx(vec![("k", Some(v0))], vec![("a", true)]),
            tx(vec![], vec![("k", true)]),
        ];
        let out = validate_parallel(&txs, 7, 4, |_| Ok(None)).unwrap();
        assert_eq!(out.codes, vec![ValidationCode::Valid; 3]);
        // And the final write set carries tx2's version (last valid writer).
        assert_eq!(
            out.intra_block.get(key("k").as_ref()).copied().flatten(),
            Some(Version {
                block_num: 7,
                tx_num: 2
            })
        );
        assert_equivalent(&txs, &HashMap::new());
    }

    #[test]
    fn tombstone_writes_validate_as_deletes() {
        // tx0 deletes k (M1-style null tombstone); tx1 reading k@None is
        // valid — the delete is what it observes.
        let committed = Version {
            block_num: 2,
            tx_num: 0,
        };
        let mut base = HashMap::new();
        base.insert(key("k"), Some(committed));
        let txs = vec![
            tx(vec![("k", Some(committed))], vec![("k", false)]),
            tx(vec![("k", None)], vec![("w", true)]),
        ];
        assert_equivalent(&txs, &base);
        let out = validate_parallel(&txs, 7, 2, |k| Ok(base.get(k).copied().flatten())).unwrap();
        assert_eq!(out.codes, vec![ValidationCode::Valid; 2]);
        assert_eq!(out.intra_block.get(key("k").as_ref()), Some(&None));
    }

    #[test]
    fn repeated_writes_in_one_tx_last_wins() {
        // tx0 writes k then deletes it; tx1 must observe the delete.
        let txs = vec![
            Transaction::new(
                1,
                vec![],
                vec![
                    KvWrite {
                        key: key("k"),
                        value: Some(Bytes::from_static(b"v")),
                    },
                    KvWrite {
                        key: key("k"),
                        value: None,
                    },
                ],
            )
            .unwrap(),
            tx(vec![("k", None)], vec![("w", true)]),
        ];
        assert_equivalent(&txs, &HashMap::new());
        let out = validate_parallel(&txs, 7, 2, |_| Ok(None)).unwrap();
        assert_eq!(out.codes, vec![ValidationCode::Valid; 2]);
    }

    #[test]
    fn randomized_contended_batches_match_serial() {
        // Deterministic xorshift so the test is reproducible without a
        // seed-logging harness; dense conflicts over a 4-key space.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let keys = ["a", "b", "c", "d"];
        for _case in 0..200 {
            let mut base: HashMap<Bytes, Option<Version>> = HashMap::new();
            for k in keys {
                if next() % 2 == 0 {
                    base.insert(
                        key(k),
                        Some(Version {
                            block_num: next() % 3,
                            tx_num: (next() % 4) as TxNum,
                        }),
                    );
                }
            }
            let n = 1 + (next() % 12) as usize;
            let txs: Vec<Transaction> = (0..n)
                .map(|_| {
                    let reads = (0..(next() % 3))
                        .map(|_| {
                            let k = keys[(next() % 4) as usize];
                            // Mix of matching and stale claimed versions.
                            let version = match next() % 3 {
                                0 => None,
                                1 => base.get(&key(k)).copied().flatten(),
                                _ => Some(Version {
                                    block_num: 7,
                                    tx_num: (next() % n as u64) as TxNum,
                                }),
                            };
                            (k, version)
                        })
                        .collect();
                    let writes = (0..(1 + next() % 2))
                        .map(|_| (keys[(next() % 4) as usize], next() % 4 != 0))
                        .collect();
                    tx(reads, writes)
                })
                .collect();
            assert_equivalent(&txs, &base);
        }
    }

    #[test]
    fn worker_panic_surfaces_as_error() {
        // Read-bearing txs: a pure blind-write block would take the
        // no-reads fast path and never reach the worker pool.
        let txs = vec![
            tx(vec![("a", None)], vec![("a", true)]),
            tx(vec![("b", None)], vec![("b", true)]),
            tx(vec![("c", None)], vec![("c", true)]),
            tx(vec![("d", None)], vec![("d", true)]),
        ];
        PANIC_IN_WORKER.store(true, std::sync::atomic::Ordering::SeqCst);
        let err = validate_parallel(&txs, 0, 2, |_| Ok(None)).unwrap_err();
        PANIC_IN_WORKER.store(false, std::sync::atomic::Ordering::SeqCst);
        assert!(
            err.to_string().contains("panicked"),
            "panic must surface as Error, got: {err}"
        );
    }
}
