//! The ledger engine: commit pipeline, chain state, recovery and queries.
//!
//! Data flow on commit (mirrors a Fabric peer):
//!
//! ```text
//! TxSimulator → submit() → BlockCutter → commit_batch():
//!     1. MVCC-validate each tx's read set against current state
//!     2. assemble Block (header chains to previous hash)
//!     3. append to block files              (history-db grows here)
//!     4. write block-location + history index entries
//!     5. apply valid txs' writes to state-db
//! ```
//!
//! On open, the engine recovers from a crash at any point in that sequence:
//! blocks present in the files but missing from the indexes are re-indexed
//! and their state updates re-applied (both operations are idempotent).

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

use bytes::Bytes;
use parking_lot::Mutex;

use fabric_kvstore::{open_engine, Backend};
use fabric_telemetry::{QueueProbe, SpanContext, SpanGuard, Telemetry};

use crate::block::Block;
use crate::blockfile::BlockFileManager;
use crate::cache::BlockCache;
use crate::config::LedgerConfig;
use crate::error::{Error, Result};
use crate::hash::Digest;
use crate::index::{BlockIndexEntry, ChainTip, HistoryLocation, LedgerIndex};
use crate::iostats::{IoStats, IoStatsSnapshot};
use crate::orderer::BlockCutter;
use crate::statedb::{StateDb, VersionedValue};
use crate::tx::{BlockNum, Timestamp, Transaction, TxNum, ValidationCode, Version};

/// One state-database update produced by a committed block:
/// `(key, new value or None for delete, committing version)`.
pub type StateUpdate = (Bytes, Option<Bytes>, Version);

/// Everything a committed block contributes to the indexes:
/// history entries, state updates, and tx-id index entries.
type BlockEffects = (
    Vec<(Bytes, TxNum, Timestamp)>,
    Vec<StateUpdate>,
    Vec<(crate::tx::TxId, TxNum)>,
);

/// A single-peer Fabric-style ledger.
///
/// See the [crate docs](crate) for the architecture overview and the
/// [module docs](self) for the commit pipeline.
pub struct Ledger {
    #[allow(dead_code)]
    dir: PathBuf,
    stats: Arc<IoStats>,
    tel: Telemetry,
    blockfiles: Arc<BlockFileManager>,
    index: LedgerIndex,
    state: StateDb,
    cache: Option<BlockCache>,
    /// Group history locations into per-block runs (see
    /// [`crate::config::LedgerConfig::coalesce_history`]).
    coalesce_history: bool,
    chain: Mutex<ChainTip>,
    cutter: Mutex<BlockCutter>,
    /// Commit-event subscribers (see [`Ledger::subscribe`]). Shared with
    /// the pipeline workers, which fire the events on the pipelined path.
    subscribers: Arc<Mutex<Vec<crossbeam::channel::Sender<CommitEvent>>>>,
    /// Resolved validation-pool width: `0` or `1` means the serial scan
    /// (see [`crate::config::LedgerConfig::parallel_validate`]).
    validate_threads: usize,
    /// Worker threads of the pipelined commit path (see
    /// [`crate::config::LedgerConfig::pipeline`]); `None` on the serial
    /// path.
    pipeline: Option<CommitPipeline>,
}

/// Notification sent to [`Ledger::subscribe`]rs after each block commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEvent {
    /// The committed block's number.
    pub block_num: BlockNum,
    /// Number of transactions in the block.
    pub tx_count: usize,
    /// Largest transaction timestamp in the block (0 for empty blocks) —
    /// index-maintenance daemons use this as the ledger's logical clock.
    pub max_timestamp: Timestamp,
}

/// MVCC-overlay entry for a key written by a block that has not reached
/// the state db yet: the version validation must observe (`None` =
/// deleted) and the block that wrote it, so the state worker can retire
/// the entry once that block is applied.
#[derive(Debug, Clone, Copy)]
struct OverlayEntry {
    version: Option<Version>,
    writer: BlockNum,
}

/// Hand-off from stage A (validate + assemble, on the caller thread) to
/// the append worker. `ctx` is the submitting `ledger.commit` span's
/// trace context: worker-side spans parent under it so the whole commit
/// forms one tree in the flight recorder even though it crosses threads.
struct AppendItem {
    block: Arc<Block>,
    tip: ChainTip,
    event: CommitEvent,
    ctx: Option<SpanContext>,
}

/// Hand-off from the append worker to the index worker.
struct IndexItem {
    entry: BlockIndexEntry,
    event: CommitEvent,
    ctx: Option<SpanContext>,
}

/// Hand-off from the append worker to the state worker.
struct StateItem {
    block_num: BlockNum,
    writes: Vec<StateUpdate>,
    event: CommitEvent,
    ctx: Option<SpanContext>,
}

/// State shared between stage A and the three pipeline workers.
///
/// Lock ordering (always acquire left before right, never the reverse):
/// `chain` → `overlay`/`in_flight`, and `completed` → `error`/`in_flight`.
/// `error` is never held while acquiring another lock.
struct PipelineShared {
    /// Blocks admitted by stage A but not yet fully applied (blockfile +
    /// index + state). Guarded by `in_flight`, signalled on `all_done`.
    in_flight: StdMutex<u64>,
    all_done: StdCondvar,
    /// Per-block count of finished fan-out stages (index, state). The
    /// second finisher fires the commit event and releases the barrier.
    completed: StdMutex<HashMap<BlockNum, u8>>,
    /// First error any stage hit; poisons the whole pipeline.
    error: StdMutex<Option<Error>>,
    /// Writes of in-flight blocks, visible to MVCC validation so stage A
    /// sees exactly the state the serial path would.
    overlay: StdMutex<HashMap<Bytes, OverlayEntry>>,
    subscribers: Arc<Mutex<Vec<crossbeam::channel::Sender<CommitEvent>>>>,
}

impl PipelineShared {
    fn lock_error(&self) -> std::sync::MutexGuard<'_, Option<Error>> {
        self.error.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn poisoned(&self) -> bool {
        self.lock_error().is_some()
    }

    /// Record the first failure; later failures are dropped.
    fn poison(&self, e: Error) {
        let mut slot = self.lock_error();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// A reportable copy of the poison error ([`Error`] is not `Clone`,
    /// so the copy wraps the original's rendering).
    fn error_copy(&self) -> Option<Error> {
        self.lock_error().as_ref().map(|e| {
            Error::io(
                "commit pipeline".to_string(),
                std::io::Error::other(e.to_string()),
            )
        })
    }

    /// Mark one of `event`'s two fan-out stages finished. The second
    /// finisher fires the subscriber notification — inside the
    /// `completed` lock, which serializes notifications in block order
    /// (both workers process blocks in order, so second-completions are
    /// monotone in block number) — then releases the drain barrier.
    fn complete(&self, event: CommitEvent) {
        let mut completed = self.completed.lock().unwrap_or_else(|e| e.into_inner());
        let count = completed.entry(event.block_num).or_insert(0);
        *count += 1;
        if *count < 2 {
            return;
        }
        completed.remove(&event.block_num);
        if !self.poisoned() {
            let mut subs = self.subscribers.lock();
            subs.retain(|tx| tx.send(event).is_ok());
        }
        let mut n = self.in_flight.lock().unwrap_or_else(|e| e.into_inner());
        *n = n.saturating_sub(1);
        drop(n);
        drop(completed);
        self.all_done.notify_all();
    }
}

/// The worker side of the pipelined commit path: bounded channels feed
/// `append → {index ∥ state}` threads. Dropping it closes the channels
/// and joins the workers.
struct CommitPipeline {
    append_tx: Option<mpsc::SyncSender<AppendItem>>,
    shared: Arc<PipelineShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Backpressure probe for the stage-A → append channel; the fan-out
    /// channels carry their own probes inside the worker closures.
    append_probe: QueueProbe,
}

impl CommitPipeline {
    /// Channel depth per stage: enough to keep every stage busy without
    /// letting the append worker run far ahead of the state db (which
    /// would grow the MVCC overlay unboundedly).
    const DEPTH: usize = 8;

    fn start(
        blockfiles: Arc<BlockFileManager>,
        index: LedgerIndex,
        state: StateDb,
        subscribers: Arc<Mutex<Vec<crossbeam::channel::Sender<CommitEvent>>>>,
        tel: Telemetry,
    ) -> CommitPipeline {
        let shared = Arc::new(PipelineShared {
            in_flight: StdMutex::new(0),
            all_done: StdCondvar::new(),
            completed: StdMutex::new(HashMap::new()),
            error: StdMutex::new(None),
            overlay: StdMutex::new(HashMap::new()),
            subscribers,
        });
        let (append_tx, append_rx) = mpsc::sync_channel::<AppendItem>(Self::DEPTH);
        let (index_tx, index_rx) = mpsc::sync_channel::<IndexItem>(Self::DEPTH);
        let (state_tx, state_rx) = mpsc::sync_channel::<StateItem>(Self::DEPTH);
        let append_probe = QueueProbe::new(&tel, "pipeline.append");
        let index_probe = QueueProbe::new(&tel, "pipeline.index");
        let state_probe = QueueProbe::new(&tel, "pipeline.state");

        let append_worker = {
            let shared = shared.clone();
            let tel = tel.clone();
            let append_probe = append_probe.clone();
            let index_send = index_probe.clone();
            let state_send = state_probe.clone();
            std::thread::spawn(move || {
                while let Ok(AppendItem {
                    block,
                    tip,
                    event,
                    ctx,
                }) = append_probe.recv(|| append_rx.recv())
                {
                    if shared.poisoned() {
                        // Drain mode: balance the barrier for both
                        // skipped fan-out stages.
                        shared.complete(event);
                        shared.complete(event);
                        continue;
                    }
                    let appended = {
                        let _s = tel.span_in("commit.append", ctx);
                        blockfiles.append_block(&block)
                    };
                    let location = match appended {
                        Ok(loc) => loc,
                        Err(e) => {
                            shared.poison(e);
                            shared.complete(event);
                            shared.complete(event);
                            continue;
                        }
                    };
                    let (history, writes, tx_ids) = Ledger::collect_effects(&block);
                    let block_num = block.header.number;
                    if index_send
                        .send(|| {
                            index_tx
                                .send(IndexItem {
                                    entry: BlockIndexEntry {
                                        block_num,
                                        location,
                                        history,
                                        tx_ids,
                                        tip,
                                    },
                                    event,
                                    ctx,
                                })
                                // Drop the bulky SendError payload: only
                                // send success matters here, and a slim Err
                                // keeps the probe's closure result small.
                                .map_err(drop)
                        })
                        .is_err()
                    {
                        shared.complete(event);
                    }
                    if state_send
                        .send(|| {
                            state_tx.send(StateItem {
                                block_num,
                                writes,
                                event,
                                ctx,
                            })
                        })
                        .is_err()
                    {
                        shared.complete(event);
                    }
                }
            })
        };

        // Both fan-out workers drain their queue each round and apply the
        // backlog through one store write (`write_many`): one WAL append +
        // fsync covers every queued block. The batching is self-clocking —
        // an idle pipeline applies block-by-block exactly like the serial
        // path, while a backlog (fsync-bound stores) amortises the sync
        // across up to `DEPTH` blocks. Per-block WAL frames and memtable
        // contents are identical either way.
        let index_worker = {
            let shared = shared.clone();
            let index = index.clone();
            let tel = tel.clone();
            std::thread::spawn(move || {
                while let Ok(first) = index_probe.recv(|| index_rx.recv()) {
                    let mut items = vec![first];
                    while items.len() < Self::DEPTH {
                        match index_rx.try_recv() {
                            Ok(item) => {
                                index_probe.drained(1, 0);
                                items.push(item);
                            }
                            Err(_) => break,
                        }
                    }
                    if !shared.poisoned() {
                        // A drained batch spans several commits; parent the
                        // worker span under the first item's submitter.
                        let mut span = tel.span_in("commit.index", items[0].ctx);
                        span.record("blocks", items.len() as u64);
                        if let Err(e) = index.index_blocks(items.iter().map(|i| &i.entry)) {
                            shared.poison(e);
                        }
                    }
                    for item in items {
                        shared.complete(item.event);
                    }
                }
            })
        };

        let state_worker = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                while let Ok(first) = state_probe.recv(|| state_rx.recv()) {
                    let mut items = vec![first];
                    while items.len() < Self::DEPTH {
                        match state_rx.try_recv() {
                            Ok(item) => {
                                state_probe.drained(1, 0);
                                items.push(item);
                            }
                            Err(_) => break,
                        }
                    }
                    if !shared.poisoned() {
                        let mut span = tel.span_in("commit.statedb", items[0].ctx);
                        span.record("blocks", items.len() as u64);
                        match state.apply_many(items.iter().map(|i| i.writes.as_slice())) {
                            Ok(()) => {
                                // These blocks' writes are in the state db
                                // now; retire their overlay entries. Later
                                // blocks' entries keep shadowing.
                                let applied: std::collections::HashSet<BlockNum> =
                                    items.iter().map(|i| i.block_num).collect();
                                let mut overlay =
                                    shared.overlay.lock().unwrap_or_else(|e| e.into_inner());
                                overlay.retain(|_, entry| !applied.contains(&entry.writer));
                            }
                            Err(e) => shared.poison(e),
                        }
                    }
                    for item in items {
                        shared.complete(item.event);
                    }
                }
            })
        };

        CommitPipeline {
            append_tx: Some(append_tx),
            shared,
            workers: vec![append_worker, index_worker, state_worker],
            append_probe,
        }
    }

    /// Hand a block to the append worker (blocking on channel capacity).
    fn send(&self, item: AppendItem) -> Result<()> {
        let event = item.event;
        let Some(sender) = self.append_tx.as_ref() else {
            // The pipeline is winding down (or was never started): balance
            // the completion barrier and fail the submit cleanly.
            self.shared.complete(event);
            self.shared.complete(event);
            return Err(Error::io(
                "commit pipeline".to_string(),
                std::io::Error::other("commit pipeline is not running"),
            ));
        };
        match self.append_probe.send(|| sender.send(item)) {
            Ok(()) => Ok(()),
            Err(_) => {
                // Append worker is gone (panicked): balance the barrier
                // for both fan-out stages and report.
                self.shared.complete(event);
                self.shared.complete(event);
                Err(Error::io(
                    "commit pipeline".to_string(),
                    std::io::Error::other("append worker unavailable"),
                ))
            }
        }
    }
}

impl Drop for CommitPipeline {
    fn drop(&mut self) {
        // Closing the append channel lets the append worker finish its
        // queue and exit, which drops its downstream senders and winds
        // down the index and state workers in turn.
        self.append_tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for Ledger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ledger")
            .field("dir", &self.dir)
            .field("height", &self.height())
            .finish()
    }
}

impl Ledger {
    /// Open (or create) a ledger rooted at `dir`. Telemetry starts
    /// disabled; call [`Ledger::telemetry`]`().enable()` to light it up.
    pub fn open(dir: impl Into<PathBuf>, config: LedgerConfig) -> Result<Self> {
        Self::open_with_telemetry(dir, config, Telemetry::disabled())
    }

    /// Open (or create) a ledger rooted at `dir`, sharing `tel` with every
    /// component it owns: block files, the index store and the state store
    /// all record spans and counters into the same handle.
    pub fn open_with_telemetry(
        dir: impl Into<PathBuf>,
        config: LedgerConfig,
        tel: Telemetry,
    ) -> Result<Self> {
        let dir = dir.into();
        let stats = IoStats::new_shared();
        let blockfiles = Arc::new(BlockFileManager::open_with_telemetry(
            dir.join("blocks"),
            config.blockfile_max_bytes,
            stats.clone(),
            tel.clone(),
        )?);
        // Engine resolution per store directory: `config.backend` seeds the
        // per-store options, and the on-disk marker wins for existing dirs
        // (see `fabric_kvstore::open_engine`), so reopening an existing
        // ledger never silently reformats it.
        let mut index_opts = config.index_db.clone();
        let mut state_opts = config.state_db.clone();
        if config.backend != Backend::Auto {
            index_opts.backend = config.backend;
            state_opts.backend = config.backend;
        }
        let index_db = open_engine(dir.join("index"), index_opts, tel.clone())?;
        let state_db = open_engine(dir.join("state"), state_opts, tel.clone())?;
        let index = LedgerIndex::new(index_db);
        let state = StateDb::new(state_db);
        let cache = if config.cache_blocks > 0 {
            Some(if config.cache_shards > 0 {
                BlockCache::with_shards(config.cache_blocks, config.cache_shards)
            } else {
                BlockCache::new(config.cache_blocks)
            })
        } else {
            None
        };
        let tip = index.chain_tip()?.unwrap_or(ChainTip {
            height: 0,
            last_hash: Digest::ZERO,
        });
        let validate_threads = if config.parallel_validate {
            match config.validate_threads {
                0 => std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
                n => n,
            }
        } else {
            0
        };
        let mut ledger = Ledger {
            dir,
            stats,
            tel,
            blockfiles,
            index,
            state,
            cache,
            coalesce_history: config.coalesce_history,
            chain: Mutex::new(tip),
            cutter: Mutex::new(BlockCutter::new(
                config.block_max_txs,
                config.block_max_bytes,
            )),
            subscribers: Arc::new(Mutex::new(Vec::new())),
            validate_threads,
            pipeline: None,
        };
        // Recovery runs serially *before* the pipeline spins up, so the
        // workers never race a re-index.
        ledger.recover()?;
        if config.pipeline {
            ledger.pipeline = Some(CommitPipeline::start(
                ledger.blockfiles.clone(),
                ledger.index.clone(),
                ledger.state.clone(),
                ledger.subscribers.clone(),
                ledger.tel.clone(),
            ));
        }
        Ok(ledger)
    }

    /// Re-index and re-apply any blocks that reached the block files but
    /// not the indexes (crash between steps 3 and 4/5 of the pipeline).
    fn recover(&self) -> Result<()> {
        let indexed_height = self.chain.lock().height;
        // Start scanning at the last indexed block (a known frame boundary);
        // blocks before it are skipped by the height check below.
        let start = if indexed_height > 0 {
            self.index.block_location(indexed_height - 1)?
        } else {
            None
        };
        let mut recovered_tip: Option<ChainTip> = None;
        self.blockfiles.scan_from(start, |block, location| {
            let num = block.header.number;
            if num < indexed_height {
                return Ok(()); // already indexed
            }
            let (history, writes, tx_ids) = Self::collect_effects(&block);
            let tip = ChainTip {
                height: num + 1,
                last_hash: block.hash(),
            };
            self.index
                .index_block(num, location, &history, &tx_ids, tip)?;
            self.state.apply(&writes)?;
            recovered_tip = Some(tip);
            Ok(())
        })?;
        if let Some(tip) = recovered_tip {
            *self.chain.lock() = tip;
        }
        Ok(())
    }

    /// Extract a committed block's index entries and state updates,
    /// honouring the recorded validation codes.
    fn collect_effects(block: &Block) -> BlockEffects {
        let mut tx_ids = Vec::with_capacity(block.txs.len());
        for (i, tx) in block.txs.iter().enumerate() {
            tx_ids.push((tx.id, i as TxNum));
        }
        let mut history = Vec::new();
        // Later txs in the block overwrite earlier ones in state.
        let mut latest: HashMap<Bytes, (Option<Bytes>, Version)> = HashMap::new();
        for (i, tx) in block.txs.iter().enumerate() {
            if block.validation[i] != ValidationCode::Valid {
                continue;
            }
            let tx_num = i as TxNum;
            for w in &tx.writes {
                history.push((w.key.clone(), tx_num, tx.timestamp));
                latest.insert(
                    w.key.clone(),
                    (
                        w.value.clone(),
                        Version {
                            block_num: block.header.number,
                            tx_num,
                        },
                    ),
                );
            }
        }
        let writes = latest
            .into_iter()
            .map(|(k, (v, ver))| (k, v, ver))
            .collect();
        (history, writes, tx_ids)
    }

    /// Submit a transaction to the orderer. Blocks are cut and committed
    /// according to the batch-size rules; returns the numbers of any blocks
    /// committed as a result of this submission.
    pub fn submit(&self, tx: Transaction) -> Result<Vec<BlockNum>> {
        let batches = self.cutter.lock().enqueue(tx);
        let mut committed = Vec::with_capacity(batches.len());
        for batch in batches {
            committed.push(self.commit_batch(batch)?);
        }
        Ok(committed)
    }

    /// Force-cut the pending batch (the orderer's batch-timeout path).
    /// Returns the committed block number, or `None` if nothing was pending.
    pub fn cut_block(&self) -> Result<Option<BlockNum>> {
        let batch = self.cutter.lock().cut();
        match batch {
            Some(batch) => Ok(Some(self.commit_batch(batch)?)),
            None => Ok(None),
        }
    }

    /// Validate, assemble, persist and index one block.
    fn commit_batch(&self, txs: Vec<Transaction>) -> Result<BlockNum> {
        match &self.pipeline {
            Some(pipe) => self.commit_batch_pipelined(pipe, txs),
            None => self.commit_batch_serial(txs),
        }
    }

    /// MVCC-validate one block's transactions, dispatching to the serial
    /// scan or the dependency-wave pool per the resolved configuration,
    /// and record the `commit.validate.*` counter family. Both validators
    /// produce identical codes; see [`crate::validate`].
    fn validate_block(
        &self,
        txs: &[Transaction],
        block_num: BlockNum,
        base: impl Fn(&[u8]) -> Result<Option<Version>> + Sync,
    ) -> Result<crate::validate::ValidationOutcome> {
        let mut span = self.tel.span("commit.mvcc_validate");
        let outcome = if self.validate_threads > 1 {
            crate::validate::validate_parallel(txs, block_num, self.validate_threads, base)?
        } else {
            crate::validate::validate_serial(txs, block_num, base)?
        };
        span.record("txs", txs.len() as u64);
        span.record("conflicts", outcome.conflicts);
        self.tel.count("commit.validate.txs", txs.len() as u64);
        self.tel
            .count("commit.validate.conflicts", outcome.conflicts);
        if self.validate_threads > 1 {
            span.record("chunks", outcome.chunks);
            span.record("waves", outcome.waves);
            self.tel.count("commit.validate.chunks", outcome.chunks);
            self.tel.count("commit.validate.waves", outcome.waves);
        }
        Ok(outcome)
    }

    /// State writes a block will apply: every write of every valid tx
    /// (the number of history entries — committed events — it adds).
    fn count_events(txs: &[Transaction], validation: &[ValidationCode]) -> u64 {
        txs.iter()
            .zip(validation)
            .filter(|(_, c)| **c == ValidationCode::Valid)
            .map(|(tx, _)| tx.writes.len() as u64)
            .sum()
    }

    /// The serial commit path — the paper's cost model. Every stage runs
    /// on the caller thread, in order, before the call returns.
    fn commit_batch_serial(&self, txs: Vec<Transaction>) -> Result<BlockNum> {
        let mut commit_span = self.tel.span("ledger.commit");
        let mut chain = self.chain.lock();
        let block_num = chain.height;
        // MVCC validation: a read set is valid when every observed version
        // still matches the committed state — including writes made by
        // earlier valid transactions in this same block.
        let validation = self
            .validate_block(&txs, block_num, |key| self.state.version(key))?
            .codes;
        let events = Self::count_events(&txs, &validation);
        let tx_count = txs.len() as u64;
        let block = {
            let _s = self.tel.span("commit.assemble");
            Block::new(block_num, chain.last_hash, txs, validation)?
        };
        let location = {
            let _s = self.tel.span("commit.append");
            self.blockfiles.append_block(&block)?
        };
        let (history, writes, tx_ids) = Self::collect_effects(&block);
        let tip = ChainTip {
            height: block_num + 1,
            last_hash: block.hash(),
        };
        {
            let _s = self.tel.span("commit.index");
            self.index
                .index_block(block_num, location, &history, &tx_ids, tip)?;
        }
        {
            let _s = self.tel.span("commit.statedb");
            self.state.apply(&writes)?;
        }
        *chain = tip;
        commit_span.record("txs", tx_count);
        IoStats::add(&self.stats.txs_committed, tx_count);
        IoStats::incr(&self.stats.blocks_committed);
        IoStats::add(&self.stats.events_committed, events);
        self.notify_commit(CommitEvent {
            block_num,
            tx_count: tx_count as usize,
            max_timestamp: block.txs.iter().map(|t| t.timestamp).max().unwrap_or(0),
        });
        Ok(block_num)
    }

    /// The pipelined commit path. Stage A — MVCC validation and block
    /// assembly — runs here, on the caller thread, under the chain lock;
    /// blockfile append, index update and state-db apply happen on the
    /// pipeline workers (the latter two in parallel). Validation reads
    /// versions through the in-flight overlay, so each transaction sees
    /// exactly the state it would on the serial path and the resulting
    /// blocks are byte-identical. Commit events fire when a block is
    /// fully applied, still in block order.
    fn commit_batch_pipelined(
        &self,
        pipe: &CommitPipeline,
        txs: Vec<Transaction>,
    ) -> Result<BlockNum> {
        if let Some(e) = pipe.shared.error_copy() {
            return Err(e);
        }
        let mut commit_span = self.tel.span("ledger.commit");
        let mut chain = self.chain.lock();
        let block_num = chain.height;
        let validation = {
            let mut overlay = pipe
                .shared
                .overlay
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            // Validation reads through the in-flight overlay, so each
            // transaction sees exactly the state it would serially.
            let outcome = {
                let overlay = &*overlay;
                self.validate_block(&txs, block_num, |key| match overlay.get(key) {
                    Some(entry) => Ok(entry.version),
                    None => self.state.version(key),
                })?
            };
            // Publish this block's writes to the overlay before releasing
            // the chain lock: the next commit must validate against them.
            for (key, version) in &outcome.intra_block {
                overlay.insert(
                    key.clone(),
                    OverlayEntry {
                        version: *version,
                        writer: block_num,
                    },
                );
            }
            outcome.codes
        };
        let events = Self::count_events(&txs, &validation);
        let tx_count = txs.len() as u64;
        let block = {
            let _s = self.tel.span("commit.assemble");
            Arc::new(Block::new(block_num, chain.last_hash, txs, validation)?)
        };
        let tip = ChainTip {
            height: block_num + 1,
            last_hash: block.hash(),
        };
        let event = CommitEvent {
            block_num,
            tx_count: tx_count as usize,
            max_timestamp: block.txs.iter().map(|t| t.timestamp).max().unwrap_or(0),
        };
        {
            let mut n = pipe
                .shared
                .in_flight
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            *n += 1;
        }
        pipe.send(AppendItem {
            block,
            tip,
            event,
            ctx: commit_span.context(),
        })?;
        *chain = tip;
        commit_span.record("txs", tx_count);
        IoStats::add(&self.stats.txs_committed, tx_count);
        IoStats::incr(&self.stats.blocks_committed);
        IoStats::add(&self.stats.events_committed, events);
        Ok(block_num)
    }

    /// Wait until every admitted block has fully reached the block files,
    /// the index and the state db, then surface the first pipeline error
    /// if a stage failed. A no-op on the serial path. Callers that read
    /// their own writes (queries, benchmarks measuring durable state)
    /// should drain first; `height()` and `last_hash()` already reflect
    /// admitted blocks without draining.
    pub fn drain_commits(&self) -> Result<()> {
        let Some(pipe) = &self.pipeline else {
            return Ok(());
        };
        let mut n = pipe
            .shared
            .in_flight
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while *n > 0 {
            n = pipe
                .shared
                .all_done
                .wait(n)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(n);
        if let Some(e) = pipe.shared.error_copy() {
            return Err(e);
        }
        Ok(())
    }

    fn notify_commit(&self, event: CommitEvent) {
        let mut subs = self.subscribers.lock();
        // Drop subscribers whose receiver has gone away.
        subs.retain(|tx| tx.send(event).is_ok());
    }

    /// Subscribe to block-commit events. Every block committed after this
    /// call produces one [`CommitEvent`] on the returned channel (unbounded;
    /// a slow consumer buffers, never blocks commits). Dropping the receiver
    /// unsubscribes.
    pub fn subscribe(&self) -> crossbeam::channel::Receiver<CommitEvent> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Number of committed blocks.
    pub fn height(&self) -> u64 {
        self.chain.lock().height
    }

    /// Hash of the latest block ([`Digest::ZERO`] pre-genesis).
    pub fn last_hash(&self) -> Digest {
        self.chain.lock().last_hash
    }

    /// Transactions queued in the orderer but not yet in a block.
    pub fn pending_txs(&self) -> usize {
        self.cutter.lock().pending_len()
    }

    /// Fetch a committed block by number (cache-aware).
    pub fn get_block(&self, num: BlockNum) -> Result<Arc<Block>> {
        if let Some(cache) = &self.cache {
            if let Some(block) = cache.get(num) {
                IoStats::incr(&self.stats.cache_hits);
                self.tel.count("ledger.cache.hits", 1);
                return Ok(block);
            }
        }
        let location = self
            .index
            .block_location(num)?
            .ok_or_else(|| Error::NotFound(format!("block {num}")))?;
        let block = Arc::new(self.blockfiles.read_block(location)?);
        if let Some(cache) = &self.cache {
            cache.put(num, block.clone());
        }
        Ok(block)
    }

    /// `GetTransactionByID`: fetch a committed transaction and its
    /// position plus validation outcome. Deserializes the containing
    /// block.
    pub fn get_transaction(
        &self,
        id: &crate::tx::TxId,
    ) -> Result<Option<(Transaction, BlockNum, TxNum, ValidationCode)>> {
        let Some((block_num, tx_num)) = self.index.tx_location(id)? else {
            return Ok(None);
        };
        let block = self.get_block(block_num)?;
        let tx = block.txs.get(tx_num as usize).ok_or_else(|| {
            Error::NotFound(format!("tx {tx_num} in block {block_num} (index stale?)"))
        })?;
        Ok(Some((
            tx.clone(),
            block_num,
            tx_num,
            block.validation[tx_num as usize],
        )))
    }

    /// `GetState`: current state of `key`.
    pub fn get_state(&self, key: &[u8]) -> Result<Option<VersionedValue>> {
        IoStats::incr(&self.stats.get_state_calls);
        self.state.get(key)
    }

    /// `GetStateByRange`: current states with keys in `[start, end)`;
    /// `None` bounds are open.
    pub fn get_state_by_range(
        &self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Result<Vec<(Bytes, VersionedValue)>> {
        IoStats::incr(&self.stats.range_scan_calls);
        self.state.range(start, end)
    }

    /// `GetHistoryForKey`: a **lazy** iterator over all persisted states of
    /// `key`, oldest first. Blocks are deserialized one at a time as the
    /// iterator advances — stopping early skips the remaining blocks, which
    /// is precisely the behaviour the paper's Model M1 exploits.
    ///
    /// With [`LedgerConfig::coalesce_history`] on (the default) the
    /// iterator groups the key's history locations into per-block runs, so
    /// each block is read and decoded at most once per scan even when the
    /// key's entries revisit a block non-consecutively; without a block
    /// cache the run is fetched through the selective
    /// [`BlockFileManager::read_block_txs`] path, decoding only the txs
    /// the scan needs. Laziness is preserved run-by-run: a block is not
    /// touched until its first entry is consumed.
    pub fn get_history_for_key(&self, key: &[u8]) -> Result<HistoryIterator<'_>> {
        self.history_iterator(key, None)
    }

    /// Bounded variant of [`Ledger::get_history_for_key`]: skips history
    /// entries whose **recorded** transaction timestamp is `<= after_ts`.
    /// Entries with no recorded timestamp (pre-timestamp indexes) are kept,
    /// so the scan only ever skips entries it can prove are old. Because a
    /// transaction's timestamp is an upper bound on the event times it
    /// carries, a skipped entry cannot contribute an event later than
    /// `after_ts` — which makes this safe as the residual scan of a hybrid
    /// plan that already covered everything up to `after_ts` from an index.
    pub fn get_history_for_key_from(
        &self,
        key: &[u8],
        after_ts: Timestamp,
    ) -> Result<HistoryIterator<'_>> {
        self.history_iterator(key, Some(after_ts))
    }

    /// The key's history-index entries with their recorded transaction
    /// timestamps, oldest first. A pure index scan: no block files are
    /// touched and no [`IoStats`] query counter moves, so planners can call
    /// this freely to cost access paths before executing one.
    pub fn history_profile(&self, key: &[u8]) -> Result<Vec<crate::index::HistoryEntryMeta>> {
        self.index.history_profile(key)
    }

    fn history_iterator(
        &self,
        key: &[u8],
        after_ts: Option<Timestamp>,
    ) -> Result<HistoryIterator<'_>> {
        IoStats::incr(&self.stats.ghfk_calls);
        // The span lives inside the iterator: per-block deserialize spans
        // nest under it for as long as the cursor is alive, so a trace
        // shows exactly which blocks each GHFK call paid for.
        let span = self
            .tel
            .span("ghfk")
            .with_label(String::from_utf8_lossy(key).into_owned());
        let locations: Vec<HistoryLocation> = match after_ts {
            None => self.index.history_locations(key)?,
            Some(bound) => self
                .index
                .history_profile(key)?
                .into_iter()
                .filter(|e| match e.timestamp {
                    Some(ts) => ts > bound,
                    None => true,
                })
                .map(|e| e.location)
                .collect(),
        };
        let remaining = locations.len();
        let mut blocks_hint = 0usize;
        let mut prev_block = None;
        for loc in &locations {
            if prev_block != Some(loc.block_num) {
                blocks_hint += 1;
                prev_block = Some(loc.block_num);
            }
        }
        let source = if self.coalesce_history {
            let mut runs: Vec<(BlockNum, Vec<TxNum>)> = Vec::new();
            for loc in locations {
                match runs.last_mut() {
                    Some((num, txs)) if *num == loc.block_num => txs.push(loc.tx_num),
                    _ => runs.push((loc.block_num, vec![loc.tx_num])),
                }
            }
            HistorySource::Coalesced {
                runs: runs.into_iter(),
                pending: VecDeque::new(),
            }
        } else {
            HistorySource::PerLocation {
                locations: locations.into_iter(),
                current_block: None,
            }
        };
        Ok(HistoryIterator {
            ledger: self,
            key: Bytes::copy_from_slice(key),
            source,
            remaining,
            blocks_hint,
            span,
        })
    }

    /// Direct access to the state database (used by index-maintenance code
    /// that must bypass call counting).
    pub fn state_db(&self) -> &StateDb {
        &self.state
    }

    /// Walk the whole chain verifying the prev-hash links and per-block
    /// data hashes. Returns the tip hash on success.
    pub fn verify_chain(&self) -> Result<Digest> {
        let height = self.height();
        let mut prev = Digest::ZERO;
        for num in 0..height {
            let block = self.get_block(num)?;
            if block.header.number != num {
                return Err(Error::corruption(
                    self.dir.join("blocks"),
                    format!("block {num} stored with number {}", block.header.number),
                ));
            }
            if block.header.prev_hash != prev {
                return Err(Error::corruption(
                    self.dir.join("blocks"),
                    format!("block {num} breaks the hash chain"),
                ));
            }
            // The read path uses trusted decode (frame CRC only); this
            // audit recomputes the full hash tree: every tx id and the
            // block data hash.
            for tx in &block.txs {
                let recoded = Transaction::decode(&tx.encode()).map_err(|e| {
                    Error::corruption(
                        self.dir.join("blocks"),
                        format!("block {num} holds a tx with a bad id: {e}"),
                    )
                })?;
                debug_assert_eq!(recoded.id, tx.id);
            }
            if Block::compute_data_hash(&block.txs) != block.header.data_hash {
                return Err(Error::corruption(
                    self.dir.join("blocks"),
                    format!("block {num} data hash mismatch"),
                ));
            }
            prev = block.hash();
        }
        Ok(prev)
    }

    /// Shared I/O statistics.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.stats.snapshot()
    }

    /// The shared stats handle (for components that record their own
    /// counters against this ledger).
    pub fn stats_handle(&self) -> Arc<IoStats> {
        self.stats.clone()
    }

    /// The telemetry handle shared by the block files, index store and
    /// state store. Enable it to record spans/histograms across the stack.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Refresh occupancy gauges on the shared telemetry registry: chain
    /// height, block-cache residency and the storage shape (SSTable count,
    /// WAL bytes, memtable occupancy) of the state and index stores. Cheap
    /// enough to call on every metrics scrape.
    pub fn publish_gauges(&self) {
        let reg = self.tel.registry();
        reg.gauge("ledger.height").set(self.height() as i64);
        if let Some(cache) = &self.cache {
            let stats = cache.stats();
            reg.gauge("ledger.cache.blocks")
                .set(stats.total.blocks as i64);
            reg.gauge("ledger.cache.hit_total")
                .set(stats.total.hits as i64);
            reg.gauge("ledger.cache.miss_total")
                .set(stats.total.misses as i64);
            reg.gauge("ledger.cache.eviction_total")
                .set(stats.total.evictions as i64);
            reg.gauge("ledger.cache.shards")
                .set(stats.shards.len() as i64);
            for (i, shard) in stats.shards.iter().enumerate() {
                let set = |metric: &str, v: u64| {
                    reg.gauge_owned(format!("ledger.cache.shard{i}.{metric}"))
                        .set(v as i64)
                };
                set("blocks", shard.blocks);
                set("hits", shard.hits);
                set("misses", shard.misses);
                set("evictions", shard.evictions);
            }
        }
        let set = |name: &'static str, v: u64| reg.gauge(name).set(v as i64);
        let state = self.state.store().storage_stats();
        set("statedb.sstables", state.sstables);
        set("statedb.wal_bytes", state.wal_bytes);
        set("statedb.memtable_entries", state.memtable_entries);
        set("statedb.memtable_bytes", state.memtable_bytes);
        let index = self.index.store().storage_stats();
        set("indexdb.sstables", index.sstables);
        set("indexdb.wal_bytes", index.wal_bytes);
        set("indexdb.memtable_entries", index.memtable_entries);
        set("indexdb.memtable_bytes", index.memtable_bytes);
        // Per-backend shape: which engine hosts each store (0 = lsm,
        // 1 = log) and the value-log occupancy counters. The log gauges
        // read zero on LSM-backed stores, so scrapes see a stable set of
        // series regardless of backend.
        reg.gauge("statedb.kv.backend")
            .set(state.backend.as_gauge());
        set("statedb.kv.log.data_files", state.data_files);
        set("statedb.kv.log.uncompacted_bytes", state.uncompacted_bytes);
        set("statedb.kv.log.compactions", state.compactions);
        reg.gauge("indexdb.kv.backend")
            .set(index.backend.as_gauge());
        set("indexdb.kv.log.data_files", index.data_files);
        set("indexdb.kv.log.uncompacted_bytes", index.uncompacted_bytes);
        set("indexdb.kv.log.compactions", index.compactions);
        // Write-path shape: fsync and group-commit totals per store. The
        // fsync count is the headline durability cost; the batch/commit
        // ratio shows how much coalescing (pipelined backlog or concurrent
        // group commit) is actually happening.
        let sm = self.state.store().metrics();
        set("statedb.wal_fsyncs", sm.wal_fsyncs);
        set("statedb.group_commits", sm.group_commits);
        set("statedb.group_commit_batches", sm.group_commit_batches);
        let im = self.index.store().metrics();
        set("indexdb.wal_fsyncs", im.wal_fsyncs);
        set("indexdb.group_commits", im.group_commits);
        set("indexdb.group_commit_batches", im.group_commit_batches);
        // Process-level memory: RSS from /proc plus counting-allocator
        // totals (zero when the binary runs on the system allocator).
        fabric_telemetry::alloc::publish_memory_gauges(&self.tel);
    }

    /// Flush state and index stores (clean shutdown aid; the block files
    /// are append-only and always consistent up to the last full frame).
    pub fn flush_stores(&self) -> Result<()> {
        self.drain_commits()?;
        self.index.flush()?;
        self.state.flush()?;
        Ok(())
    }

    /// Write a consistent, openable backup of the whole ledger into
    /// `dest`. The index and state stores are checkpointed FIRST, then the
    /// append-only block files are copied: opening the backup re-runs
    /// recovery, which re-indexes any blocks committed between the two
    /// steps, so a backup taken against a live ledger is still consistent.
    pub fn backup(&self, dest: impl Into<PathBuf>) -> Result<()> {
        self.drain_commits()?;
        let dest = dest.into();
        if dest.join("blocks").exists() {
            return Err(Error::InvalidArgument(format!(
                "backup destination {} already holds a ledger",
                dest.display()
            )));
        }
        let blocks_dest = dest.join("blocks");
        std::fs::create_dir_all(&blocks_dest)
            .map_err(|e| Error::io("creating backup dir".to_string(), e))?;
        self.index.checkpoint(dest.join("index"))?;
        self.state.checkpoint(dest.join("state"))?;
        for entry in std::fs::read_dir(self.blockfiles.dir())
            .map_err(|e| Error::io("listing block files".to_string(), e))?
        {
            let entry = entry.map_err(|e| Error::io("reading block dir".to_string(), e))?;
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("blockfile_"))
            {
                std::fs::copy(entry.path(), blocks_dest.join(entry.file_name()))
                    .map_err(|e| Error::io("copying block file".to_string(), e))?;
            }
        }
        Ok(())
    }

    /// Root directory of this ledger.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// One historical state of a key, as yielded by
/// [`Ledger::get_history_for_key`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoricalState {
    /// The value written; `None` when the write was a delete.
    pub value: Option<Bytes>,
    /// Timestamp of the writing transaction.
    pub timestamp: Timestamp,
    /// Block that committed the write.
    pub block_num: BlockNum,
    /// Transaction index within the block.
    pub tx_num: TxNum,
}

/// Where the iterator draws its entries from.
enum HistorySource {
    /// Seed read path: one index location at a time, reusing the last
    /// fetched block only across *consecutive* same-block entries.
    PerLocation {
        locations: std::vec::IntoIter<HistoryLocation>,
        /// The most recently deserialized block, reused while consecutive
        /// history entries fall in the same block.
        current_block: Option<(BlockNum, Arc<Block>)>,
    },
    /// Coalesced read path: locations grouped into per-block runs; each
    /// block is fetched exactly once, when its first entry is consumed.
    Coalesced {
        runs: std::vec::IntoIter<(BlockNum, Vec<TxNum>)>,
        /// Entries of the current run, already extracted from the block.
        pending: VecDeque<HistoricalState>,
    },
}

/// Lazy history cursor: deserializes blocks only as entries are consumed.
pub struct HistoryIterator<'l> {
    ledger: &'l Ledger,
    key: Bytes,
    source: HistorySource,
    /// Entries not yet yielded.
    remaining: usize,
    /// Distinct blocks the full scan would touch (fixed at construction).
    blocks_hint: usize,
    /// Open `ghfk` span; per-block `block.deserialize` spans nest under
    /// it until the iterator is dropped. Each consumed entry bumps the
    /// span's `entries` metric.
    span: SpanGuard,
}

fn stale_index_error(block_num: BlockNum, tx_num: TxNum) -> Error {
    Error::NotFound(format!(
        "tx {tx_num} in block {block_num} (history index stale?)"
    ))
}

/// Project one transaction onto `key`'s historical state.
fn state_from_tx(
    key: &Bytes,
    tx: &Transaction,
    block_num: BlockNum,
    tx_num: TxNum,
) -> Result<HistoricalState> {
    let write = tx.writes.iter().find(|w| w.key == *key).ok_or_else(|| {
        Error::NotFound(format!(
            "write for key {:?} in block {} tx {}",
            String::from_utf8_lossy(key),
            block_num,
            tx_num
        ))
    })?;
    Ok(HistoricalState {
        value: write.value.clone(),
        timestamp: tx.timestamp,
        block_num,
        tx_num,
    })
}

impl<'l> HistoryIterator<'l> {
    /// Next historical state, oldest first.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<HistoricalState>> {
        let ledger = self.ledger;
        let key = &self.key;
        let state = match &mut self.source {
            HistorySource::PerLocation {
                locations,
                current_block,
            } => {
                let Some(loc) = locations.next() else {
                    return Ok(None);
                };
                let block = match current_block {
                    Some((num, block)) if *num == loc.block_num => block.clone(),
                    _ => {
                        let block = ledger.get_block(loc.block_num)?;
                        *current_block = Some((loc.block_num, block.clone()));
                        block
                    }
                };
                let tx = block
                    .txs
                    .get(loc.tx_num as usize)
                    .ok_or_else(|| stale_index_error(loc.block_num, loc.tx_num))?;
                state_from_tx(key, tx, loc.block_num, loc.tx_num)?
            }
            HistorySource::Coalesced { runs, pending } => {
                while pending.is_empty() {
                    let Some((block_num, tx_nums)) = runs.next() else {
                        return Ok(None);
                    };
                    if ledger.cache.is_some() {
                        // Cached path: fetch (or reuse) the whole block so
                        // the cache can serve later scans.
                        let block = ledger.get_block(block_num)?;
                        for &t in &tx_nums {
                            let tx = block
                                .txs
                                .get(t as usize)
                                .ok_or_else(|| stale_index_error(block_num, t))?;
                            pending.push_back(state_from_tx(key, tx, block_num, t)?);
                        }
                    } else {
                        // Uncached path: selective decode of just this
                        // run's txs through the block's offset table.
                        let location = ledger
                            .index
                            .block_location(block_num)?
                            .ok_or_else(|| Error::NotFound(format!("block {block_num}")))?;
                        let partial = ledger.blockfiles.read_block_txs(location, &tx_nums)?;
                        for (t, tx) in &partial.txs {
                            pending.push_back(state_from_tx(key, tx, block_num, *t)?);
                        }
                    }
                }
                pending.pop_front().expect("pending run is non-empty")
            }
        };
        self.span.record("entries", 1);
        self.remaining = self.remaining.saturating_sub(1);
        Ok(Some(state))
    }

    /// Drain the remaining history into a vector.
    pub fn collect_all(mut self) -> Result<Vec<HistoricalState>> {
        let mut out = Vec::new();
        while let Some(state) = self.next()? {
            out.push(state);
        }
        Ok(out)
    }

    /// How many history entries remain (index entries, not blocks).
    pub fn remaining_hint(&self) -> usize {
        self.remaining
    }

    /// How many **distinct blocks** the full scan would deserialize at
    /// most, fixed at construction. A tighter planning bound than
    /// [`HistoryIterator::remaining_hint`] whenever a block holds several
    /// of the key's writes.
    pub fn blocks_hint(&self) -> usize {
        self.blocks_hint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockfile::BlockLocation;
    use crate::tx::{KvRead, KvWrite};

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "ledger-test-{}-{tag}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn put_tx(ts: u64, key: &str, value: &str) -> Transaction {
        Transaction::new(
            ts,
            vec![],
            vec![KvWrite {
                key: Bytes::copy_from_slice(key.as_bytes()),
                value: Some(Bytes::copy_from_slice(value.as_bytes())),
            }],
        )
        .unwrap()
    }

    fn open(dir: &TempDir) -> Ledger {
        Ledger::open(&dir.0, LedgerConfig::small_for_tests()).unwrap()
    }

    #[test]
    fn submit_commits_blocks_at_batch_size() {
        let dir = TempDir::new("batch");
        let ledger = open(&dir); // block_max_txs = 3
        assert!(ledger.submit(put_tx(1, "a", "1")).unwrap().is_empty());
        assert!(ledger.submit(put_tx(2, "b", "2")).unwrap().is_empty());
        let committed = ledger.submit(put_tx(3, "c", "3")).unwrap();
        assert_eq!(committed, vec![0]);
        assert_eq!(ledger.height(), 1);
        assert_eq!(ledger.pending_txs(), 0);
    }

    #[test]
    fn cut_block_flushes_partial_batch() {
        let dir = TempDir::new("cut");
        let ledger = open(&dir);
        ledger.submit(put_tx(1, "a", "1")).unwrap();
        assert_eq!(ledger.height(), 0);
        assert_eq!(ledger.cut_block().unwrap(), Some(0));
        assert_eq!(ledger.height(), 1);
        assert_eq!(ledger.cut_block().unwrap(), None);
    }

    #[test]
    fn state_reflects_committed_writes_only() {
        let dir = TempDir::new("state");
        let ledger = open(&dir);
        ledger.submit(put_tx(1, "k", "v")).unwrap();
        // Still pending: not visible.
        assert!(ledger.get_state(b"k").unwrap().is_none());
        ledger.cut_block().unwrap();
        let vv = ledger.get_state(b"k").unwrap().unwrap();
        assert_eq!(vv.value, Bytes::from_static(b"v"));
        assert_eq!(vv.version.block_num, 0);
    }

    #[test]
    fn history_returns_all_states_oldest_first() {
        let dir = TempDir::new("history");
        let ledger = open(&dir);
        for (ts, v) in [(10, "v1"), (20, "v2"), (30, "v3"), (40, "v4")] {
            ledger.submit(put_tx(ts, "k", v)).unwrap();
        }
        ledger.cut_block().unwrap();
        let history = ledger
            .get_history_for_key(b"k")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(history.len(), 4);
        let values: Vec<&[u8]> = history
            .iter()
            .map(|h| h.value.as_deref().unwrap())
            .collect();
        assert_eq!(values, vec![b"v1", b"v2", b"v3", b"v4"]);
        let stamps: Vec<u64> = history.iter().map(|h| h.timestamp).collect();
        assert_eq!(stamps, vec![10, 20, 30, 40]);
    }

    #[test]
    fn lazy_history_deserializes_only_touched_blocks() {
        let dir = TempDir::new("lazy");
        let ledger = open(&dir); // 3 txs per block
        for i in 0..9 {
            ledger.submit(put_tx(i, "k", &format!("v{i}"))).unwrap();
        }
        assert_eq!(ledger.height(), 3);
        let before = ledger.stats();
        let mut iter = ledger.get_history_for_key(b"k").unwrap();
        // Consume only the first entry: exactly one block deserialized.
        let first = iter.next().unwrap().unwrap();
        assert_eq!(first.value.as_deref(), Some(&b"v0"[..]));
        let after = ledger.stats();
        assert_eq!(after.delta(&before).blocks_deserialized, 1);
        assert_eq!(after.delta(&before).ghfk_calls, 1);
        // Consuming the rest touches the other two blocks.
        while iter.next().unwrap().is_some() {}
        let done = ledger.stats();
        assert_eq!(done.delta(&before).blocks_deserialized, 3);
    }

    #[test]
    fn history_reuses_block_across_entries_in_same_block() {
        let dir = TempDir::new("reuse");
        let ledger = open(&dir);
        // Three txs writing the SAME key land in one block (batch size 3).
        for i in 0..3 {
            ledger.submit(put_tx(i, "k", &format!("v{i}"))).unwrap();
        }
        assert_eq!(ledger.height(), 1);
        let before = ledger.stats();
        let history = ledger
            .get_history_for_key(b"k")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(ledger.stats().delta(&before).blocks_deserialized, 1);
    }

    #[test]
    fn mvcc_conflict_invalidates_tx() {
        let dir = TempDir::new("mvcc");
        let ledger = open(&dir);
        ledger.submit(put_tx(1, "k", "v0")).unwrap();
        ledger.cut_block().unwrap();
        let v0 = ledger.get_state(b"k").unwrap().unwrap().version;
        // Two txs read version v0 and write; the second must conflict.
        let read = KvRead {
            key: Bytes::from_static(b"k"),
            version: Some(v0),
        };
        let t1 = Transaction::new(
            2,
            vec![read.clone()],
            vec![KvWrite {
                key: Bytes::from_static(b"k"),
                value: Some(Bytes::from_static(b"first")),
            }],
        )
        .unwrap();
        let t2 = Transaction::new(
            3,
            vec![read],
            vec![KvWrite {
                key: Bytes::from_static(b"k"),
                value: Some(Bytes::from_static(b"second")),
            }],
        )
        .unwrap();
        ledger.submit(t1).unwrap();
        ledger.submit(t2).unwrap();
        ledger.cut_block().unwrap();
        // First write won; second was invalidated.
        assert_eq!(
            ledger.get_state(b"k").unwrap().unwrap().value,
            Bytes::from_static(b"first")
        );
        let block = ledger.get_block(1).unwrap();
        assert_eq!(block.validation[0], ValidationCode::Valid);
        assert_eq!(block.validation[1], ValidationCode::MvccConflict);
        // Invalid tx must not appear in history.
        let history = ledger
            .get_history_for_key(b"k")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(history.len(), 2); // v0 + "first"
    }

    #[test]
    fn reopen_preserves_chain_and_state() {
        let dir = TempDir::new("reopen");
        let tip;
        {
            let ledger = open(&dir);
            for i in 0..7 {
                ledger.submit(put_tx(i, &format!("key{i}"), "v")).unwrap();
            }
            ledger.cut_block().unwrap();
            tip = (ledger.height(), ledger.last_hash());
            ledger.flush_stores().unwrap();
        }
        let ledger = open(&dir);
        assert_eq!((ledger.height(), ledger.last_hash()), tip);
        assert!(ledger.get_state(b"key3").unwrap().is_some());
        ledger.verify_chain().unwrap();
    }

    #[test]
    fn verify_chain_passes_on_clean_ledger() {
        let dir = TempDir::new("verify");
        let ledger = open(&dir);
        for i in 0..12 {
            ledger
                .submit(put_tx(i, &format!("k{}", i % 4), &format!("v{i}")))
                .unwrap();
        }
        ledger.cut_block().unwrap();
        let tip = ledger.verify_chain().unwrap();
        assert_eq!(tip, ledger.last_hash());
    }

    #[test]
    fn missing_block_is_not_found() {
        let dir = TempDir::new("missing");
        let ledger = open(&dir);
        assert!(matches!(ledger.get_block(99), Err(Error::NotFound(_))));
    }

    #[test]
    fn delete_removes_from_state_but_stays_in_history() {
        let dir = TempDir::new("delete");
        let ledger = open(&dir);
        ledger.submit(put_tx(1, "k", "v")).unwrap();
        let del = Transaction::new(
            2,
            vec![],
            vec![KvWrite {
                key: Bytes::from_static(b"k"),
                value: None,
            }],
        )
        .unwrap();
        ledger.submit(del).unwrap();
        ledger.cut_block().unwrap();
        assert!(ledger.get_state(b"k").unwrap().is_none());
        let history = ledger
            .get_history_for_key(b"k")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(history.len(), 2);
        assert!(history[1].value.is_none());
    }

    #[test]
    fn cache_serves_repeat_reads_without_deserializing() {
        let dir = TempDir::new("cache");
        let config = LedgerConfig::small_for_tests().with_cache_blocks(8);
        let ledger = Ledger::open(&dir.0, config).unwrap();
        for i in 0..3 {
            ledger.submit(put_tx(i, "k", &format!("v{i}"))).unwrap();
        }
        let before = ledger.stats();
        ledger
            .get_history_for_key(b"k")
            .unwrap()
            .collect_all()
            .unwrap();
        ledger
            .get_history_for_key(b"k")
            .unwrap()
            .collect_all()
            .unwrap();
        let d = ledger.stats().delta(&before);
        assert_eq!(d.blocks_deserialized, 1, "second read should hit cache");
        assert!(d.cache_hits >= 1);
    }

    #[test]
    fn get_transaction_by_id() {
        let dir = TempDir::new("txid");
        let ledger = open(&dir);
        let tx = put_tx(5, "k", "v");
        let id = tx.id;
        ledger.submit(tx).unwrap();
        ledger.cut_block().unwrap();
        let (found, block_num, tx_num, code) =
            ledger.get_transaction(&id).unwrap().expect("tx indexed");
        assert_eq!(found.id, id);
        assert_eq!((block_num, tx_num), (0, 0));
        assert_eq!(code, ValidationCode::Valid);
        // Unknown id → None.
        let ghost = put_tx(99, "ghost", "x");
        assert!(ledger.get_transaction(&ghost.id).unwrap().is_none());
    }

    #[test]
    fn get_transaction_reports_invalid_code() {
        let dir = TempDir::new("txid-invalid");
        let ledger = open(&dir);
        ledger.submit(put_tx(1, "k", "v0")).unwrap();
        ledger.cut_block().unwrap();
        let v0 = ledger.get_state(b"k").unwrap().unwrap().version;
        let read = KvRead {
            key: Bytes::from_static(b"k"),
            version: Some(v0),
        };
        let t1 = Transaction::new(
            2,
            vec![read.clone()],
            vec![KvWrite {
                key: Bytes::from_static(b"k"),
                value: Some(Bytes::from_static(b"a")),
            }],
        )
        .unwrap();
        let t2 = Transaction::new(
            3,
            vec![read],
            vec![KvWrite {
                key: Bytes::from_static(b"k"),
                value: Some(Bytes::from_static(b"b")),
            }],
        )
        .unwrap();
        let id2 = t2.id;
        ledger.submit(t1).unwrap();
        ledger.submit(t2).unwrap();
        ledger.cut_block().unwrap();
        let (_, _, _, code) = ledger.get_transaction(&id2).unwrap().unwrap();
        assert_eq!(code, ValidationCode::MvccConflict);
    }

    #[test]
    fn subscribers_receive_commit_events() {
        let dir = TempDir::new("subscribe");
        let ledger = open(&dir); // batch size 3
        let rx = ledger.subscribe();
        for i in 0..6 {
            ledger
                .submit(put_tx(i * 10, &format!("k{i}"), "v"))
                .unwrap();
        }
        ledger.submit(put_tx(100, "last", "v")).unwrap();
        ledger.cut_block().unwrap();
        let events: Vec<CommitEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 3, "two full blocks + one forced cut");
        assert_eq!(events[0].block_num, 0);
        assert_eq!(events[0].tx_count, 3);
        assert_eq!(events[0].max_timestamp, 20);
        assert_eq!(events[2].tx_count, 1);
        assert_eq!(events[2].max_timestamp, 100);
    }

    #[test]
    fn dropped_subscriber_does_not_block_commits() {
        let dir = TempDir::new("unsubscribe");
        let ledger = open(&dir);
        let rx = ledger.subscribe();
        drop(rx);
        for i in 0..4 {
            ledger.submit(put_tx(i, &format!("k{i}"), "v")).unwrap();
        }
        ledger.cut_block().unwrap();
        assert_eq!(ledger.height(), 2);
    }

    #[test]
    fn publish_gauges_reports_height_cache_and_storage_shape() {
        let dir = TempDir::new("gauges");
        let tel = Telemetry::enabled();
        let config = LedgerConfig::small_for_tests().with_cache_blocks(8);
        let ledger = Ledger::open_with_telemetry(&dir.0, config, tel.clone()).unwrap();
        for i in 0..6 {
            ledger.submit(put_tx(i, "k", &format!("v{i}"))).unwrap();
        }
        // Warm the block cache so the residency gauge is non-zero.
        ledger.get_block(1).unwrap();
        ledger.publish_gauges();
        let snap = tel.snapshot();
        assert_eq!(snap.gauge("ledger.height"), Some(2));
        assert!(snap.gauge("ledger.cache.blocks").unwrap_or(0) >= 1);
        for name in [
            "statedb.sstables",
            "statedb.wal_bytes",
            "statedb.memtable_entries",
            "statedb.memtable_bytes",
            "indexdb.sstables",
            "indexdb.wal_bytes",
            "indexdb.memtable_entries",
            "indexdb.memtable_bytes",
        ] {
            assert!(snap.gauge(name).is_some(), "missing gauge {name}");
        }
        // Commits wrote through both stores' WALs.
        assert!(snap.gauge("statedb.wal_bytes").unwrap() > 0);
        assert!(snap.gauge("indexdb.wal_bytes").unwrap() > 0);
    }

    #[test]
    fn telemetry_nests_block_deserialize_under_ghfk() {
        let dir = TempDir::new("tel-ghfk");
        let tel = Telemetry::enabled();
        let ledger =
            Ledger::open_with_telemetry(&dir.0, LedgerConfig::small_for_tests(), tel.clone())
                .unwrap();
        for i in 0..9 {
            ledger.submit(put_tx(i, "k", &format!("v{i}"))).unwrap();
        }
        assert_eq!(ledger.height(), 3);
        tel.reset();
        let before = ledger.stats();
        ledger
            .get_history_for_key(b"k")
            .unwrap()
            .collect_all()
            .unwrap();
        let deserialized = ledger.stats().delta(&before).blocks_deserialized;
        assert_eq!(deserialized, 3);
        let tree = tel.span_tree();
        let ghfk: Vec<_> = tree.iter().filter(|n| n.record.name == "ghfk").collect();
        assert_eq!(ghfk.len(), 1, "one root ghfk span, got: {tree:?}");
        assert_eq!(ghfk[0].record.label.as_deref(), Some("k"));
        assert_eq!(ghfk[0].count_named("block.deserialize"), 3);
        assert_eq!(ghfk[0].record.metric("entries"), Some(9));
        // The registry counter tracks IoStats exactly.
        assert_eq!(
            tel.snapshot().counter("ledger.blocks.deserialized"),
            deserialized
        );
    }

    #[test]
    fn telemetry_records_commit_pipeline_phases() {
        let dir = TempDir::new("tel-commit");
        let tel = Telemetry::enabled();
        let ledger =
            Ledger::open_with_telemetry(&dir.0, LedgerConfig::small_for_tests(), tel.clone())
                .unwrap();
        for i in 0..3 {
            ledger.submit(put_tx(i, &format!("k{i}"), "v")).unwrap();
        }
        assert_eq!(ledger.height(), 1);
        let tree = tel.span_tree();
        let commit = tree
            .iter()
            .find(|n| n.record.name == "ledger.commit")
            .expect("commit span");
        assert_eq!(commit.record.metric("txs"), Some(3));
        for phase in [
            "commit.mvcc_validate",
            "commit.assemble",
            "commit.append",
            "commit.index",
            "commit.statedb",
        ] {
            assert_eq!(commit.count_named(phase), 1, "missing {phase}");
        }
        // The shared handle reaches the underlying kvstores too: a commit
        // writes both the index and state stores through their WALs.
        assert!(tel.snapshot().histogram("kv.wal.append").is_some());
    }

    #[test]
    fn disabled_telemetry_ledger_records_nothing() {
        let dir = TempDir::new("tel-off");
        let ledger = open(&dir);
        for i in 0..3 {
            ledger.submit(put_tx(i, "k", &format!("v{i}"))).unwrap();
        }
        ledger
            .get_history_for_key(b"k")
            .unwrap()
            .collect_all()
            .unwrap();
        assert!(ledger.telemetry().drain_spans().is_empty());
        // Queue probes register their instruments at construction, so the
        // snapshot lists them — but disabled telemetry records no values.
        let snap = ledger.telemetry().snapshot();
        assert!(snap.counters.iter().all(|(_, v)| *v == 0), "{snap:?}");
    }

    #[test]
    fn failed_block_read_does_not_record_a_deserialize_span() {
        let dir = TempDir::new("tel-corrupt");
        let tel = Telemetry::enabled();
        {
            let ledger =
                Ledger::open_with_telemetry(&dir.0, LedgerConfig::small_for_tests(), tel.clone())
                    .unwrap();
            for i in 0..3 {
                ledger.submit(put_tx(i, "k", &format!("v{i}"))).unwrap();
            }
            ledger.flush_stores().unwrap();
        }
        // Flip a payload byte in the only block file.
        let path = dir.0.join("blocks").join("blockfile_000000");
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n - 5] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let stats = IoStats::new_shared();
        let mgr = BlockFileManager::open_with_telemetry(
            dir.0.join("blocks"),
            1 << 20,
            stats.clone(),
            tel.clone(),
        )
        .unwrap();
        tel.reset();
        let loc = BlockLocation {
            file_num: 0,
            offset: 0,
            len: n as u32,
        };
        assert!(mgr.read_block(loc).is_err());
        let spans = tel.drain_spans();
        assert!(
            spans.iter().all(|s| s.name != "block.deserialize"),
            "failed read must not count: {spans:?}"
        );
        assert_eq!(stats.snapshot().blocks_deserialized, 0);
        assert_eq!(tel.snapshot().counter("ledger.blocks.deserialized"), 0);
    }

    #[test]
    fn coalescing_off_returns_identical_history() {
        let dir_on = TempDir::new("coalesce-on");
        let dir_off = TempDir::new("coalesce-off");
        let on = Ledger::open(&dir_on.0, LedgerConfig::small_for_tests()).unwrap();
        let off = Ledger::open(
            &dir_off.0,
            LedgerConfig::small_for_tests().with_coalesce_history(false),
        )
        .unwrap();
        // Interleave three keys so blocks hold a mix of txs.
        for ledger in [&on, &off] {
            for i in 0..12u64 {
                let key = ["a", "b", "c"][(i % 3) as usize];
                ledger.submit(put_tx(i, key, &format!("v{i}"))).unwrap();
            }
            ledger.cut_block().unwrap();
        }
        for key in [b"a".as_slice(), b"b", b"c"] {
            let h_on = on.get_history_for_key(key).unwrap().collect_all().unwrap();
            let h_off = off.get_history_for_key(key).unwrap().collect_all().unwrap();
            assert_eq!(h_on, h_off, "key {:?}", String::from_utf8_lossy(key));
            assert_eq!(h_on.len(), 4);
        }
        // A single scan touches each block once either way: coalescing
        // never changes the paper's blocks_deserialized for one pass.
        let b_on = on.stats();
        let b_off = off.stats();
        on.get_history_for_key(b"a").unwrap().collect_all().unwrap();
        off.get_history_for_key(b"a")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(
            on.stats().delta(&b_on).blocks_deserialized,
            off.stats().delta(&b_off).blocks_deserialized
        );
    }

    #[test]
    fn selective_decode_skips_unrelated_txs() {
        let dir_on = TempDir::new("selective-on");
        let dir_off = TempDir::new("selective-off");
        let on = Ledger::open(&dir_on.0, LedgerConfig::small_for_tests()).unwrap();
        let off = Ledger::open(
            &dir_off.0,
            LedgerConfig::small_for_tests().with_coalesce_history(false),
        )
        .unwrap();
        // Each block (3 txs) holds exactly one tx for key "a".
        for ledger in [&on, &off] {
            for i in 0..12u64 {
                let key = ["a", "b", "c"][(i % 3) as usize];
                ledger.submit(put_tx(i, key, &format!("v{i}"))).unwrap();
            }
            ledger.cut_block().unwrap();
        }
        let before = on.stats();
        on.get_history_for_key(b"a").unwrap().collect_all().unwrap();
        let d = on.stats().delta(&before);
        assert_eq!(d.blocks_deserialized, 4);
        assert_eq!(d.txs_decoded, 4, "only key-a txs decoded");
        let before = off.stats();
        off.get_history_for_key(b"a")
            .unwrap()
            .collect_all()
            .unwrap();
        let d = off.stats().delta(&before);
        assert_eq!(d.blocks_deserialized, 4);
        assert_eq!(d.txs_decoded, 12, "per-location path decodes full blocks");
    }

    #[test]
    fn coalesced_cached_ghfk_reduces_blocks_vs_seed_path() {
        // The acceptance-criteria ablation, as a test: repeated GHFK scans
        // with the overhaul on (coalescing + sharded cache) deserialize
        // fewer blocks than the seed read path, with identical results.
        let dir_seed = TempDir::new("overhaul-seed");
        let dir_new = TempDir::new("overhaul-new");
        let seed = Ledger::open(
            &dir_seed.0,
            LedgerConfig::small_for_tests().with_coalesce_history(false),
        )
        .unwrap();
        let new = Ledger::open(
            &dir_new.0,
            LedgerConfig::small_for_tests()
                .with_cache_blocks(64)
                .with_cache_shards(4),
        )
        .unwrap();
        for ledger in [&seed, &new] {
            for i in 0..18u64 {
                ledger.submit(put_tx(i, "k", &format!("v{i}"))).unwrap();
            }
            ledger.cut_block().unwrap();
        }
        let (b_seed, b_new) = (seed.stats(), new.stats());
        let mut h_seed = Vec::new();
        let mut h_new = Vec::new();
        for _ in 0..3 {
            h_seed = seed
                .get_history_for_key(b"k")
                .unwrap()
                .collect_all()
                .unwrap();
            h_new = new
                .get_history_for_key(b"k")
                .unwrap()
                .collect_all()
                .unwrap();
        }
        assert_eq!(h_seed, h_new, "results must be bit-identical");
        assert_eq!(h_new.len(), 18);
        let d_seed = seed.stats().delta(&b_seed);
        let d_new = new.stats().delta(&b_new);
        // Seed: 6 blocks × 3 scans. Overhaul: 6 blocks once, then cache.
        assert_eq!(d_seed.blocks_deserialized, 18);
        assert_eq!(d_new.blocks_deserialized, 6);
        assert!(d_new.cache_hits >= 12);
    }

    #[test]
    fn remaining_hint_tracks_consumption() {
        let dir = TempDir::new("hint");
        let ledger = open(&dir);
        for i in 0..5u64 {
            ledger.submit(put_tx(i, "k", &format!("v{i}"))).unwrap();
        }
        ledger.cut_block().unwrap();
        let mut iter = ledger.get_history_for_key(b"k").unwrap();
        assert_eq!(iter.remaining_hint(), 5);
        iter.next().unwrap().unwrap();
        assert_eq!(iter.remaining_hint(), 4);
        while iter.next().unwrap().is_some() {}
        assert_eq!(iter.remaining_hint(), 0);
    }

    #[test]
    fn publish_gauges_exports_cache_shard_counters() {
        let dir = TempDir::new("gauges-shards");
        let tel = Telemetry::enabled();
        let config = LedgerConfig::small_for_tests()
            .with_cache_blocks(8)
            .with_cache_shards(2);
        let ledger = Ledger::open_with_telemetry(&dir.0, config, tel.clone()).unwrap();
        for i in 0..6 {
            ledger.submit(put_tx(i, "k", &format!("v{i}"))).unwrap();
        }
        ledger.get_block(0).unwrap();
        ledger.get_block(0).unwrap(); // second read: a hit
        ledger.publish_gauges();
        let snap = tel.snapshot();
        assert_eq!(snap.gauge("ledger.cache.shards"), Some(2));
        assert!(snap.gauge("ledger.cache.hit_total").unwrap() >= 1);
        assert!(snap.gauge("ledger.cache.blocks").unwrap() >= 1);
        for name in [
            "ledger.cache.shard0.blocks",
            "ledger.cache.shard0.hits",
            "ledger.cache.shard0.misses",
            "ledger.cache.shard0.evictions",
            "ledger.cache.shard1.blocks",
        ] {
            assert!(snap.gauge(name).is_some(), "missing gauge {name}");
        }
        // Block 0 lives in shard 0: its hit landed there.
        assert!(snap.gauge("ledger.cache.shard0.hits").unwrap() >= 1);
    }

    fn open_pipelined(dir: &TempDir) -> Ledger {
        Ledger::open(&dir.0, LedgerConfig::small_for_tests().with_pipeline(true)).unwrap()
    }

    /// Read every blockfile's raw bytes, sorted by file name.
    fn blockfile_bytes(dir: &TempDir) -> Vec<(String, Vec<u8>)> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir.0.join("blocks")).unwrap() {
            let entry = entry.unwrap();
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("blockfile_") {
                out.push((name, std::fs::read(entry.path()).unwrap()));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn pipelined_commit_is_byte_identical_to_serial() {
        let dir_serial = TempDir::new("pipe-eq-serial");
        let dir_pipe = TempDir::new("pipe-eq-pipe");
        let serial = open(&dir_serial);
        let pipelined = open_pipelined(&dir_pipe);
        for ledger in [&serial, &pipelined] {
            for i in 0..20u64 {
                let key = ["a", "b", "c"][(i % 3) as usize];
                ledger.submit(put_tx(i, key, &format!("v{i}"))).unwrap();
            }
            ledger.cut_block().unwrap();
            ledger.drain_commits().unwrap();
        }
        assert_eq!(serial.height(), pipelined.height());
        assert_eq!(serial.last_hash(), pipelined.last_hash());
        assert_eq!(
            blockfile_bytes(&dir_serial),
            blockfile_bytes(&dir_pipe),
            "blockfiles must be byte-identical"
        );
        assert_eq!(
            serial.get_state_by_range(None, None).unwrap(),
            pipelined.get_state_by_range(None, None).unwrap(),
            "state dbs must hold identical contents"
        );
        pipelined.verify_chain().unwrap();
    }

    #[test]
    fn pipelined_mvcc_sees_in_flight_writes() {
        // Dependent read-modify-write chains: each tx reads the version
        // the *previous block* wrote. Without the overlay, validation
        // would consult a lagging state db and flag false conflicts.
        let dir = TempDir::new("pipe-overlay");
        let ledger = open_pipelined(&dir); // batch size 3
        ledger.submit(put_tx(0, "k", "v0")).unwrap();
        ledger.cut_block().unwrap();
        let mut version = Some(Version {
            block_num: 0,
            tx_num: 0,
        });
        for round in 1..6u64 {
            let tx = Transaction::new(
                round * 10,
                vec![KvRead {
                    key: Bytes::from_static(b"k"),
                    version,
                }],
                vec![KvWrite {
                    key: Bytes::from_static(b"k"),
                    value: Some(Bytes::copy_from_slice(format!("v{round}").as_bytes())),
                }],
            )
            .unwrap();
            ledger.submit(tx).unwrap();
            ledger.cut_block().unwrap();
            version = Some(Version {
                block_num: round,
                tx_num: 0,
            });
        }
        ledger.drain_commits().unwrap();
        // Every tx must have validated: the final state is the last write.
        assert_eq!(
            ledger.get_state(b"k").unwrap().unwrap().value,
            Bytes::from_static(b"v5")
        );
        for num in 0..6 {
            let block = ledger.get_block(num).unwrap();
            assert_eq!(
                block.validation[0],
                ValidationCode::Valid,
                "block {num} should commit cleanly against in-flight state"
            );
        }
    }

    #[test]
    fn pipelined_subscribers_get_events_in_block_order() {
        let dir = TempDir::new("pipe-subscribe");
        let ledger = open_pipelined(&dir); // batch size 3
        let rx = ledger.subscribe();
        for i in 0..9u64 {
            ledger
                .submit(put_tx(i * 10, &format!("k{i}"), "v"))
                .unwrap();
        }
        ledger.drain_commits().unwrap();
        let events: Vec<CommitEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 3);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.block_num, i as u64);
            assert_eq!(e.tx_count, 3);
        }
    }

    #[test]
    fn pipelined_reopen_recovers_cleanly() {
        let dir = TempDir::new("pipe-reopen");
        let tip;
        {
            let ledger = open_pipelined(&dir);
            for i in 0..10u64 {
                ledger.submit(put_tx(i, &format!("k{i}"), "v")).unwrap();
            }
            ledger.cut_block().unwrap();
            ledger.flush_stores().unwrap(); // drains first
            tip = (ledger.height(), ledger.last_hash());
        }
        // Reopen serially: recovery must find a consistent ledger.
        let ledger = open(&dir);
        assert_eq!((ledger.height(), ledger.last_hash()), tip);
        ledger.verify_chain().unwrap();
        assert!(ledger.get_state(b"k7").unwrap().is_some());
    }

    #[test]
    fn drain_commits_is_a_noop_on_serial_path() {
        let dir = TempDir::new("drain-serial");
        let ledger = open(&dir);
        ledger.submit(put_tx(1, "k", "v")).unwrap();
        ledger.drain_commits().unwrap();
    }

    #[test]
    fn range_scan_counts_and_returns_sorted() {
        let dir = TempDir::new("rangescan");
        let ledger = open(&dir);
        for (i, k) in ["s3", "s1", "c2", "s2"].iter().enumerate() {
            ledger.submit(put_tx(i as u64, k, "v")).unwrap();
        }
        ledger.cut_block().unwrap();
        let rows = ledger.get_state_by_range(Some(b"s"), Some(b"t")).unwrap();
        let keys: Vec<&[u8]> = rows.iter().map(|(k, _)| &k[..]).collect();
        assert_eq!(keys, vec![b"s1", b"s2", b"s3"]);
        assert_eq!(ledger.stats().range_scan_calls, 1);
    }

    /// A conflict-heavy stream: read-modify-write chains over a tiny key
    /// space with a mix of fresh, stale and absent claimed versions plus
    /// delete tombstones, so most blocks carry intra-block dependencies.
    fn contended_txs() -> Vec<Transaction> {
        let keys = ["a", "b", "c"];
        let mut txs = Vec::new();
        let mut state = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..60u64 {
            let read_key = keys[(next() % 3) as usize];
            let version = match next() % 3 {
                0 => None,
                1 => Some(Version {
                    block_num: next() % 5,
                    tx_num: (next() % 3) as TxNum,
                }),
                // Matches what an earlier same-block writer may produce.
                _ => Some(Version {
                    block_num: i / 3,
                    tx_num: (next() % 3) as TxNum,
                }),
            };
            let write_key = keys[(next() % 3) as usize];
            txs.push(
                Transaction::new(
                    i,
                    vec![KvRead {
                        key: Bytes::copy_from_slice(read_key.as_bytes()),
                        version,
                    }],
                    vec![KvWrite {
                        key: Bytes::copy_from_slice(write_key.as_bytes()),
                        value: (next() % 4 != 0)
                            .then(|| Bytes::copy_from_slice(format!("v{i}").as_bytes())),
                    }],
                )
                .unwrap(),
            );
        }
        txs
    }

    #[test]
    fn parallel_validation_is_byte_identical_to_serial() {
        let dir_serial = TempDir::new("pv-eq-serial");
        let dir_par = TempDir::new("pv-eq-par");
        let serial = open(&dir_serial);
        let parallel = Ledger::open(
            &dir_par.0,
            LedgerConfig::small_for_tests().with_validate_threads(4),
        )
        .unwrap();
        for ledger in [&serial, &parallel] {
            for tx in contended_txs() {
                ledger.submit(tx).unwrap();
            }
            ledger.cut_block().unwrap();
        }
        assert_eq!(serial.height(), parallel.height());
        assert_eq!(serial.last_hash(), parallel.last_hash());
        assert_eq!(
            blockfile_bytes(&dir_serial),
            blockfile_bytes(&dir_par),
            "blockfiles (including validation codes) must be byte-identical"
        );
        assert_eq!(
            serial.get_state_by_range(None, None).unwrap(),
            parallel.get_state_by_range(None, None).unwrap()
        );
        // Both conflict somewhere and validate somewhere, or the workload
        // wouldn't exercise order sensitivity.
        let mut valid = 0;
        let mut conflicts = 0;
        for num in 0..parallel.height() {
            for code in &parallel.get_block(num).unwrap().validation {
                match code {
                    ValidationCode::Valid => valid += 1,
                    ValidationCode::MvccConflict => conflicts += 1,
                }
            }
        }
        assert!(
            valid > 0 && conflicts > 0,
            "valid={valid} conflicts={conflicts}"
        );
        parallel.verify_chain().unwrap();
    }

    #[test]
    fn parallel_validation_composes_with_pipeline_byte_identically() {
        let dir_serial = TempDir::new("pv-pipe-serial");
        let dir_par = TempDir::new("pv-pipe-par");
        let serial = open(&dir_serial);
        let parallel = Ledger::open(
            &dir_par.0,
            LedgerConfig::small_for_tests()
                .with_pipeline(true)
                .with_validate_threads(4),
        )
        .unwrap();
        for ledger in [&serial, &parallel] {
            for tx in contended_txs() {
                ledger.submit(tx).unwrap();
            }
            ledger.cut_block().unwrap();
            ledger.drain_commits().unwrap();
        }
        assert_eq!(serial.last_hash(), parallel.last_hash());
        assert_eq!(blockfile_bytes(&dir_serial), blockfile_bytes(&dir_par));
        assert_eq!(
            serial.get_state_by_range(None, None).unwrap(),
            parallel.get_state_by_range(None, None).unwrap()
        );
    }

    #[test]
    fn validation_counters_record_txs_conflicts_chunks_and_waves() {
        let dir = TempDir::new("pv-counters");
        let tel = Telemetry::enabled();
        let ledger = Ledger::open_with_telemetry(
            &dir.0,
            LedgerConfig::small_for_tests().with_validate_threads(2),
            tel,
        )
        .unwrap();
        for tx in contended_txs() {
            ledger.submit(tx).unwrap();
        }
        ledger.cut_block().unwrap();
        let snap = ledger.telemetry().snapshot();
        assert_eq!(snap.counter("commit.validate.txs"), 60);
        assert!(snap.counter("commit.validate.conflicts") > 0);
        assert!(snap.counter("commit.validate.chunks") > 0);
        assert!(snap.counter("commit.validate.waves") > 0);
    }

    #[test]
    fn validation_pool_panic_surfaces_as_error_and_pipeline_drains() {
        let dir = TempDir::new("pv-panic");
        let ledger = Ledger::open(
            &dir.0,
            LedgerConfig::small_for_tests()
                .with_pipeline(true)
                .with_validate_threads(2),
        )
        .unwrap();
        ledger.submit(put_tx(1, "a", "v")).unwrap();
        ledger.submit(put_tx(2, "b", "v")).unwrap();
        crate::validate::PANIC_IN_WORKER.store(true, std::sync::atomic::Ordering::SeqCst);
        // Third submit fills the batch (size 3) and triggers the commit,
        // whose validation pool panics: the submit must surface an Error,
        // not poison the process or wedge the pipeline. The tx carries a
        // read so the block takes the wave path (an all-blind-write block
        // would skip the pool on the no-reads fast path).
        let rmw = Transaction::new(
            3,
            vec![KvRead {
                key: Bytes::from_static(b"a"),
                version: None,
            }],
            vec![KvWrite {
                key: Bytes::from_static(b"c"),
                value: Some(Bytes::from_static(b"v")),
            }],
        )
        .unwrap();
        let err = ledger.submit(rmw).unwrap_err();
        crate::validate::PANIC_IN_WORKER.store(false, std::sync::atomic::Ordering::SeqCst);
        assert!(err.to_string().contains("panicked"), "{err}");
        // The failed batch was rejected before admission: nothing is in
        // flight, the drain completes, and the pipeline still commits.
        ledger.drain_commits().unwrap();
        assert_eq!(ledger.height(), 0);
        for i in 0..3u64 {
            ledger.submit(put_tx(10 + i, "d", "v")).unwrap();
        }
        ledger.drain_commits().unwrap();
        assert_eq!(ledger.height(), 1);
        assert!(ledger.get_state(b"d").unwrap().is_some());
    }
}
