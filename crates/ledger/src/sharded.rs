//! Key-range-sharded commit path: N partitions, each a full [`Ledger`].
//!
//! A [`ShardedLedger`] splits the key space into N disjoint partitions
//! and gives each its own blockfiles, history index and state db. The
//! router sends each transaction to the partition owning its write keys,
//! so partitions commit **concurrently** — N durable fsync streams
//! instead of one — while every per-shard artifact (blocks, hash chain,
//! indexes) stays exactly what a single-shard ledger over that key subset
//! would produce.
//!
//! ## Routing
//!
//! The workloads in this workspace use fixed-width structured keys:
//! one kind byte followed by five ASCII digits (`S00042`, `C00007`), with
//! composite event keys prefixed by such an entity key. For those, the
//! router stripes the *ordinal* space `00000..=99999` round-robin
//! (`ordinal mod n`) — aligned across kinds, so `S00042` and `C00042`
//! land on the same shard index deterministically, and any contiguous
//! block of entity ordinals (the shape every generator here produces)
//! spreads evenly over the partitions. Any other key falls back to a
//! first-byte stripe. Both rules are pure functions of the key bytes:
//! re-opening with the same shard count routes identically (the count is
//! persisted in a `SHARDS` meta file and verified on reopen).
//!
//! ## Deterministic global block numbering
//!
//! Shard `i`'s local block `b` is globally block `b * n + i` — injective
//! across shards and independent of commit interleaving, so two runs that
//! route the same transactions produce the same global numbering
//! regardless of thread scheduling.

use std::path::{Path, PathBuf};

use bytes::Bytes;

use fabric_telemetry::Telemetry;

use crate::block::Block;
use crate::config::LedgerConfig;
use crate::error::{Error, Result};
use crate::iostats::IoStatsSnapshot;
use crate::ledger::{HistoryIterator, Ledger};
use crate::statedb::VersionedValue;
use crate::tx::{BlockNum, Timestamp, Transaction};

/// Span name used for per-shard commit work; the chrome exporter groups
/// spans with this prefix (labelled `shard <i>`) into per-shard lanes.
pub const SHARD_COMMIT_SPAN: &str = "shard.commit";

/// Number of ordinals in the structured-key space (`00000..=99999`).
const ORDINAL_SPACE: usize = 100_000;

/// Pure key→shard routing over striped ordinal classes (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Router over `shards` partitions (`shards >= 1`).
    pub fn new(shards: usize) -> Self {
        ShardRouter {
            shards: shards.max(1),
        }
    }

    /// Number of partitions this router splits the key space into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shard index owning `key`.
    pub fn route(&self, key: &[u8]) -> usize {
        if self.shards <= 1 {
            return 0;
        }
        if key.len() >= 6 && key[1..6].iter().all(|b| b.is_ascii_digit()) {
            let mut ordinal = 0usize;
            for b in &key[1..6] {
                ordinal = ordinal * 10 + (b - b'0') as usize;
            }
            ordinal % self.shards
        } else {
            key.first().copied().unwrap_or(0) as usize % self.shards
        }
    }

    /// Shard index owning a transaction: its first write key (a
    /// transaction's writes all target one entity in the workloads here),
    /// falling back to the first read key, then shard 0.
    pub fn route_tx(&self, tx: &Transaction) -> usize {
        tx.writes
            .first()
            .map(|w| self.route(&w.key))
            .or_else(|| tx.reads.first().map(|r| self.route(&r.key)))
            .unwrap_or(0)
    }

    /// How many structured-key ordinals `shard` owns — documentation and
    /// test aid for the stripe split (shards with index below
    /// `SPACE mod n` own one extra ordinal).
    pub fn ordinal_count(&self, shard: usize) -> usize {
        ORDINAL_SPACE / self.shards + usize::from(shard < ORDINAL_SPACE % self.shards)
    }
}

/// A ledger split into N key-range partitions committing concurrently.
///
/// Query APIs mirror [`Ledger`]'s: point lookups route to the owning
/// shard, range scans merge across shards, and [`ShardedLedger::shards`]
/// exposes the partitions themselves so per-shard machinery (cursors,
/// planners) runs unchanged against each one.
pub struct ShardedLedger {
    dir: PathBuf,
    router: ShardRouter,
    shards: Vec<Ledger>,
    tel: Telemetry,
}

impl std::fmt::Debug for ShardedLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedLedger")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .field("height", &self.height())
            .finish()
    }
}

impl ShardedLedger {
    /// Upper bound on the partition count (a routing sanity rail, far
    /// above any sensible fan-out on one machine).
    pub const MAX_SHARDS: usize = 64;

    /// Open (or create) a sharded ledger rooted at `dir` with `shards`
    /// partitions, each under `dir/shard-NN`. Telemetry starts disabled.
    pub fn open(dir: impl Into<PathBuf>, config: LedgerConfig, shards: usize) -> Result<Self> {
        Self::open_with_telemetry(dir, config, shards, Telemetry::disabled())
    }

    /// [`ShardedLedger::open`] sharing one `tel` handle across every
    /// partition, so spans and counters from all shards land in the same
    /// flight recorder and registry.
    pub fn open_with_telemetry(
        dir: impl Into<PathBuf>,
        config: LedgerConfig,
        shards: usize,
        tel: Telemetry,
    ) -> Result<Self> {
        let dir = dir.into();
        if shards == 0 || shards > Self::MAX_SHARDS {
            return Err(Error::InvalidArgument(format!(
                "shard count must be 1..={}, got {shards}",
                Self::MAX_SHARDS
            )));
        }
        Self::check_meta(&dir, shards)?;
        let mut parts = Vec::with_capacity(shards);
        for i in 0..shards {
            parts.push(Ledger::open_with_telemetry(
                dir.join(format!("shard-{i:02}")),
                config.clone(),
                tel.clone(),
            )?);
        }
        Ok(ShardedLedger {
            dir,
            router: ShardRouter::new(shards),
            shards: parts,
            tel,
        })
    }

    /// Persist the shard count on first open; reject a mismatching reopen
    /// (the router is a pure function of the count, so changing it would
    /// silently orphan existing keys on their old shards).
    fn check_meta(dir: &Path, shards: usize) -> Result<()> {
        let meta = dir.join("SHARDS");
        match std::fs::read_to_string(&meta) {
            Ok(text) => {
                let stored: usize = text.trim().parse().map_err(|_| {
                    Error::corruption(&meta, format!("unparseable shard count {text:?}"))
                })?;
                if stored != shards {
                    return Err(Error::InvalidArgument(format!(
                        "ledger at {} has {stored} shards, asked to open with {shards}",
                        dir.display()
                    )));
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| Error::io("creating sharded ledger dir".to_string(), e))?;
                std::fs::write(&meta, format!("{shards}\n"))
                    .map_err(|e| Error::io("writing SHARDS meta".to_string(), e))
            }
            Err(e) => Err(Error::io("reading SHARDS meta".to_string(), e)),
        }
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitions themselves, in shard order. Each is a full
    /// [`Ledger`]; run any per-shard query machinery directly against it.
    pub fn shards(&self) -> &[Ledger] {
        &self.shards
    }

    /// One partition by index.
    pub fn shard(&self, i: usize) -> &Ledger {
        &self.shards[i]
    }

    /// The key→shard router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Index of the shard owning `key`.
    pub fn shard_index_for_key(&self, key: &[u8]) -> usize {
        self.router.route(key)
    }

    /// The shard owning `key`.
    pub fn shard_for_key(&self, key: &[u8]) -> &Ledger {
        &self.shards[self.router.route(key)]
    }

    /// Global block number of shard `i`'s local block `b`.
    pub fn global_block_num(&self, shard: usize, local: BlockNum) -> BlockNum {
        local * self.shards.len() as u64 + shard as u64
    }

    /// Submit a transaction to the owning shard's orderer. Returns the
    /// *global* numbers of any blocks the submission caused to be cut.
    pub fn submit(&self, tx: Transaction) -> Result<Vec<BlockNum>> {
        let shard = self.router.route_tx(&tx);
        let locals = self.shards[shard].submit(tx)?;
        Ok(locals
            .into_iter()
            .map(|b| self.global_block_num(shard, b))
            .collect())
    }

    /// Route a batch by key range and commit the per-shard slices
    /// concurrently (one scoped thread per non-empty shard). Returns the
    /// global numbers of every block cut, sorted.
    pub fn commit_split(&self, txs: Vec<Transaction>) -> Result<Vec<BlockNum>> {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<Transaction>> = vec![Vec::new(); n];
        for tx in txs {
            per_shard[self.router.route_tx(&tx)].push(tx);
        }
        let ctx = self.tel.current_context();
        let mut blocks = Vec::new();
        let results = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (i, slice) in per_shard.into_iter().enumerate() {
                if slice.is_empty() {
                    continue;
                }
                let shard = &self.shards[i];
                let tel = &self.tel;
                handles.push(scope.spawn(move || -> Result<Vec<BlockNum>> {
                    let _s = tel
                        .span_in(SHARD_COMMIT_SPAN, ctx)
                        .with_label(format!("shard {i}"));
                    let mut locals = Vec::new();
                    for tx in slice {
                        locals.extend(shard.submit(tx)?);
                    }
                    if let Some(b) = shard.cut_block()? {
                        locals.push(b);
                    }
                    Ok(locals
                        .into_iter()
                        .map(|b| self.global_block_num(i, b))
                        .collect())
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(Error::io(
                        "shard.commit".to_string(),
                        std::io::Error::other("shard commit worker panicked"),
                    )),
                })
                .collect::<Vec<_>>()
        });
        for r in results {
            blocks.extend(r?);
        }
        blocks.sort_unstable();
        Ok(blocks)
    }

    /// Force-cut every shard's pending batch. Returns global numbers of
    /// the blocks cut, sorted.
    pub fn cut_blocks(&self) -> Result<Vec<BlockNum>> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if let Some(b) = shard.cut_block()? {
                out.push(self.global_block_num(i, b));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Drain every shard's commit pipeline (no-op for serial shards).
    pub fn drain_commits(&self) -> Result<()> {
        for shard in &self.shards {
            shard.drain_commits()?;
        }
        Ok(())
    }

    /// Flush every shard's state and index stores.
    pub fn flush_stores(&self) -> Result<()> {
        for shard in &self.shards {
            shard.flush_stores()?;
        }
        Ok(())
    }

    /// Total committed blocks across all shards.
    pub fn height(&self) -> u64 {
        self.shards.iter().map(|s| s.height()).sum()
    }

    /// Per-shard heights, in shard order.
    pub fn heights(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.height()).collect()
    }

    /// Fetch a block by *global* number (see the [module docs](self) for
    /// the numbering scheme).
    pub fn get_block(&self, global: BlockNum) -> Result<std::sync::Arc<Block>> {
        let n = self.shards.len() as u64;
        self.shards[(global % n) as usize].get_block(global / n)
    }

    /// `GetState` routed to the owning shard.
    pub fn get_state(&self, key: &[u8]) -> Result<Option<VersionedValue>> {
        self.shard_for_key(key).get_state(key)
    }

    /// `GetHistoryForKey` routed to the owning shard (a key's entire
    /// history lives on one shard, so the iterator is complete).
    pub fn get_history_for_key(&self, key: &[u8]) -> Result<HistoryIterator<'_>> {
        self.shard_for_key(key).get_history_for_key(key)
    }

    /// Bounded history scan routed to the owning shard; see
    /// [`Ledger::get_history_for_key_from`].
    pub fn get_history_for_key_from(
        &self,
        key: &[u8],
        after_ts: Timestamp,
    ) -> Result<HistoryIterator<'_>> {
        self.shard_for_key(key)
            .get_history_for_key_from(key, after_ts)
    }

    /// History-index profile routed to the owning shard.
    pub fn history_profile(&self, key: &[u8]) -> Result<Vec<crate::index::HistoryEntryMeta>> {
        self.shard_for_key(key).history_profile(key)
    }

    /// `GetStateByRange` merged across shards and re-sorted by key (the
    /// contiguous range routing means each shard contributes sorted,
    /// mostly disjoint runs; the final sort restores the global order).
    pub fn get_state_by_range(
        &self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Result<Vec<(Bytes, VersionedValue)>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.get_state_by_range(start, end)?);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Aggregated I/O counters: the counter-wise sum of every shard's
    /// snapshot, so query-cost accounting (`blocks_deserialized`,
    /// `ghfk_calls`, …) reads like a single ledger's.
    pub fn stats(&self) -> IoStatsSnapshot {
        self.shards
            .iter()
            .fold(IoStatsSnapshot::default(), |acc, s| acc.merge(&s.stats()))
    }

    /// Audit every shard's hash chain ([`Ledger::verify_chain`] per
    /// partition, run concurrently — each shard is an independent chain).
    /// Returns the per-shard tip digests, in shard order.
    pub fn verify_chain(&self) -> Result<Vec<crate::hash::Digest>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.verify_chain()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(Error::io(
                        "shard.verify".to_string(),
                        std::io::Error::other("shard verify worker panicked"),
                    )),
                })
                .collect()
        })
    }

    /// Write a consistent, openable backup of every partition into
    /// `dest`: the `SHARDS` meta file plus one [`Ledger::backup`] per
    /// shard under `dest/shard-NN`. Reopening the backup with the same
    /// shard count routes identically, so it is a drop-in replica.
    pub fn backup(&self, dest: impl Into<PathBuf>) -> Result<()> {
        self.drain_commits()?;
        let dest = dest.into();
        if dest.join("SHARDS").exists() {
            return Err(Error::InvalidArgument(format!(
                "backup destination {} already holds a sharded ledger",
                dest.display()
            )));
        }
        std::fs::create_dir_all(&dest)
            .map_err(|e| Error::io("creating sharded backup dir".to_string(), e))?;
        for (i, shard) in self.shards.iter().enumerate() {
            shard.backup(dest.join(format!("shard-{i:02}")))?;
        }
        // Write the meta file last: a complete backup always reopens,
        // a torn one is refused as an unknown shard count.
        std::fs::write(dest.join("SHARDS"), format!("{}\n", self.shards.len()))
            .map_err(|e| Error::io("writing backup SHARDS meta".to_string(), e))
    }

    /// The telemetry handle shared by every shard.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Root directory (shards live in `shard-NN` subdirectories).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Refresh gauges on the shared registry: aggregate `ledger.height`,
    /// plus per-shard `ledger.shard.<i>.blocks` (chain height) and
    /// `ledger.shard.<i>.events` (state writes committed since open) for
    /// the `/metrics` endpoint.
    pub fn publish_gauges(&self) {
        let reg = self.tel.registry();
        reg.gauge("ledger.height").set(self.height() as i64);
        reg.gauge("ledger.shards").set(self.shards.len() as i64);
        for (i, shard) in self.shards.iter().enumerate() {
            reg.gauge_owned(format!("ledger.shard.{i}.blocks"))
                .set(shard.height() as i64);
            reg.gauge_owned(format!("ledger.shard.{i}.events"))
                .set(shard.stats().events_committed as i64);
        }
        fabric_telemetry::alloc::publish_memory_gauges(&self.tel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shim::TxSimulator;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sharded-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn put(ledger: &ShardedLedger, key: &str, value: &str, ts: Timestamp) {
        let shard = ledger.shard_for_key(key.as_bytes());
        let mut sim = TxSimulator::new(shard);
        sim.put_state(key.to_string(), value.to_string());
        ledger.submit(sim.into_transaction(ts).unwrap()).unwrap();
    }

    #[test]
    fn router_stripes_structured_keys_across_aligned_shards() {
        let router = ShardRouter::new(4);
        assert_eq!(router.route(b"S00000"), 0);
        assert_eq!(router.route(b"S00001"), 1);
        assert_eq!(router.route(b"S00003"), 3);
        assert_eq!(router.route(b"S00004"), 0);
        assert_eq!(router.route(b"S99999"), 99_999 % 4);
        // Aligned across kinds: same ordinal → same shard.
        assert_eq!(router.route(b"S00042"), router.route(b"C00042"));
        assert_eq!(router.route(b"T00042"), router.route(b"C00042"));
        // Composite keys route with their entity prefix.
        assert_eq!(router.route(b"S70000|evt|17"), router.route(b"S70000"));
        // Stripes cover the ordinal space, and even a small contiguous
        // block of ordinals (real workloads number entities from 0)
        // spreads over every shard.
        assert_eq!(
            (0..4).map(|s| router.ordinal_count(s)).sum::<usize>(),
            100_000
        );
        let mut per_shard = [0usize; 4];
        for o in 0..64 {
            per_shard[router.route(format!("S{o:05}").as_bytes())] += 1;
        }
        assert_eq!(per_shard, [16, 16, 16, 16]);
    }

    #[test]
    fn router_falls_back_to_first_byte_stripes() {
        let router = ShardRouter::new(2);
        assert_eq!(router.route(b"aa"), (b'a' % 2) as usize);
        assert_eq!(router.route(&[0xF1, 0x01]), 1);
        assert_eq!(router.route(b""), 0);
        assert_eq!(ShardRouter::new(1).route(b"anything"), 0);
    }

    #[test]
    fn point_queries_route_and_range_scans_merge() {
        let dir = tmp("queries");
        let ledger = ShardedLedger::open(&dir, LedgerConfig::small_for_tests(), 4).unwrap();
        for (i, key) in ["S00004", "S00013", "S00022", "S00031"].iter().enumerate() {
            put(&ledger, key, &format!("v{i}"), 10 + i as u64);
        }
        ledger.cut_blocks().unwrap();
        ledger.drain_commits().unwrap();
        // Keys landed on distinct shards.
        let owners: std::collections::HashSet<usize> = ["S00004", "S00013", "S00022", "S00031"]
            .iter()
            .map(|k| ledger.shard_index_for_key(k.as_bytes()))
            .collect();
        assert_eq!(owners.len(), 4);
        assert_eq!(
            ledger.get_state(b"S00022").unwrap().unwrap().value.as_ref(),
            b"v2"
        );
        let all = ledger.get_state_by_range(None, None).unwrap();
        assert_eq!(all.len(), 4);
        let keys: Vec<&[u8]> = all.iter().map(|(k, _)| k.as_ref()).collect();
        assert_eq!(keys, vec![&b"S00004"[..], b"S00013", b"S00022", b"S00031"]);
        let history: Vec<_> = ledger
            .get_history_for_key(b"S00031")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(history.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn global_block_numbers_are_injective_and_resolvable() {
        let dir = tmp("numbering");
        let ledger = ShardedLedger::open(&dir, LedgerConfig::small_for_tests(), 2).unwrap();
        put(&ledger, "S00002", "a", 1); // shard 0
        put(&ledger, "S00003", "b", 2); // shard 1
        put(&ledger, "S00004", "c", 3); // shard 0
        let cut = ledger.cut_blocks().unwrap();
        assert_eq!(cut, vec![0, 1], "local block 0 on each shard");
        assert_eq!(ledger.height(), 2);
        let b0 = ledger.get_block(0).unwrap();
        assert_eq!(b0.txs.len(), 2, "shard 0 holds both even-ordinal txs");
        let b1 = ledger.get_block(1).unwrap();
        assert_eq!(b1.txs.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_split_routes_batches_concurrently() {
        let dir = tmp("split");
        let ledger = ShardedLedger::open(&dir, LedgerConfig::small_for_tests(), 4).unwrap();
        let mut txs = Vec::new();
        for i in 0..40 {
            let key = format!("S{i:05}");
            let shard = ledger.shard_for_key(key.as_bytes());
            let mut sim = TxSimulator::new(shard);
            sim.put_state(key.clone(), "v");
            txs.push(sim.into_transaction(i as u64).unwrap());
        }
        let blocks = ledger.commit_split(txs).unwrap();
        assert!(!blocks.is_empty());
        ledger.drain_commits().unwrap();
        assert_eq!(ledger.get_state_by_range(None, None).unwrap().len(), 40);
        // Every shard received work (keys span the whole ordinal space).
        assert!(
            ledger.heights().iter().all(|h| *h > 0),
            "{:?}",
            ledger.heights()
        );
        assert_eq!(ledger.stats().events_committed, 40);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_with_wrong_shard_count_is_rejected() {
        let dir = tmp("meta");
        {
            let ledger = ShardedLedger::open(&dir, LedgerConfig::small_for_tests(), 2).unwrap();
            put(&ledger, "S00001", "a", 1);
            ledger.cut_blocks().unwrap();
        }
        let err = ShardedLedger::open(&dir, LedgerConfig::small_for_tests(), 4).unwrap_err();
        assert!(err.to_string().contains("2 shards"), "{err}");
        // Same count reopens fine and sees the data.
        let ledger = ShardedLedger::open(&dir, LedgerConfig::small_for_tests(), 2).unwrap();
        assert_eq!(
            ledger.get_state(b"S00001").unwrap().unwrap().value.as_ref(),
            b"a"
        );
        assert!(ShardedLedger::open(tmp("meta-zero"), LedgerConfig::small_for_tests(), 0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_chain_audits_every_shard() {
        let dir = tmp("verify");
        let ledger = ShardedLedger::open(&dir, LedgerConfig::small_for_tests(), 3).unwrap();
        for i in 0..9u64 {
            put(&ledger, &format!("S{i:05}"), "v", i + 1);
        }
        ledger.cut_blocks().unwrap();
        ledger.drain_commits().unwrap();
        let tips = ledger.verify_chain().unwrap();
        assert_eq!(tips.len(), 3);
        // Each tip is the shard's own chain head, not a placeholder.
        for (i, tip) in tips.iter().enumerate() {
            assert_eq!(*tip, ledger.shard(i).last_hash(), "shard {i} tip");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backup_round_trips_across_four_shards() {
        let dir = tmp("backup-src");
        let dest = tmp("backup-dst");
        let ledger = ShardedLedger::open(&dir, LedgerConfig::small_for_tests(), 4).unwrap();
        for i in 0..16u64 {
            put(&ledger, &format!("S{i:05}"), &format!("v{i}"), i + 1);
        }
        ledger.cut_blocks().unwrap();
        ledger.drain_commits().unwrap();
        ledger.backup(&dest).unwrap();
        // A second backup into the same destination is refused.
        let err = ledger.backup(&dest).unwrap_err();
        assert!(err.to_string().contains("already holds"), "{err}");
        // The backup opens with the same shard count and answers every
        // query the source does; a wrong count is rejected by the meta.
        assert!(ShardedLedger::open(&dest, LedgerConfig::small_for_tests(), 2).is_err());
        let restored = ShardedLedger::open(&dest, LedgerConfig::small_for_tests(), 4).unwrap();
        assert_eq!(restored.height(), ledger.height());
        assert_eq!(restored.heights(), ledger.heights());
        for i in 0..16u64 {
            let key = format!("S{i:05}");
            assert_eq!(
                restored.get_state(key.as_bytes()).unwrap().unwrap().value,
                ledger.get_state(key.as_bytes()).unwrap().unwrap().value,
                "{key}"
            );
        }
        let tips = restored.verify_chain().unwrap();
        for (i, tip) in tips.iter().enumerate() {
            assert_eq!(*tip, ledger.shard(i).last_hash(), "shard {i} tip");
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dest).ok();
    }

    #[test]
    fn per_shard_gauges_publish() {
        let dir = tmp("gauges");
        let tel = Telemetry::enabled();
        let ledger =
            ShardedLedger::open_with_telemetry(&dir, LedgerConfig::small_for_tests(), 2, tel)
                .unwrap();
        put(&ledger, "S00001", "a", 1);
        put(&ledger, "S00002", "b", 2);
        ledger.cut_blocks().unwrap();
        ledger.publish_gauges();
        let snap = ledger.telemetry().registry().snapshot();
        assert_eq!(snap.gauge("ledger.height"), Some(2));
        assert_eq!(snap.gauge("ledger.shards"), Some(2));
        assert_eq!(snap.gauge("ledger.shard.0.blocks"), Some(1));
        assert_eq!(snap.gauge("ledger.shard.1.blocks"), Some(1));
        assert_eq!(snap.gauge("ledger.shard.0.events"), Some(1));
        assert_eq!(snap.gauge("ledger.shard.1.events"), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }
}
