//! Error types for the ledger engine.

use std::fmt;
use std::path::PathBuf;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by ledger operations.
#[derive(Debug)]
pub enum Error {
    /// Failure in the underlying key-value store (state-db or indexes).
    Store(fabric_kvstore::Error),
    /// An underlying I/O operation failed.
    Io {
        /// What the ledger was doing when the failure occurred.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Persistent ledger data failed a checksum, hash-chain or structural
    /// validation.
    Corruption {
        /// File in which the corruption was detected.
        file: PathBuf,
        /// What failed to validate.
        detail: String,
    },
    /// The caller passed an argument the ledger cannot honour.
    InvalidArgument(String),
    /// A requested block or transaction does not exist.
    NotFound(String),
}

impl Error {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        Error::Io {
            context: context.into(),
            source,
        }
    }

    pub(crate) fn corruption(file: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        Error::Corruption {
            file: file.into(),
            detail: detail.into(),
        }
    }
}

impl From<fabric_kvstore::Error> for Error {
    fn from(e: fabric_kvstore::Error) -> Self {
        Error::Store(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Store(e) => write!(f, "state store error: {e}"),
            Error::Io { context, source } => write!(f, "i/o error while {context}: {source}"),
            Error::Corruption { file, detail } => {
                write!(f, "ledger corruption in {}: {detail}", file.display())
            }
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Store(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_errors_convert() {
        let inner = fabric_kvstore::Error::InvalidArgument("x".into());
        let err: Error = inner.into();
        assert!(matches!(err, Error::Store(_)));
        assert!(err.to_string().contains("state store"));
    }

    #[test]
    fn not_found_displays_subject() {
        let err = Error::NotFound("block 42".into());
        assert!(err.to_string().contains("block 42"));
    }
}
