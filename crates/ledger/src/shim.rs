//! The chaincode shim: transaction simulation with read/write-set capture.
//!
//! A [`TxSimulator`] is the Rust analogue of Fabric's `ChaincodeStub`.
//! Chaincode logic calls `get_state` / `put_state` / `del_state` /
//! `get_state_by_range` / `get_history_for_key` against it; reads record the
//! observed versions (for MVCC validation at commit) and writes accumulate
//! into the write set. `into_transaction` seals the simulation into a
//! [`Transaction`] ready for [`crate::ledger::Ledger::submit`].
//!
//! Semantics mirror Fabric:
//!
//! * **Read-your-own-writes**: a `get_state` after a `put_state` in the same
//!   simulation sees the pending write (and records *no* read-set entry for
//!   it — there is no committed version to validate against).
//! * **One state per key**: duplicate writes collapse, last one wins
//!   (enforced again in [`Transaction::new`]).
//! * Range and history reads do not add read-set entries (Fabric records
//!   range-query info for phantom detection only in its QSCC paths; the
//!   paper's workloads never rely on it).

use std::collections::HashMap;

use bytes::Bytes;

use crate::error::Result;
use crate::ledger::{HistoryIterator, Ledger};
use crate::statedb::VersionedValue;
use crate::tx::{KvRead, KvWrite, Timestamp, Transaction};

/// A transaction simulation in progress.
pub struct TxSimulator<'l> {
    ledger: &'l Ledger,
    reads: Vec<KvRead>,
    read_keys: HashMap<Bytes, ()>,
    /// Pending writes in insertion order (later wins per key).
    writes: Vec<KvWrite>,
    pending: HashMap<Bytes, Option<Bytes>>,
}

impl<'l> TxSimulator<'l> {
    /// Start a simulation against `ledger`'s committed state.
    pub fn new(ledger: &'l Ledger) -> Self {
        TxSimulator {
            ledger,
            reads: Vec::new(),
            read_keys: HashMap::new(),
            writes: Vec::new(),
            pending: HashMap::new(),
        }
    }

    /// `GetState`: pending write if present, else committed state (recording
    /// the observed version in the read set).
    pub fn get_state(&mut self, key: &[u8]) -> Result<Option<Bytes>> {
        if let Some(pending) = self.pending.get(key) {
            return Ok(pending.clone());
        }
        let committed = self.ledger.get_state(key)?;
        let key = Bytes::copy_from_slice(key);
        if !self.read_keys.contains_key(&key) {
            self.read_keys.insert(key.clone(), ());
            self.reads.push(KvRead {
                key,
                version: committed.as_ref().map(|v| v.version),
            });
        }
        Ok(committed.map(|v| v.value))
    }

    /// `PutState`: queue a write of `key` → `value`.
    pub fn put_state(&mut self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        let key = key.into();
        let value = value.into();
        self.pending.insert(key.clone(), Some(value.clone()));
        self.writes.push(KvWrite {
            key,
            value: Some(value),
        });
    }

    /// `DelState`: queue a deletion of `key`.
    pub fn del_state(&mut self, key: impl Into<Bytes>) {
        let key = key.into();
        self.pending.insert(key.clone(), None);
        self.writes.push(KvWrite { key, value: None });
    }

    /// `GetStateByRange` over committed state (pending writes are *not*
    /// merged in, matching Fabric's simulator).
    pub fn get_state_by_range(
        &self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Result<Vec<(Bytes, VersionedValue)>> {
        self.ledger.get_state_by_range(start, end)
    }

    /// `GetHistoryForKey` over committed history.
    pub fn get_history_for_key(&self, key: &[u8]) -> Result<HistoryIterator<'l>> {
        self.ledger.get_history_for_key(key)
    }

    /// Number of pending writes (after in-simulation overwrites).
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    /// Seal the simulation into a transaction stamped with `timestamp`.
    pub fn into_transaction(self, timestamp: Timestamp) -> Result<Transaction> {
        Transaction::new(timestamp, self.reads, self.writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LedgerConfig;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "shim-test-{}-{tag}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn ledger(dir: &TempDir) -> Ledger {
        Ledger::open(&dir.0, LedgerConfig::small_for_tests()).unwrap()
    }

    #[test]
    fn simulate_and_commit() {
        let dir = TempDir::new("commit");
        let ledger = ledger(&dir);
        let mut sim = TxSimulator::new(&ledger);
        sim.put_state(&b"k"[..], &b"v"[..]);
        let tx = sim.into_transaction(7).unwrap();
        ledger.submit(tx).unwrap();
        ledger.cut_block().unwrap();
        assert_eq!(
            ledger.get_state(b"k").unwrap().unwrap().value,
            Bytes::from_static(b"v")
        );
    }

    #[test]
    fn read_your_own_writes() {
        let dir = TempDir::new("ryow");
        let ledger = ledger(&dir);
        let mut sim = TxSimulator::new(&ledger);
        assert!(sim.get_state(b"k").unwrap().is_none());
        sim.put_state(&b"k"[..], &b"pending"[..]);
        assert_eq!(
            sim.get_state(b"k").unwrap().unwrap(),
            Bytes::from_static(b"pending")
        );
        sim.del_state(&b"k"[..]);
        assert!(sim.get_state(b"k").unwrap().is_none());
    }

    #[test]
    fn reads_record_versions_for_mvcc() {
        let dir = TempDir::new("versions");
        let ledger = ledger(&dir);
        let mut sim = TxSimulator::new(&ledger);
        sim.put_state(&b"k"[..], &b"v0"[..]);
        ledger.submit(sim.into_transaction(1).unwrap()).unwrap();
        ledger.cut_block().unwrap();

        let mut sim = TxSimulator::new(&ledger);
        assert!(sim.get_state(b"k").unwrap().is_some());
        assert!(sim.get_state(b"missing").unwrap().is_none());
        let tx = sim.into_transaction(2).unwrap();
        assert_eq!(tx.reads.len(), 2);
        let k_read = tx
            .reads
            .iter()
            .find(|r| r.key == Bytes::from_static(b"k"))
            .unwrap();
        assert!(k_read.version.is_some());
        let missing_read = tx
            .reads
            .iter()
            .find(|r| r.key == Bytes::from_static(b"missing"))
            .unwrap();
        assert!(missing_read.version.is_none());
    }

    #[test]
    fn duplicate_reads_recorded_once() {
        let dir = TempDir::new("dupread");
        let ledger = ledger(&dir);
        let mut sim = TxSimulator::new(&ledger);
        sim.get_state(b"k").unwrap();
        sim.get_state(b"k").unwrap();
        let tx = sim.into_transaction(1).unwrap();
        assert_eq!(tx.reads.len(), 1);
    }

    #[test]
    fn read_after_own_write_adds_no_read_entry() {
        let dir = TempDir::new("ryow-noread");
        let ledger = ledger(&dir);
        let mut sim = TxSimulator::new(&ledger);
        sim.put_state(&b"k"[..], &b"v"[..]);
        sim.get_state(b"k").unwrap();
        let tx = sim.into_transaction(1).unwrap();
        assert!(tx.reads.is_empty());
    }

    #[test]
    fn one_state_per_key_persisted() {
        let dir = TempDir::new("lastwrite");
        let ledger = ledger(&dir);
        let mut sim = TxSimulator::new(&ledger);
        sim.put_state(&b"k"[..], &b"first"[..]);
        sim.put_state(&b"k"[..], &b"second"[..]);
        assert_eq!(sim.pending_writes(), 1);
        let tx = sim.into_transaction(1).unwrap();
        assert_eq!(tx.writes.len(), 1);
        ledger.submit(tx).unwrap();
        ledger.cut_block().unwrap();
        let history = ledger
            .get_history_for_key(b"k")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(history.len(), 1, "only one state per key per tx");
        assert_eq!(history[0].value.as_deref(), Some(&b"second"[..]));
    }

    #[test]
    fn range_and_history_via_shim() {
        let dir = TempDir::new("shimreads");
        let ledger = ledger(&dir);
        for (i, k) in ["a", "b", "c"].iter().enumerate() {
            let mut sim = TxSimulator::new(&ledger);
            sim.put_state(Bytes::copy_from_slice(k.as_bytes()), &b"v"[..]);
            ledger
                .submit(sim.into_transaction(i as u64).unwrap())
                .unwrap();
        }
        ledger.cut_block().unwrap();
        let sim = TxSimulator::new(&ledger);
        assert_eq!(
            sim.get_state_by_range(Some(b"a"), Some(b"c"))
                .unwrap()
                .len(),
            2
        );
        let history = sim
            .get_history_for_key(b"b")
            .unwrap()
            .collect_all()
            .unwrap();
        assert_eq!(history.len(), 1);
    }
}
