//! Append-only block files — Fabric's `blockfile_000000` equivalent.
//!
//! Blocks are framed as `[len: u32 LE][crc32: u32 LE][payload]` and appended
//! to numbered files; a file is rolled once it exceeds
//! `max_file_bytes`. Reads are positioned (`pread`) so concurrent readers
//! never contend on a shared file offset. Every read verifies the frame CRC
//! and decodes the block — that decode is the paper's unit of query cost,
//! counted in [`IoStats::blocks_deserialized`] whether the decode was full
//! ([`BlockFileManager::read_block`]) or selective
//! ([`BlockFileManager::read_block_txs`], which uses the block's per-tx
//! offset table to decode only the transactions a history scan needs; the
//! per-tx work is counted separately in [`IoStats::txs_decoded`]).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use fabric_kvstore::crc32::crc32;
use fabric_telemetry::Telemetry;

use crate::block::{Block, PartialBlock};
use crate::error::{Error, Result};
use crate::iostats::IoStats;
use crate::tx::TxNum;

/// Where a block lives on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLocation {
    /// Which `blockfile_NNNNNN` holds the block.
    pub file_num: u32,
    /// Byte offset of the frame within that file.
    pub offset: u64,
    /// Frame length (header + payload).
    pub len: u32,
}

impl BlockLocation {
    /// Encode as 16 bytes (used by the block index).
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..4].copy_from_slice(&self.file_num.to_le_bytes());
        out[4..12].copy_from_slice(&self.offset.to_le_bytes());
        out[12..16].copy_from_slice(&self.len.to_le_bytes());
        out
    }

    /// Inverse of [`BlockLocation::encode`].
    pub fn decode(data: &[u8]) -> Result<Self> {
        if data.len() != 16 {
            return Err(Error::InvalidArgument(format!(
                "block location must be 16 bytes, got {}",
                data.len()
            )));
        }
        Ok(BlockLocation {
            file_num: u32::from_le_bytes(data[..4].try_into().unwrap()),
            offset: u64::from_le_bytes(data[4..12].try_into().unwrap()),
            len: u32::from_le_bytes(data[12..16].try_into().unwrap()),
        })
    }
}

const FRAME_HEADER: usize = 8;

struct ActiveFile {
    num: u32,
    file: File,
    offset: u64,
}

/// Manages the set of append-only block files in a directory.
pub struct BlockFileManager {
    dir: PathBuf,
    max_file_bytes: u64,
    active: Mutex<ActiveFile>,
    /// Cached read handles, keyed by file number.
    readers: Mutex<HashMap<u32, Arc<File>>>,
    stats: Arc<IoStats>,
    tel: Telemetry,
}

impl std::fmt::Debug for BlockFileManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockFileManager")
            .field("dir", &self.dir)
            .finish()
    }
}

fn file_path(dir: &Path, num: u32) -> PathBuf {
    dir.join(format!("blockfile_{num:06}"))
}

impl BlockFileManager {
    /// Open the manager in `dir`, resuming after the highest existing file.
    pub fn open(dir: impl Into<PathBuf>, max_file_bytes: u64, stats: Arc<IoStats>) -> Result<Self> {
        Self::open_with_telemetry(dir, max_file_bytes, stats, Telemetry::disabled())
    }

    /// Like [`BlockFileManager::open`], recording a `block.deserialize`
    /// span per [`BlockFileManager::read_block`] into `tel` when enabled.
    pub fn open_with_telemetry(
        dir: impl Into<PathBuf>,
        max_file_bytes: u64,
        stats: Arc<IoStats>,
        tel: Telemetry,
    ) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| Error::io(format!("creating block dir {}", dir.display()), e))?;
        let mut max_num: Option<u32> = None;
        for entry in std::fs::read_dir(&dir)
            .map_err(|e| Error::io(format!("listing block dir {}", dir.display()), e))?
        {
            let entry = entry.map_err(|e| Error::io("reading block dir entry".to_string(), e))?;
            let name = entry.file_name();
            let Some(num) = name
                .to_str()
                .and_then(|n| n.strip_prefix("blockfile_"))
                .and_then(|n| n.parse::<u32>().ok())
            else {
                continue;
            };
            max_num = Some(max_num.map_or(num, |m: u32| m.max(num)));
        }
        let num = max_num.unwrap_or(0);
        let path = file_path(&dir, num);
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .map_err(|e| Error::io(format!("opening block file {}", path.display()), e))?;
        let offset = file
            .seek(SeekFrom::End(0))
            .map_err(|e| Error::io(format!("seeking block file {}", path.display()), e))?;
        Ok(BlockFileManager {
            dir,
            max_file_bytes: max_file_bytes.max(1),
            active: Mutex::new(ActiveFile { num, file, offset }),
            readers: Mutex::new(HashMap::new()),
            stats,
            tel,
        })
    }

    /// Serialise and append `block`, returning its location.
    pub fn append_block(&self, block: &Block) -> Result<BlockLocation> {
        let payload = block.encode();
        let len = u32::try_from(payload.len())
            .map_err(|_| Error::InvalidArgument("block exceeds 4 GiB".into()))?;
        let crc = crc32(&payload);
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&payload);

        let mut active = self.active.lock();
        // Roll to a new file if the active one is full (but never leave a
        // file completely empty: always write at least one block).
        if active.offset > 0 && active.offset + frame.len() as u64 > self.max_file_bytes {
            let next = active.num + 1;
            let path = file_path(&self.dir, next);
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .read(true)
                .open(&path)
                .map_err(|e| Error::io(format!("rolling to block file {}", path.display()), e))?;
            *active = ActiveFile {
                num: next,
                file,
                offset: 0,
            };
        }
        let location = BlockLocation {
            file_num: active.num,
            offset: active.offset,
            len: frame.len() as u32,
        };
        active
            .file
            .write_all(&frame)
            .map_err(|e| Error::io("appending block".to_string(), e))?;
        active.offset += frame.len() as u64;
        IoStats::incr(&self.stats.blocks_written);
        IoStats::add(&self.stats.block_bytes_written, frame.len() as u64);
        Ok(location)
    }

    /// Durably flush the active file.
    pub fn sync(&self) -> Result<()> {
        let active = self.active.lock();
        active
            .file
            .sync_data()
            .map_err(|e| Error::io("syncing block file".to_string(), e))
    }

    fn reader(&self, file_num: u32) -> Result<Arc<File>> {
        let mut readers = self.readers.lock();
        if let Some(f) = readers.get(&file_num) {
            return Ok(f.clone());
        }
        let path = file_path(&self.dir, file_num);
        let file = File::open(&path)
            .map_err(|e| Error::io(format!("opening block file {}", path.display()), e))?;
        let file = Arc::new(file);
        readers.insert(file_num, file.clone());
        Ok(file)
    }

    /// Read, CRC-check and decode the block at `location`.
    ///
    /// This is the deliberate cost centre: one call = one block
    /// deserialization, counted in [`IoStats::blocks_deserialized`].
    pub fn read_block(&self, location: BlockLocation) -> Result<Block> {
        let mut span = self.tel.span("block.deserialize");
        match self.read_block_inner(location) {
            Ok(block) => {
                span.record("bytes", location.len as u64);
                span.record("txs", block.tx_count() as u64);
                self.tel.count("ledger.blocks.deserialized", 1);
                self.tel
                    .count("ledger.txs.decoded", block.tx_count() as u64);
                Ok(block)
            }
            Err(e) => {
                // A failed read is not a deserialization: keep the span
                // count in lock-step with `IoStats::blocks_deserialized`.
                span.cancel();
                Err(e)
            }
        }
    }

    /// Read and CRC-check the block at `location` but decode only the
    /// transactions in `tx_nums`, seeking through the block's per-tx
    /// offset table. Still counts as one block deserialization — the frame
    /// is read and checksummed in full, and the paper's cost model charges
    /// per block touched — but [`IoStats::txs_decoded`] advances by
    /// `tx_nums.len()` instead of the whole block's tx count.
    pub fn read_block_txs(
        &self,
        location: BlockLocation,
        tx_nums: &[TxNum],
    ) -> Result<PartialBlock> {
        let mut span = self.tel.span("block.deserialize");
        match self.read_block_txs_inner(location, tx_nums) {
            Ok(partial) => {
                span.record("bytes", location.len as u64);
                span.record("txs", partial.txs.len() as u64);
                self.tel.count("ledger.blocks.deserialized", 1);
                self.tel
                    .count("ledger.txs.decoded", partial.txs.len() as u64);
                Ok(partial)
            }
            Err(e) => {
                span.cancel();
                Err(e)
            }
        }
    }

    /// Fetch the frame at `location`, verify its CRC and return the
    /// payload bytes (block encoding).
    fn read_frame(&self, location: BlockLocation) -> Result<Vec<u8>> {
        use std::os::unix::fs::FileExt;
        let file = self.reader(location.file_num)?;
        let mut frame = vec![0u8; location.len as usize];
        let path = file_path(&self.dir, location.file_num);
        file.read_exact_at(&mut frame, location.offset)
            .map_err(|e| Error::io(format!("reading block at {}", path.display()), e))?;
        if frame.len() < FRAME_HEADER {
            return Err(Error::corruption(&path, "frame shorter than header"));
        }
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
        let crc_stored = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        if len + FRAME_HEADER != frame.len() {
            return Err(Error::corruption(&path, "frame length mismatch"));
        }
        if crc32(&frame[FRAME_HEADER..]) != crc_stored {
            return Err(Error::corruption(&path, "block checksum mismatch"));
        }
        frame.drain(..FRAME_HEADER);
        Ok(frame)
    }

    fn read_block_inner(&self, location: BlockLocation) -> Result<Block> {
        let payload = self.read_frame(location)?;
        let path = file_path(&self.dir, location.file_num);
        let block = Block::decode_trusted(&payload)
            .map_err(|e| Error::corruption(&path, format!("block decode failed: {e}")))?;
        IoStats::incr(&self.stats.blocks_deserialized);
        IoStats::add(&self.stats.txs_decoded, block.tx_count() as u64);
        IoStats::add(&self.stats.block_bytes_read, location.len as u64);
        Ok(block)
    }

    fn read_block_txs_inner(
        &self,
        location: BlockLocation,
        tx_nums: &[TxNum],
    ) -> Result<PartialBlock> {
        let payload = self.read_frame(location)?;
        let path = file_path(&self.dir, location.file_num);
        let partial = Block::decode_txs(&payload, tx_nums)
            .map_err(|e| Error::corruption(&path, format!("block decode failed: {e}")))?;
        IoStats::incr(&self.stats.blocks_deserialized);
        IoStats::add(&self.stats.txs_decoded, partial.txs.len() as u64);
        IoStats::add(&self.stats.block_bytes_read, location.len as u64);
        Ok(partial)
    }

    /// Sequentially scan every block in every file, in write order, invoking
    /// `visit` for each. Used to rebuild indexes on recovery. A torn final
    /// frame (crash during append) is tolerated and scanning stops there;
    /// corruption anywhere else is an error.
    pub fn scan_all(&self, visit: impl FnMut(Block, BlockLocation) -> Result<()>) -> Result<()> {
        self.scan_from(None, visit)
    }

    /// Like [`BlockFileManager::scan_all`] but starts at `start` (a known
    /// block frame boundary, typically the location of the last indexed
    /// block) instead of the beginning — recovery cost is then proportional
    /// to the un-indexed suffix, not the chain length.
    pub fn scan_from(
        &self,
        start: Option<BlockLocation>,
        mut visit: impl FnMut(Block, BlockLocation) -> Result<()>,
    ) -> Result<()> {
        let last_file = self.active.lock().num;
        let first_file = start.map_or(0, |s| s.file_num);
        for file_num in first_file..=last_file {
            let path = file_path(&self.dir, file_num);
            let mut file = match File::open(&path) {
                Ok(f) => f,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(Error::io(format!("opening {}", path.display()), e)),
            };
            let start_offset = match start {
                Some(s) if s.file_num == file_num => s.offset,
                _ => 0,
            };
            file.seek(SeekFrom::Start(start_offset))
                .map_err(|e| Error::io(format!("seeking {}", path.display()), e))?;
            let mut data = Vec::new();
            file.read_to_end(&mut data)
                .map_err(|e| Error::io(format!("scanning {}", path.display()), e))?;
            let mut pos = 0usize;
            let base = start_offset as usize;
            while data.len() - pos >= FRAME_HEADER {
                let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
                let crc_stored = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
                let Some(payload) = data.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len) else {
                    // Torn tail on the last file is a survivable crash
                    // artifact; anywhere else it is corruption.
                    if file_num == last_file {
                        break;
                    }
                    return Err(Error::corruption(&path, "truncated frame mid-chain"));
                };
                if crc32(payload) != crc_stored {
                    if file_num == last_file && pos + FRAME_HEADER + len == data.len() {
                        break; // torn final frame
                    }
                    return Err(Error::corruption(&path, "frame checksum mismatch"));
                }
                let block = Block::decode_trusted(payload)
                    .map_err(|e| Error::corruption(&path, format!("block decode failed: {e}")))?;
                let location = BlockLocation {
                    file_num,
                    offset: (base + pos) as u64,
                    len: (FRAME_HEADER + len) as u32,
                };
                visit(block, location)?;
                pos += FRAME_HEADER + len;
            }
        }
        Ok(())
    }

    /// Directory containing the block files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Digest;
    use crate::tx::{KvWrite, Transaction, ValidationCode};
    use bytes::Bytes;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let p = std::env::temp_dir().join(format!(
                "blockfile-test-{}-{tag}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&p);
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn make_block(number: u64, prev: Digest, tag: u64) -> Block {
        let tx = Transaction::new(
            tag,
            vec![],
            vec![KvWrite {
                key: Bytes::copy_from_slice(format!("key{tag}").as_bytes()),
                value: Some(Bytes::copy_from_slice(format!("value{tag}").as_bytes())),
            }],
        )
        .unwrap();
        Block::new(number, prev, vec![tx], vec![ValidationCode::Valid]).unwrap()
    }

    #[test]
    fn append_and_read_back() {
        let dir = TempDir::new("rw");
        let stats = IoStats::new_shared();
        let mgr = BlockFileManager::open(&dir.0, 1 << 20, stats.clone()).unwrap();
        let b0 = make_block(0, Digest::ZERO, 100);
        let b1 = make_block(1, b0.hash(), 101);
        let l0 = mgr.append_block(&b0).unwrap();
        let l1 = mgr.append_block(&b1).unwrap();
        assert_eq!(mgr.read_block(l1).unwrap(), b1);
        assert_eq!(mgr.read_block(l0).unwrap(), b0);
        let snap = stats.snapshot();
        assert_eq!(snap.blocks_written, 2);
        assert_eq!(snap.blocks_deserialized, 2);
        assert!(snap.block_bytes_read > 0);
    }

    #[test]
    fn files_roll_at_size_cap() {
        let dir = TempDir::new("roll");
        let stats = IoStats::new_shared();
        let mgr = BlockFileManager::open(&dir.0, 400, stats).unwrap();
        let mut prev = Digest::ZERO;
        let mut locations = Vec::new();
        for i in 0..10 {
            let b = make_block(i, prev, i);
            prev = b.hash();
            locations.push((mgr.append_block(&b).unwrap(), b));
        }
        let distinct_files: std::collections::HashSet<u32> =
            locations.iter().map(|(l, _)| l.file_num).collect();
        assert!(distinct_files.len() > 1, "expected multiple block files");
        for (loc, block) in &locations {
            assert_eq!(&mgr.read_block(*loc).unwrap(), block);
        }
    }

    #[test]
    fn reopen_resumes_appending() {
        let dir = TempDir::new("reopen");
        let stats = IoStats::new_shared();
        let b0 = make_block(0, Digest::ZERO, 1);
        let l0;
        {
            let mgr = BlockFileManager::open(&dir.0, 1 << 20, stats.clone()).unwrap();
            l0 = mgr.append_block(&b0).unwrap();
        }
        let mgr = BlockFileManager::open(&dir.0, 1 << 20, stats).unwrap();
        let b1 = make_block(1, b0.hash(), 2);
        let l1 = mgr.append_block(&b1).unwrap();
        assert!(l1.offset > l0.offset || l1.file_num > l0.file_num);
        assert_eq!(mgr.read_block(l0).unwrap(), b0);
        assert_eq!(mgr.read_block(l1).unwrap(), b1);
    }

    #[test]
    fn scan_all_visits_in_order() {
        let dir = TempDir::new("scan");
        let stats = IoStats::new_shared();
        let mgr = BlockFileManager::open(&dir.0, 300, stats).unwrap();
        let mut prev = Digest::ZERO;
        for i in 0..8 {
            let b = make_block(i, prev, i);
            prev = b.hash();
            mgr.append_block(&b).unwrap();
        }
        let mut seen = Vec::new();
        mgr.scan_all(|block, _loc| {
            seen.push(block.header.number);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn scan_tolerates_torn_tail() {
        let dir = TempDir::new("torn");
        let stats = IoStats::new_shared();
        {
            let mgr = BlockFileManager::open(&dir.0, 1 << 20, stats.clone()).unwrap();
            mgr.append_block(&make_block(0, Digest::ZERO, 1)).unwrap();
            mgr.append_block(&make_block(1, Digest::ZERO, 2)).unwrap();
        }
        // Truncate mid-way through the second frame.
        let path = file_path(&dir.0, 0);
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let mgr = BlockFileManager::open(&dir.0, 1 << 20, stats).unwrap();
        let mut seen = Vec::new();
        mgr.scan_all(|block, _| {
            seen.push(block.header.number);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec![0]);
    }

    #[test]
    fn corrupt_block_read_fails() {
        let dir = TempDir::new("corrupt");
        let stats = IoStats::new_shared();
        let mgr = BlockFileManager::open(&dir.0, 1 << 20, stats).unwrap();
        let loc = mgr.append_block(&make_block(0, Digest::ZERO, 1)).unwrap();
        drop(mgr);
        let path = file_path(&dir.0, 0);
        let mut data = std::fs::read(&path).unwrap();
        data[20] ^= 0xFF; // inside payload
        std::fs::write(&path, &data).unwrap();
        let stats = IoStats::new_shared();
        let mgr = BlockFileManager::open(&dir.0, 1 << 20, stats.clone()).unwrap();
        assert!(matches!(mgr.read_block(loc), Err(Error::Corruption { .. })));
        // Failed reads must not count as deserializations.
        assert_eq!(stats.snapshot().blocks_deserialized, 0);
    }

    #[test]
    fn read_block_txs_decodes_selectively() {
        let dir = TempDir::new("selective");
        let stats = IoStats::new_shared();
        let mgr = BlockFileManager::open(&dir.0, 1 << 20, stats.clone()).unwrap();
        let txs: Vec<Transaction> = (0..5u64)
            .map(|i| {
                Transaction::new(
                    i,
                    vec![],
                    vec![KvWrite {
                        key: Bytes::copy_from_slice(format!("key{i}").as_bytes()),
                        value: Some(Bytes::copy_from_slice(format!("value{i}").as_bytes())),
                    }],
                )
                .unwrap()
            })
            .collect();
        let block = Block::new(0, Digest::ZERO, txs, vec![ValidationCode::Valid; 5]).unwrap();
        let loc = mgr.append_block(&block).unwrap();

        let partial = mgr.read_block_txs(loc, &[0, 3]).unwrap();
        assert_eq!(partial.header, block.header);
        assert_eq!(partial.tx_count, 5);
        assert_eq!(partial.txs[0].1, block.txs[0]);
        assert_eq!(partial.txs[1].1, block.txs[3]);
        let snap = stats.snapshot();
        // One block deserialization, but only 2 of 5 txs decoded.
        assert_eq!(snap.blocks_deserialized, 1);
        assert_eq!(snap.txs_decoded, 2);
        assert_eq!(snap.block_bytes_read, loc.len as u64);

        // The full read decodes every tx.
        mgr.read_block(loc).unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.blocks_deserialized, 2);
        assert_eq!(snap.txs_decoded, 7);

        // Out-of-range requests fail without counting a deserialization.
        assert!(mgr.read_block_txs(loc, &[5]).is_err());
        assert_eq!(stats.snapshot().blocks_deserialized, 2);
    }

    #[test]
    fn location_encoding_roundtrip() {
        let loc = BlockLocation {
            file_num: 7,
            offset: 123_456_789,
            len: 4096,
        };
        assert_eq!(BlockLocation::decode(&loc.encode()).unwrap(), loc);
        assert!(BlockLocation::decode(&[0u8; 5]).is_err());
    }
}
