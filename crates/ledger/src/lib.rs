//! # fabric-ledger
//!
//! A Hyperledger-Fabric-style ledger engine, built from scratch in Rust for
//! the `temporal-fabric` workspace. It reproduces the storage architecture
//! that makes temporal queries on Fabric expensive — and that the paper's
//! Models M1/M2 (in the `temporal-core` crate) exploit:
//!
//! * **Blocks on the file system** ([`blockfile`]): append-only
//!   `blockfile_NNNNNN` files holding CRC-framed, hash-chained blocks.
//!   Reading history means *deserializing blocks*, the unit of query cost.
//! * **State database** ([`statedb`]): current state of every key, on a
//!   LevelDB-class store (`fabric-kvstore`), with `GetStateByRange`.
//! * **History index** ([`index`]): Fabric-style `key~block~tx` composite
//!   keys mapping each key to the blocks that wrote it.
//! * **Ordering service** ([`orderer`]): batch-size-driven block cutting.
//! * **Chaincode shim** ([`shim`]): `GetState` / `PutState` /
//!   `GetStateByRange` / `GetHistoryForKey` with read/write-set capture and
//!   MVCC validation at commit.
//! * **Lazy `GetHistoryForKey`** ([`ledger::HistoryIterator`]): blocks are
//!   deserialized one at a time as the iterator advances; abandoning the
//!   iterator early skips the remaining blocks. History locations are
//!   coalesced into per-block runs by default, and uncached reads decode
//!   only the needed transactions through the block's per-tx offset table
//!   ([`Block::decode_txs`]).
//! * **Block cache** ([`cache`]): opt-in sharded clock-LRU cache of
//!   deserialized blocks (off by default to match Fabric v1.0 and the
//!   paper's cost model).
//! * **Parallel validation** ([`validate`]): opt-in dependency-wave MVCC
//!   validation that is bit-identical to the serial order-sensitive scan
//!   (off by default; see [`LedgerConfig::parallel_validate`]).
//! * **Key-range sharding** ([`sharded`]): opt-in [`ShardedLedger`] router
//!   over N partitions — each a full [`Ledger`] — committing concurrently
//!   with deterministic global block numbering.
//!
//! ## Example
//!
//! ```
//! use fabric_ledger::{Ledger, LedgerConfig, TxSimulator};
//!
//! let dir = std::env::temp_dir().join(format!("ledger-doc-{}", std::process::id()));
//! let ledger = Ledger::open(&dir, LedgerConfig::default())?;
//!
//! // Chaincode-style transaction: record a shipment loading event.
//! let mut sim = TxSimulator::new(&ledger);
//! sim.put_state(&b"shipment-7"[..], &b"loaded:container-2@t=100"[..]);
//! let tx = sim.into_transaction(100)?;
//! ledger.submit(tx)?;
//! ledger.cut_block()?; // force the batch out (tests/demos)
//!
//! let state = ledger.get_state(b"shipment-7")?.unwrap();
//! assert_eq!(&state.value[..], b"loaded:container-2@t=100");
//!
//! let history = ledger.get_history_for_key(b"shipment-7")?.collect_all()?;
//! assert_eq!(history.len(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), fabric_ledger::Error>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod block;
pub mod blockfile;
pub mod cache;
pub mod codec;
pub mod config;
pub mod error;
pub mod hash;
pub mod index;
pub mod iostats;
pub mod ledger;
pub mod orderer;
pub mod sharded;
pub mod shim;
pub mod statedb;
pub mod tx;
pub mod validate;

pub use block::{Block, BlockHeader, PartialBlock};
pub use blockfile::{BlockFileManager, BlockLocation};
pub use cache::{BlockCache, CacheShardStats, CacheStats};
pub use config::LedgerConfig;
pub use error::{Error, Result};
pub use fabric_telemetry::Telemetry;
pub use hash::{sha256, Digest};
pub use index::HistoryEntryMeta;
pub use iostats::{IoStats, IoStatsSnapshot};
pub use ledger::{CommitEvent, HistoricalState, HistoryIterator, Ledger, StateUpdate};
pub use sharded::{ShardRouter, ShardedLedger};
pub use shim::TxSimulator;
pub use statedb::VersionedValue;
pub use tx::{
    BlockNum, KvRead, KvWrite, Timestamp, Transaction, TxId, TxNum, ValidationCode, Version,
};
