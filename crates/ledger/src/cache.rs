//! Optional sharded clock-LRU block cache.
//!
//! Fabric v1.0 deserializes blocks on every history read — the paper's cost
//! model depends on that — so the cache is **disabled by default** and
//! exists for the ablation benchmark that quantifies how much of the
//! paper's effect a block cache would absorb.
//!
//! The cache is split into N mutex-guarded shards (selected by block
//! number) so parallel ferry workers do not contend on one lock, and each
//! shard evicts with a clock (second-chance) hand: a `get` sets the
//! entry's referenced bit, eviction sweeps the hand forward clearing bits
//! until it finds an unreferenced victim. That makes eviction O(1)
//! amortized — the old implementation scanned the whole map with
//! `min_by_key` on every insert — while still approximating LRU order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::Block;
use crate::tx::BlockNum;

/// Upper bound on automatically derived shard counts.
const MAX_AUTO_SHARDS: usize = 16;
/// Minimum per-shard capacity the auto heuristic aims for: sharding a tiny
/// cache only destroys its hit rate, so small caches stay single-shard
/// (and keep strict clock ordering, which the tests rely on).
const MIN_BLOCKS_PER_SHARD: usize = 16;

/// One clock-ring slot: a cached block plus its second-chance bit.
struct Slot {
    num: BlockNum,
    block: Arc<Block>,
    referenced: bool,
}

/// One shard: a clock ring with a hash index over it.
struct Shard {
    /// Block number → index into `slots`.
    map: HashMap<BlockNum, usize>,
    /// Ring storage; grows up to the shard capacity, then slots are reused
    /// by the clock hand.
    slots: Vec<Slot>,
    /// Next position the eviction hand examines.
    hand: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            hand: 0,
            capacity,
        }
    }

    fn get(&mut self, num: BlockNum) -> Option<Arc<Block>> {
        let &i = self.map.get(&num)?;
        self.slots[i].referenced = true;
        Some(self.slots[i].block.clone())
    }

    /// Insert `num`; returns `true` when an existing entry was evicted.
    fn put(&mut self, num: BlockNum, block: Arc<Block>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&i) = self.map.get(&num) {
            // Overwrite in place; refresh the second-chance bit like a hit.
            self.slots[i].block = block;
            self.slots[i].referenced = true;
            return false;
        }
        if self.slots.len() < self.capacity {
            self.map.insert(num, self.slots.len());
            self.slots.push(Slot {
                num,
                block,
                referenced: false,
            });
            return false;
        }
        // Clock sweep: clear referenced bits until an unreferenced victim
        // turns up. Terminates within two laps because cleared bits stay
        // cleared; each entry's bit is cleared at most once per eviction,
        // so the sweep is O(1) amortized over a run of inserts.
        loop {
            let i = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            if self.slots[i].referenced {
                self.slots[i].referenced = false;
            } else {
                self.map.remove(&self.slots[i].num);
                self.map.insert(num, i);
                self.slots[i] = Slot {
                    num,
                    block,
                    referenced: false,
                };
                return true;
            }
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.hand = 0;
    }
}

/// Per-shard hit/miss/eviction counters, readable without taking the
/// shard lock.
#[derive(Debug, Default)]
struct ShardCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Point-in-time counters for one shard (or the whole cache, summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Lookups served from the shard.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by the clock hand.
    pub evictions: u64,
    /// Blocks currently resident.
    pub blocks: u64,
}

/// Snapshot of the whole cache: aggregate plus per-shard counters.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Sum over all shards.
    pub total: CacheShardStats,
    /// One entry per shard, in shard order.
    pub shards: Vec<CacheShardStats>,
}

/// A sharded clock-LRU cache of deserialized blocks, keyed by block number.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    counters: Vec<ShardCounters>,
    capacity: usize,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

impl BlockCache {
    /// Cache holding at most `capacity` blocks, with a shard count derived
    /// from the capacity (small caches stay single-shard so their eviction
    /// order is the plain clock order). Zero capacity is allowed and
    /// caches nothing.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::auto_shards(capacity))
    }

    /// Cache with an explicit shard count. The count is clamped to
    /// `[1, max(capacity, 1)]`; capacity is split across shards (earlier
    /// shards take the remainder).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        let base = capacity / shards;
        let rem = capacity % shards;
        let mut rings = Vec::with_capacity(shards);
        let mut counters = Vec::with_capacity(shards);
        for i in 0..shards {
            let cap = base + usize::from(i < rem);
            rings.push(Mutex::new(Shard::new(cap)));
            counters.push(ShardCounters::default());
        }
        BlockCache {
            shards: rings,
            counters,
            capacity,
        }
    }

    /// Shard count [`BlockCache::new`] derives for `capacity`.
    pub fn auto_shards(capacity: usize) -> usize {
        (capacity / MIN_BLOCKS_PER_SHARD).clamp(1, MAX_AUTO_SHARDS)
    }

    #[inline]
    fn shard_of(&self, num: BlockNum) -> usize {
        (num % self.shards.len() as u64) as usize
    }

    /// Fetch a block, refreshing its recency.
    pub fn get(&self, num: BlockNum) -> Option<Arc<Block>> {
        let s = self.shard_of(num);
        let found = self.shards[s].lock().get(num);
        let counter = match found {
            Some(_) => &self.counters[s].hits,
            None => &self.counters[s].misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Insert a block, evicting a not-recently-used entry if the shard is
    /// full.
    pub fn put(&self, num: BlockNum, block: Arc<Block>) {
        let s = self.shard_of(num);
        let evicted = self.shards[s].lock().put(num, block);
        if evicted {
            self.counters[s].evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of cached blocks across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total block capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Drop every cached block (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Aggregate and per-shard hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for (shard, counters) in self.shards.iter().zip(&self.counters) {
            let s = CacheShardStats {
                hits: counters.hits.load(Ordering::Relaxed),
                misses: counters.misses.load(Ordering::Relaxed),
                evictions: counters.evictions.load(Ordering::Relaxed),
                blocks: shard.lock().map.len() as u64,
            };
            out.total.hits += s.hits;
            out.total.misses += s.misses;
            out.total.evictions += s.evictions;
            out.total.blocks += s.blocks;
            out.shards.push(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Digest;

    fn block(n: u64) -> Arc<Block> {
        Arc::new(Block::new(n, Digest::ZERO, vec![], vec![]).unwrap())
    }

    #[test]
    fn put_get() {
        let c = BlockCache::new(4);
        c.put(1, block(1));
        assert_eq!(c.get(1).unwrap().header.number, 1);
        assert!(c.get(2).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = BlockCache::new(2);
        assert_eq!(c.shard_count(), 1, "tiny caches must stay single-shard");
        c.put(1, block(1));
        c.put(2, block(2));
        c.get(1); // second-chance bit set: now 2 is the victim
        c.put(3, block(3));
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none(), "2 should have been evicted");
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_existing_does_not_evict() {
        let c = BlockCache::new(2);
        c.put(1, block(1));
        c.put(2, block(2));
        c.put(2, block(2)); // overwrite, not a growth
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let c = BlockCache::new(0);
        c.put(1, block(1));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
        let c = BlockCache::with_shards(0, 8);
        c.put(1, block(1));
        assert!(c.get(1).is_none());
    }

    #[test]
    fn clear_empties() {
        let c = BlockCache::new(4);
        c.put(1, block(1));
        c.clear();
        assert!(c.get(1).is_none());
    }

    /// Satellite regression for the old O(n) `min_by_key` eviction scan:
    /// a long run of inserts into a tiny cache must complete comfortably
    /// within the test timeout (the clock hand does O(1) amortized work
    /// per insert) and leave the cache holding the most recent entries in
    /// LRU-ish (here: untouched ⇒ FIFO) order.
    #[test]
    fn eviction_is_cheap_and_lru_ish_over_many_puts() {
        let c = BlockCache::with_shards(8, 1);
        for n in 0..10_000u64 {
            c.put(n, block(n));
        }
        assert_eq!(c.len(), 8);
        for n in 9_992..10_000u64 {
            assert!(c.get(n).is_some(), "recent block {n} should be resident");
        }
        assert!(c.get(9_991).is_none(), "older blocks should be evicted");
        let stats = c.stats();
        assert_eq!(stats.total.evictions, 10_000 - 8);
        assert_eq!(stats.total.blocks, 8);
    }

    #[test]
    fn referenced_entries_survive_a_sweep() {
        let c = BlockCache::with_shards(4, 1);
        for n in 0..4 {
            c.put(n, block(n));
        }
        // Touch 0 and 2; insert two more: the hand should pass over the
        // referenced entries (clearing their bits) and take 1 and 3.
        c.get(0);
        c.get(2);
        c.put(10, block(10));
        c.put(11, block(11));
        assert!(c.get(0).is_some());
        assert!(c.get(2).is_some());
        assert!(c.get(1).is_none());
        assert!(c.get(3).is_none());
    }

    #[test]
    fn shards_split_capacity_and_count_independently() {
        let c = BlockCache::with_shards(10, 4);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.capacity(), 10);
        // Shard capacities: 3, 3, 2, 2. Fill more blocks than capacity —
        // every shard must respect its own bound.
        for n in 0..100u64 {
            c.put(n, block(n));
        }
        assert_eq!(c.len(), 10);
        let stats = c.stats();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.total.blocks, 10);
        assert!(stats.total.evictions >= 90);
        for s in &stats.shards {
            assert!(s.blocks >= 2 && s.blocks <= 3, "shard holds {}", s.blocks);
        }
    }

    #[test]
    fn auto_shards_scale_with_capacity() {
        assert_eq!(BlockCache::auto_shards(0), 1);
        assert_eq!(BlockCache::auto_shards(8), 1);
        assert_eq!(BlockCache::auto_shards(64), 4);
        assert_eq!(BlockCache::auto_shards(1_000_000), 16);
        assert_eq!(BlockCache::new(100_000).shard_count(), 16);
    }

    #[test]
    fn stats_count_hits_misses_per_shard() {
        let c = BlockCache::with_shards(8, 2);
        c.put(0, block(0)); // shard 0
        c.put(1, block(1)); // shard 1
        c.get(0);
        c.get(0);
        c.get(1);
        c.get(5); // miss, shard 1
        let stats = c.stats();
        assert_eq!(stats.total.hits, 3);
        assert_eq!(stats.total.misses, 1);
        assert_eq!(stats.shards[0].hits, 2);
        assert_eq!(stats.shards[1].hits, 1);
        assert_eq!(stats.shards[1].misses, 1);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = std::sync::Arc::new(BlockCache::with_shards(64, 8));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let n = (t * 1_000 + i) % 256;
                    c.put(n, block(n));
                    if let Some(b) = c.get(n) {
                        assert_eq!(b.header.number, n);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 64);
    }
}
