//! Optional LRU block cache.
//!
//! Fabric v1.0 deserializes blocks on every history read — the paper's cost
//! model depends on that — so the cache is **disabled by default** and
//! exists for the ablation benchmark that quantifies how much of the
//! paper's effect a block cache would absorb.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::Block;
use crate::tx::BlockNum;

struct CacheInner {
    map: HashMap<BlockNum, (u64, Arc<Block>)>,
    /// Monotonic use-counter; the entry with the smallest stamp is evicted.
    tick: u64,
    capacity: usize,
}

/// A small LRU cache of deserialized blocks, keyed by block number.
pub struct BlockCache {
    inner: Mutex<CacheInner>,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("BlockCache")
            .field("capacity", &inner.capacity)
            .field("len", &inner.map.len())
            .finish()
    }
}

impl BlockCache {
    /// Cache holding at most `capacity` blocks. Zero capacity is allowed
    /// and caches nothing.
    pub fn new(capacity: usize) -> Self {
        BlockCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::with_capacity(capacity),
                tick: 0,
                capacity,
            }),
        }
    }

    /// Fetch a block, refreshing its recency.
    pub fn get(&self, num: BlockNum) -> Option<Arc<Block>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let (stamp, block) = inner.map.get_mut(&num)?;
        *stamp = tick;
        Some(block.clone())
    }

    /// Insert a block, evicting the least-recently-used entry if full.
    pub fn put(&self, num: BlockNum, block: Arc<Block>) {
        let mut inner = self.inner.lock();
        if inner.capacity == 0 {
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= inner.capacity && !inner.map.contains_key(&num) {
            if let Some((&lru, _)) = inner.map.iter().min_by_key(|(_, (stamp, _))| *stamp) {
                inner.map.remove(&lru);
            }
        }
        inner.map.insert(num, (tick, block));
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached block.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Digest;

    fn block(n: u64) -> Arc<Block> {
        Arc::new(Block::new(n, Digest::ZERO, vec![], vec![]).unwrap())
    }

    #[test]
    fn put_get() {
        let c = BlockCache::new(4);
        c.put(1, block(1));
        assert_eq!(c.get(1).unwrap().header.number, 1);
        assert!(c.get(2).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = BlockCache::new(2);
        c.put(1, block(1));
        c.put(2, block(2));
        c.get(1); // refresh 1: now 2 is the LRU
        c.put(3, block(3));
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none(), "2 should have been evicted");
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_existing_does_not_evict() {
        let c = BlockCache::new(2);
        c.put(1, block(1));
        c.put(2, block(2));
        c.put(2, block(2)); // overwrite, not a growth
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let c = BlockCache::new(0);
        c.put(1, block(1));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties() {
        let c = BlockCache::new(4);
        c.put(1, block(1));
        c.clear();
        assert!(c.get(1).is_none());
    }
}
