//! Ledger-wide I/O and call counters.
//!
//! These counters are the *deterministic* cost model of the reproduction:
//! the paper's query times are dominated by block deserialization, so
//! `blocks_deserialized` (and friends) reproduce the paper's comparisons
//! independent of hardware. Wall-clock measurements are reported alongside,
//! never instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared counter set. Cheap to clone (it's an `Arc` inside consumers).
#[derive(Debug, Default)]
pub struct IoStats {
    /// Blocks appended to block files.
    pub blocks_written: AtomicU64,
    /// Blocks read *and decoded* from block files (the paper's unit of
    /// query cost). Cache hits do not count.
    pub blocks_deserialized: AtomicU64,
    /// Transactions actually decoded while reading blocks. A full
    /// [`read_block`](crate::blockfile::BlockFileManager::read_block)
    /// decodes every tx in the block; the selective
    /// [`read_block_txs`](crate::blockfile::BlockFileManager::read_block_txs)
    /// path counts only the txs a history scan asked for, so
    /// `txs_decoded / blocks_deserialized` quantifies how much decode work
    /// the offset table saves.
    pub txs_decoded: AtomicU64,
    /// Bytes read from block files for deserialization.
    pub block_bytes_read: AtomicU64,
    /// Bytes appended to block files.
    pub block_bytes_written: AtomicU64,
    /// Block-cache hits (reads served without deserialization).
    pub cache_hits: AtomicU64,
    /// `GetHistoryForKey` calls issued.
    pub ghfk_calls: AtomicU64,
    /// `GetState` calls issued.
    pub get_state_calls: AtomicU64,
    /// `GetStateByRange` calls issued.
    pub range_scan_calls: AtomicU64,
    /// Transactions committed (valid or not).
    pub txs_committed: AtomicU64,
    /// Blocks committed.
    pub blocks_committed: AtomicU64,
    /// State writes applied from *valid* transactions — the number of
    /// history entries the ledger has grown by, i.e. committed events.
    pub events_committed: AtomicU64,
}

impl IoStats {
    /// New zeroed counter set behind an `Arc`.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    #[inline]
    pub(crate) fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            blocks_deserialized: self.blocks_deserialized.load(Ordering::Relaxed),
            txs_decoded: self.txs_decoded.load(Ordering::Relaxed),
            block_bytes_read: self.block_bytes_read.load(Ordering::Relaxed),
            block_bytes_written: self.block_bytes_written.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            ghfk_calls: self.ghfk_calls.load(Ordering::Relaxed),
            get_state_calls: self.get_state_calls.load(Ordering::Relaxed),
            range_scan_calls: self.range_scan_calls.load(Ordering::Relaxed),
            txs_committed: self.txs_committed.load(Ordering::Relaxed),
            blocks_committed: self.blocks_committed.load(Ordering::Relaxed),
            events_committed: self.events_committed.load(Ordering::Relaxed),
        }
    }
}

/// Copyable snapshot of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// See [`IoStats::blocks_written`].
    pub blocks_written: u64,
    /// See [`IoStats::blocks_deserialized`].
    pub blocks_deserialized: u64,
    /// See [`IoStats::txs_decoded`].
    pub txs_decoded: u64,
    /// See [`IoStats::block_bytes_read`].
    pub block_bytes_read: u64,
    /// See [`IoStats::block_bytes_written`].
    pub block_bytes_written: u64,
    /// See [`IoStats::cache_hits`].
    pub cache_hits: u64,
    /// See [`IoStats::ghfk_calls`].
    pub ghfk_calls: u64,
    /// See [`IoStats::get_state_calls`].
    pub get_state_calls: u64,
    /// See [`IoStats::range_scan_calls`].
    pub range_scan_calls: u64,
    /// See [`IoStats::txs_committed`].
    pub txs_committed: u64,
    /// See [`IoStats::blocks_committed`].
    pub blocks_committed: u64,
    /// See [`IoStats::events_committed`].
    pub events_committed: u64,
}

impl IoStatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating). Alias of
    /// [`IoStatsSnapshot::delta`] matching the kvstore snapshot API.
    pub fn diff(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        self.delta(earlier)
    }

    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            blocks_written: self.blocks_written.saturating_sub(earlier.blocks_written),
            blocks_deserialized: self
                .blocks_deserialized
                .saturating_sub(earlier.blocks_deserialized),
            txs_decoded: self.txs_decoded.saturating_sub(earlier.txs_decoded),
            block_bytes_read: self
                .block_bytes_read
                .saturating_sub(earlier.block_bytes_read),
            block_bytes_written: self
                .block_bytes_written
                .saturating_sub(earlier.block_bytes_written),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            ghfk_calls: self.ghfk_calls.saturating_sub(earlier.ghfk_calls),
            get_state_calls: self.get_state_calls.saturating_sub(earlier.get_state_calls),
            range_scan_calls: self
                .range_scan_calls
                .saturating_sub(earlier.range_scan_calls),
            txs_committed: self.txs_committed.saturating_sub(earlier.txs_committed),
            blocks_committed: self
                .blocks_committed
                .saturating_sub(earlier.blocks_committed),
            events_committed: self
                .events_committed
                .saturating_sub(earlier.events_committed),
        }
    }

    /// Counter-wise sum `self + other` (saturating). Sharded ledgers use
    /// this to aggregate per-partition counters into one query-cost view.
    pub fn merge(&self, other: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            blocks_written: self.blocks_written.saturating_add(other.blocks_written),
            blocks_deserialized: self
                .blocks_deserialized
                .saturating_add(other.blocks_deserialized),
            txs_decoded: self.txs_decoded.saturating_add(other.txs_decoded),
            block_bytes_read: self.block_bytes_read.saturating_add(other.block_bytes_read),
            block_bytes_written: self
                .block_bytes_written
                .saturating_add(other.block_bytes_written),
            cache_hits: self.cache_hits.saturating_add(other.cache_hits),
            ghfk_calls: self.ghfk_calls.saturating_add(other.ghfk_calls),
            get_state_calls: self.get_state_calls.saturating_add(other.get_state_calls),
            range_scan_calls: self.range_scan_calls.saturating_add(other.range_scan_calls),
            txs_committed: self.txs_committed.saturating_add(other.txs_committed),
            blocks_committed: self.blocks_committed.saturating_add(other.blocks_committed),
            events_committed: self.events_committed.saturating_add(other.events_committed),
        }
    }
}

impl std::fmt::Display for IoStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "blocks_committed {}  txs_committed {}  events_committed {}  blocks_written {}  block_bytes_written {}",
            self.blocks_committed,
            self.txs_committed,
            self.events_committed,
            self.blocks_written,
            self.block_bytes_written
        )?;
        writeln!(
            f,
            "blocks_deserialized {}  txs_decoded {}  block_bytes_read {}  cache_hits {}",
            self.blocks_deserialized, self.txs_decoded, self.block_bytes_read, self.cache_hits
        )?;
        write!(
            f,
            "ghfk_calls {}  get_state_calls {}  range_scan_calls {}",
            self.ghfk_calls, self.get_state_calls, self.range_scan_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let stats = IoStats::new_shared();
        IoStats::incr(&stats.ghfk_calls);
        let first = stats.snapshot();
        IoStats::incr(&stats.ghfk_calls);
        IoStats::add(&stats.block_bytes_read, 500);
        let second = stats.snapshot();
        let d = second.delta(&first);
        assert_eq!(d.ghfk_calls, 1);
        assert_eq!(d.block_bytes_read, 500);
        assert_eq!(d.blocks_written, 0);
    }

    #[test]
    fn display_mentions_every_counter() {
        let text = IoStatsSnapshot::default().to_string();
        for field in [
            "blocks_committed",
            "txs_committed",
            "events_committed",
            "blocks_written",
            "block_bytes_written",
            "blocks_deserialized",
            "txs_decoded",
            "block_bytes_read",
            "cache_hits",
            "ghfk_calls",
            "get_state_calls",
            "range_scan_calls",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
    }

    #[test]
    fn diff_is_an_alias_for_delta() {
        let a = IoStatsSnapshot {
            ghfk_calls: 7,
            ..Default::default()
        };
        let b = IoStatsSnapshot {
            ghfk_calls: 3,
            ..Default::default()
        };
        assert_eq!(a.diff(&b), a.delta(&b));
        assert_eq!(a.diff(&b).ghfk_calls, 4);
    }

    #[test]
    fn merge_sums_counters() {
        let a = IoStatsSnapshot {
            ghfk_calls: 7,
            events_committed: 2,
            ..Default::default()
        };
        let b = IoStatsSnapshot {
            ghfk_calls: 3,
            blocks_deserialized: 5,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.ghfk_calls, 10);
        assert_eq!(m.events_committed, 2);
        assert_eq!(m.blocks_deserialized, 5);
    }

    #[test]
    fn delta_saturates() {
        let a = IoStatsSnapshot {
            ghfk_calls: 1,
            ..Default::default()
        };
        let b = IoStatsSnapshot {
            ghfk_calls: 5,
            ..Default::default()
        };
        assert_eq!(a.delta(&b).ghfk_calls, 0);
    }
}
