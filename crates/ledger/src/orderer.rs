//! The ordering service's block cutter.
//!
//! A single-peer deployment still runs consensus: transactions are queued
//! and cut into blocks by batch-size rules, exactly like Fabric's solo
//! orderer (`BatchSize.MaxMessageCount` / `PreferredMaxBytes`). The paper's
//! experiments ran "a single peer but ... the consensus mechanism turned
//! on"; this module is that mechanism's deterministic core.

use crate::tx::Transaction;

/// Accumulates transactions and decides where block boundaries fall.
#[derive(Debug)]
pub struct BlockCutter {
    max_txs: usize,
    max_bytes: usize,
    pending: Vec<Transaction>,
    pending_bytes: usize,
}

impl BlockCutter {
    /// A cutter with the given batch limits (both at least 1 tx).
    pub fn new(max_txs: usize, max_bytes: usize) -> Self {
        BlockCutter {
            max_txs: max_txs.max(1),
            max_bytes: max_bytes.max(1),
            pending: Vec::new(),
            pending_bytes: 0,
        }
    }

    /// Enqueue a transaction. Returns a full batch when the enqueue
    /// completes one, following Fabric's rules:
    ///
    /// * a message that alone exceeds `max_bytes` is cut as its own batch
    ///   (after first cutting whatever was pending);
    /// * otherwise the batch is cut when it reaches `max_txs` messages or
    ///   would exceed `max_bytes`.
    ///
    /// At most one of the returned batches is non-empty per call except in
    /// the oversized-message case, hence the `Vec` of batches.
    pub fn enqueue(&mut self, tx: Transaction) -> Vec<Vec<Transaction>> {
        let tx_bytes = tx.encode().len();
        let mut batches = Vec::new();
        if tx_bytes > self.max_bytes {
            if !self.pending.is_empty() {
                batches.push(self.take_pending());
            }
            batches.push(vec![tx]);
            return batches;
        }
        if self.pending_bytes + tx_bytes > self.max_bytes && !self.pending.is_empty() {
            batches.push(self.take_pending());
        }
        self.pending.push(tx);
        self.pending_bytes += tx_bytes;
        if self.pending.len() >= self.max_txs {
            batches.push(self.take_pending());
        }
        batches
    }

    /// Force-cut whatever is pending (the batch-timeout path).
    pub fn cut(&mut self) -> Option<Vec<Transaction>> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.take_pending())
        }
    }

    fn take_pending(&mut self) -> Vec<Transaction> {
        self.pending_bytes = 0;
        std::mem::take(&mut self.pending)
    }

    /// Number of queued, not-yet-cut transactions.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::KvWrite;
    use bytes::Bytes;

    fn tx(i: u64, value_len: usize) -> Transaction {
        Transaction::new(
            i,
            vec![],
            vec![KvWrite {
                key: Bytes::copy_from_slice(format!("key{i}").as_bytes()),
                value: Some(Bytes::from(vec![b'x'; value_len])),
            }],
        )
        .unwrap()
    }

    #[test]
    fn cuts_at_max_txs() {
        let mut cutter = BlockCutter::new(3, 1 << 20);
        assert!(cutter.enqueue(tx(1, 10)).is_empty());
        assert!(cutter.enqueue(tx(2, 10)).is_empty());
        let batches = cutter.enqueue(tx(3, 10));
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 3);
        assert_eq!(cutter.pending_len(), 0);
    }

    #[test]
    fn cuts_at_max_bytes() {
        // Each tx is ~120 bytes encoded; cap at 300 so the third tx
        // overflows the batch.
        let mut cutter = BlockCutter::new(100, 300);
        let size = tx(1, 60).encode().len();
        assert!(size > 100 && size < 300, "encoded size {size}");
        assert!(cutter.enqueue(tx(1, 60)).is_empty());
        assert!(cutter.enqueue(tx(2, 60)).is_empty());
        let batches = cutter.enqueue(tx(3, 60));
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 2, "first two cut, third stays pending");
        assert_eq!(cutter.pending_len(), 1);
    }

    #[test]
    fn oversized_tx_is_own_batch() {
        let mut cutter = BlockCutter::new(10, 200);
        assert!(cutter.enqueue(tx(1, 20)).is_empty());
        let batches = cutter.enqueue(tx(2, 500));
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 1, "pending batch flushed first");
        assert_eq!(batches[1].len(), 1, "oversized tx is its own batch");
        assert_eq!(cutter.pending_len(), 0);
    }

    #[test]
    fn oversized_tx_with_empty_pending() {
        let mut cutter = BlockCutter::new(10, 100);
        let batches = cutter.enqueue(tx(1, 500));
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 1);
    }

    #[test]
    fn manual_cut_flushes_pending() {
        let mut cutter = BlockCutter::new(10, 1 << 20);
        cutter.enqueue(tx(1, 10));
        cutter.enqueue(tx(2, 10));
        let batch = cutter.cut().unwrap();
        assert_eq!(batch.len(), 2);
        assert!(cutter.cut().is_none());
    }

    #[test]
    fn order_is_preserved() {
        let mut cutter = BlockCutter::new(5, 1 << 20);
        for i in 0..4 {
            cutter.enqueue(tx(i, 10));
        }
        let batch = cutter.cut().unwrap();
        let stamps: Vec<u64> = batch.iter().map(|t| t.timestamp).collect();
        assert_eq!(stamps, vec![0, 1, 2, 3]);
    }
}
